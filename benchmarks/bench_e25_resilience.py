"""E25 — Ingest under a seeded fault schedule, and crash recovery cost.

The resilience contract of the serving tier is that faults change
*timing*, never *results*: an injected 5xx is sent before any byte of
the body is absorbed, so the client's verbatim re-send cannot
double-count, and a snapshot is written atomically (tmp + fsync +
rename, integrity digest) so a crash always recovers the newest valid
generation.  This benchmark prices both halves of that contract on one
real HTTP server:

* **fault-free leg** — pre-encoded columnar batches over a keep-alive
  connection (the e21 fast path), one final reconstruction;
* **chaos leg** — identical batches against a server running a seeded
  :class:`~repro.service.faults.FaultPlan` that turns a fixed fraction
  of ``/ingest`` responses into 503s; the client re-sends until
  acknowledged (the schedule, and hence the retry count, is a pure
  function of the seed);
* **recovery leg** — persist the ingested service (timed), then restore
  it with :func:`~repro.service.resilience.recover_service` (timed) —
  the window a crashed server stays dark before serving again.

Asserted:

* the chaos leg's estimate is **bit-identical** to the fault-free leg's
  and to a single-process reference (refreshed once each), and so is
  the estimate of the recovered service;
* chaos-leg throughput stays within an architectural floor of the
  fault-free rate — retries cost the injected fraction, not an
  order of magnitude.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
from _common import experiment, run_experiment

from repro.service import ServiceHTTPServer, service_from_spec
from repro.service.faults import FaultPlan
from repro.service.resilience import recover_service
from repro.service.wire import CONTENT_TYPE_COLUMNS, encode_columns
from repro.utils.rng import ensure_rng

N_BATCHES = 32
ERROR_RATE = 0.15

SPEC = {
    "shards": 1,
    "intervals": 16,
    "attributes": [
        {"name": "age", "low": 20.0, "high": 80.0,
         "noise": "uniform", "privacy": 1.0},
    ],
}


def _throughput_floor_scale() -> float:
    """Scales the wall-clock throughput threshold (parity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy neighbour
    cannot flake the build while a real regression still fails."""
    return float(os.environ.get("PPDM_E25_THROUGHPUT_FLOOR", "1.0"))


def _disclosures(n_records: int, seed: int):
    """Pre-generated randomized batches shared by every leg."""
    rng = ensure_rng(seed)
    reference = service_from_spec(dict(SPEC))
    spec = reference.spec("age")
    low, high = spec.x_partition.low, spec.x_partition.high
    per_batch = n_records // N_BATCHES
    batches = []
    for _ in range(N_BATCHES):
        x = np.clip(rng.normal(45.0, 9.0, per_batch), low, high)
        batches.append({"age": spec.randomizer.randomize(x, seed=rng)})
    return batches


def _serve(service, *, faults=None, snapshot_path=None):
    """A serving thread around ``service``; returns (server, thread)."""
    server = ServiceHTTPServer(
        service, "127.0.0.1", 0,
        faults=faults, snapshot_path=snapshot_path,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _ingest_all(server, bodies) -> tuple:
    """POST every body until acknowledged; return (seconds, re-sends).

    An injected 503 is sent before the body is absorbed, so the loop
    re-sends the identical bytes — the admission contract makes that
    safe, and the final counts are exactly one copy of every batch.
    """
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    resent = 0
    start = time.perf_counter()
    for body in bodies:
        while True:
            conn.request(
                "POST", "/ingest", body=body,
                headers={"Content-Type": CONTENT_TYPE_COLUMNS},
            )
            response = conn.getresponse()
            payload = response.read()
            if response.status == 200:
                break
            assert response.status == 503, payload
            resent += 1
    seconds = time.perf_counter() - start
    conn.close()
    return seconds, resent


def _estimate_over_http(server) -> dict:
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request("GET", "/estimate?attribute=age")
    response = conn.getresponse()
    payload = response.read()
    conn.close()
    assert response.status == 200, payload
    return json.loads(payload)


def _assert_parity(estimate: dict, expected, n_records: int) -> None:
    assert estimate["n_seen"] == n_records
    assert estimate["n_iterations"] == expected.n_iterations
    assert np.array_equal(
        np.asarray(estimate["probs"]), expected.distribution.probs
    )


@experiment(
    "e25",
    title="Ingest under faults + crash recovery cost",
    tags=("service", "resilience", "smoke"),
    seed=11,
)
def run_e25(ctx):
    n_records = ctx.scaled(32_000)
    batches = _disclosures(n_records, seed=ctx.seed)
    n_records = sum(batch["age"].size for batch in batches)
    bodies = [encode_columns(batch) for batch in batches]
    plan_spec = {
        "seed": ctx.seed,
        "points": {"httpd.response:/ingest": {"error": ERROR_RATE}},
    }
    ctx.record(
        n_records=n_records,
        n_batches=N_BATCHES,
        error_rate=ERROR_RATE,
        noise="uniform",
    )

    reference = service_from_spec(dict(SPEC))
    for batch in batches:
        reference.ingest(batch)
    expected = reference.estimate("age", warn=False)

    # fault-free leg (snapshot path attached for the recovery leg)
    tmp = Path(tempfile.mkdtemp(prefix="ppdm-e25-"))
    snapshot_path = tmp / "snapshot.json"
    clean_server, clean_thread = _serve(
        service_from_spec(dict(SPEC)), snapshot_path=str(snapshot_path)
    )
    try:
        clean_seconds, clean_resent = _ingest_all(clean_server, bodies)
        assert clean_resent == 0
        # persist before the estimate so the snapshot carries a cold
        # warm-start state and the recovered service replays the same
        # single refresh as the reference
        persist_start = time.perf_counter()
        clean_server.persist()
        persist_seconds = time.perf_counter() - persist_start
        _assert_parity(_estimate_over_http(clean_server), expected, n_records)
    finally:
        clean_server.shutdown()
        clean_thread.join(timeout=10)

    # chaos leg: same bytes, seeded 503 schedule, re-send until taken
    plan = FaultPlan(plan_spec)
    chaos_server, chaos_thread = _serve(
        service_from_spec(dict(SPEC)), faults=plan
    )
    try:
        chaos_seconds, chaos_resent = _ingest_all(chaos_server, bodies)
        injected = plan.stats()["httpd.response:/ingest"]["fired"]
        assert chaos_resent == injected and injected > 0
        _assert_parity(_estimate_over_http(chaos_server), expected, n_records)
    finally:
        chaos_server.shutdown()
        chaos_thread.join(timeout=10)

    # recovery leg: restore the newest valid generation, then estimate
    recover_start = time.perf_counter()
    recovered, recovered_from = recover_service(snapshot_path)
    recover_seconds = time.perf_counter() - recover_start
    assert recovered_from == snapshot_path
    assert sum(recovered.n_seen().values()) == n_records
    result = recovered.estimate("age", warn=False)
    assert result.n_iterations == expected.n_iterations
    assert np.array_equal(
        result.distribution.probs, expected.distribution.probs
    )

    clean_rate = n_records / clean_seconds
    chaos_rate = n_records / chaos_seconds
    ratio = chaos_rate / clean_rate

    from repro.experiments.reporting import format_table

    table_text = format_table(
        ("leg", "wall ms", "records/s", "re-sends", "vs fault-free"),
        [
            ("fault-free", f"{clean_seconds * 1e3:.1f}",
             f"{clean_rate:,.0f}", "0", "1.00x"),
            (f"seeded 503s ({ERROR_RATE:.0%})", f"{chaos_seconds * 1e3:.1f}",
             f"{chaos_rate:,.0f}", str(chaos_resent), f"{ratio:.2f}x"),
        ],
        title=(
            f"E25: ingest under a seeded fault schedule, "
            f"{n_records} records x {N_BATCHES} batches over HTTP"
        ),
    )
    summary = (
        f"\nsnapshot persist = {persist_seconds * 1e3:.1f} ms, "
        f"recovery (load + verify) = {recover_seconds * 1e3:.1f} ms"
        f"\nestimates bit-identical across fault-free, chaos, and "
        f"recovered runs ({injected} injected 503s, schedule seeded)"
    )
    ctx.report(table_text + summary, name="e25_resilience")
    ctx.record_timing(
        clean_ms=clean_seconds * 1e3,
        chaos_ms=chaos_seconds * 1e3,
        persist_ms=persist_seconds * 1e3,
        recover_ms=recover_seconds * 1e3,
        chaos_vs_clean=ratio,
    )

    floor = 0.3 * _throughput_floor_scale()
    assert ratio >= floor, (
        f"chaos-leg throughput {ratio:.2f}x of fault-free is below the "
        f"{floor:.2f}x floor"
    )

    return {
        "bit_identical": True,
        "injected_errors": injected,
        "n_records": n_records,
        "recovered_records": n_records,
    }


def test_e25_resilience(benchmark):
    run_experiment(benchmark, "e25")
