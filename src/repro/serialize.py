"""JSON snapshots of fitted models and distributions.

A server that reconstructs distributions and trains models on randomized
data needs to persist them (the paper's deployment stores models in the
warehouse tier).  This module round-trips the library's artifacts through
plain JSON-able dicts:

* :class:`~repro.core.partition.Partition`
* :class:`~repro.core.histogram.HistogramDistribution`
* the additive randomizers of :mod:`repro.core.randomizers`
* :class:`~repro.tree.tree.DecisionTreeClassifier` (fitted)
* :class:`~repro.bayes.naive.NaiveBayesClassifier` (fitted)
* :class:`~repro.service.AggregationService` (the serving tier's
  snapshot/restore path)
* :class:`~repro.service.training.TrainedModel` (kind
  ``"trained_tree"`` — a service-trained tree plus its provenance)
* :class:`~repro.service.mining.MinedRules` (kind ``"mined_rules"`` —
  a service-mined association-rule set plus its provenance)

Use :func:`to_jsonable` / :func:`from_jsonable` for in-memory dicts and
:func:`save` / :func:`load` for files.

Examples
--------
>>> from repro import serialize
>>> from repro.core import Partition
>>> payload = serialize.to_jsonable(Partition.uniform(0, 1, 4))
>>> payload["kind"]
'partition'
>>> serialize.from_jsonable(payload).n_intervals
4
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.bayes.naive import NaiveBayesClassifier
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import (
    GaussianRandomizer,
    NullRandomizer,
    UniformRandomizer,
)
from repro.exceptions import NotFittedError, SerializationError, ValidationError
from repro.tree.tree import DecisionTreeClassifier, TreeNode

#: schema version embedded in every snapshot
FORMAT_VERSION = 1

#: additive randomizer kinds <-> their defining parameters
_RANDOMIZER_KINDS = {
    "uniform": (UniformRandomizer, ("half_width",)),
    "gaussian": (GaussianRandomizer, ("sigma",)),
    "none": (NullRandomizer, ()),
}


def _is_aggregation_service(obj) -> bool:
    """Imported lazily: the service tier snapshots *through* this module."""
    from repro.service.service import AggregationService

    return isinstance(obj, AggregationService)


def _is_trained_model(obj) -> bool:
    """Imported lazily: the training tier snapshots *through* this module."""
    from repro.service.training import TrainedModel

    return isinstance(obj, TrainedModel)


def _is_mined_rules(obj) -> bool:
    """Imported lazily: the mining tier snapshots *through* this module."""
    from repro.service.mining import MinedRules

    return isinstance(obj, MinedRules)


def _node_to_dict(node: TreeNode) -> dict:
    payload = {
        "class_counts": node.class_counts.tolist(),
        "depth": node.depth,
    }
    if not node.is_leaf:
        payload["attribute_index"] = node.attribute_index
        payload["threshold"] = node.threshold
        payload["left"] = _node_to_dict(node.left)
        payload["right"] = _node_to_dict(node.right)
    return payload


def _node_from_dict(payload: dict) -> TreeNode:
    node = TreeNode(
        class_counts=np.asarray(payload["class_counts"], dtype=float),
        depth=int(payload["depth"]),
    )
    if "left" in payload:
        node.attribute_index = int(payload["attribute_index"])
        node.threshold = float(payload["threshold"])
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


def to_jsonable(obj) -> dict:
    """Convert a supported object to a JSON-serializable dict."""
    if isinstance(obj, Partition):
        return {
            "kind": "partition",
            "version": FORMAT_VERSION,
            "edges": obj.edges.tolist(),
        }
    if isinstance(obj, HistogramDistribution):
        return {
            "kind": "histogram",
            "version": FORMAT_VERSION,
            "edges": obj.partition.edges.tolist(),
            "probs": obj.probs.tolist(),
        }
    if isinstance(obj, DecisionTreeClassifier):
        if obj.root_ is None:
            raise NotFittedError("cannot serialize an unfitted tree")
        return {
            "kind": "decision_tree",
            "version": FORMAT_VERSION,
            "partitions": [p.edges.tolist() for p in obj.partitions],
            "criterion": obj.criterion,
            "max_depth": obj.max_depth,
            "min_records_split": obj.min_records_split,
            "min_gain": obj.min_gain,
            "attribute_names": list(obj.attribute_names),
            "n_classes": obj.n_classes_,
            "root": _node_to_dict(obj.root_),
        }
    for noise, (cls, params) in _RANDOMIZER_KINDS.items():
        if type(obj) is cls:
            return {
                "kind": "randomizer",
                "version": FORMAT_VERSION,
                "noise": noise,
                **{p: float(getattr(obj, p)) for p in params},
            }
    if _is_aggregation_service(obj):
        return obj.snapshot()
    if _is_trained_model(obj):
        return {
            "kind": "trained_tree",
            "version": FORMAT_VERSION,
            "strategy": obj.strategy,
            "n_train": obj.n_train,
            "attributes": list(obj.attributes),
            "classes": obj.classes,
            "fit_seconds": obj.fit_seconds,
            "tree": to_jsonable(obj.tree),
        }
    if _is_mined_rules(obj):
        return {
            "kind": "mined_rules",
            "version": FORMAT_VERSION,
            "min_support": obj.min_support,
            "min_confidence": obj.min_confidence,
            "n_baskets": obj.n_baskets,
            "n_items": obj.n_items,
            "keep_prob": obj.keep_prob,
            "max_size": obj.max_size,
            "mine_seconds": obj.mine_seconds,
            "itemsets": [
                [sorted(itemset), support]
                for itemset, support in sorted(
                    obj.itemsets.items(), key=lambda kv: sorted(kv[0])
                )
            ],
            "rules": [
                {
                    "antecedent": sorted(rule.antecedent),
                    "consequent": sorted(rule.consequent),
                    "support": rule.support,
                    "confidence": rule.confidence,
                    "lift": rule.lift,
                }
                for rule in obj.rules
            ],
        }
    if isinstance(obj, NaiveBayesClassifier):
        if obj.log_priors_ is None:
            raise NotFittedError("cannot serialize an unfitted classifier")
        return {
            "kind": "naive_bayes",
            "version": FORMAT_VERSION,
            "partitions": [p.edges.tolist() for p in obj.partitions],
            "laplace": obj.laplace,
            "log_priors": obj.log_priors_.tolist(),
            "log_likelihoods": [lk.tolist() for lk in obj.log_likelihoods_],
        }
    raise ValidationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def from_jsonable(payload: dict):
    """Rebuild an object serialized by :func:`to_jsonable`.

    Any structural defect in the payload — a missing key, a field of
    the wrong type, an unparseable number — surfaces as
    :class:`~repro.exceptions.SerializationError` naming the snapshot
    kind, never as a bare ``KeyError`` escaping from the middle of the
    decode.
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ValidationError("payload is not a repro serialization dict")
    kind = payload.get("kind")
    try:
        return _dispatch_jsonable(payload, kind)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ValidationError):
            raise  # deliberate errors keep their specific message
        raise SerializationError(
            f"malformed {kind!r} snapshot: {exc}"
        ) from exc


def _dispatch_jsonable(payload: dict, kind):
    if kind == "partition":
        return Partition(np.asarray(payload["edges"], dtype=float))
    if kind == "histogram":
        partition = Partition(np.asarray(payload["edges"], dtype=float))
        return HistogramDistribution(
            partition, np.asarray(payload["probs"], dtype=float)
        )
    if kind == "decision_tree":
        partitions = [
            Partition(np.asarray(edges, dtype=float))
            for edges in payload["partitions"]
        ]
        tree = DecisionTreeClassifier(
            partitions,
            criterion=payload["criterion"],
            max_depth=payload["max_depth"],
            min_records_split=payload["min_records_split"],
            min_gain=payload["min_gain"],
            attribute_names=payload["attribute_names"],
        )
        tree.n_classes_ = int(payload["n_classes"])
        tree.root_ = _node_from_dict(payload["root"])
        return tree
    if kind == "randomizer":
        noise = payload.get("noise")
        if noise not in _RANDOMIZER_KINDS:
            raise ValidationError(f"unknown randomizer noise kind {noise!r}")
        cls, params = _RANDOMIZER_KINDS[noise]
        try:
            return cls(**{p: float(payload[p]) for p in params})
        except KeyError as exc:
            raise ValidationError(
                f"randomizer payload is missing parameter {exc}"
            ) from exc
    if kind == "aggregation_service":
        from repro.service.service import AggregationService

        return AggregationService.restore(payload)
    if kind == "trained_tree":
        from repro.service.training import TrainedModel

        tree = from_jsonable(payload["tree"])
        model = TrainedModel(
            strategy=str(payload["strategy"]),
            tree=tree,
            n_train=int(payload["n_train"]),
            attributes=tuple(payload["attributes"]),
            classes=int(payload["classes"]),
            fit_seconds=float(payload["fit_seconds"]),
        )
        if not isinstance(model.tree, DecisionTreeClassifier):
            embedded = payload["tree"]
            embedded_kind = (
                embedded.get("kind")
                if isinstance(embedded, dict)
                else repr(embedded)
            )
            raise SerializationError(
                "trained_tree snapshot must embed a decision_tree "
                f"payload, got kind {embedded_kind}"
            )
        if len(model.attributes) != len(model.tree.partitions):
            raise SerializationError(
                f"trained_tree snapshot names {len(model.attributes)} "
                f"attribute(s) but its tree has "
                f"{len(model.tree.partitions)} — the snapshot's schema "
                "disagrees with the embedded tree"
            )
        return model
    if kind == "mined_rules":
        from repro.mining.apriori import AssociationRule
        from repro.service.mining import MinedRules

        itemsets = {}
        for entry in payload["itemsets"]:
            items, itemset_support = entry
            itemsets[frozenset(int(i) for i in items)] = float(itemset_support)
        rules = tuple(
            AssociationRule(
                antecedent=frozenset(int(i) for i in rule["antecedent"]),
                consequent=frozenset(int(i) for i in rule["consequent"]),
                support=float(rule["support"]),
                confidence=float(rule["confidence"]),
                lift=float(rule["lift"]),
            )
            for rule in payload["rules"]
        )
        result = MinedRules(
            min_support=float(payload["min_support"]),
            min_confidence=float(payload["min_confidence"]),
            n_baskets=int(payload["n_baskets"]),
            n_items=int(payload["n_items"]),
            keep_prob=float(payload["keep_prob"]),
            max_size=int(payload["max_size"]),
            itemsets=itemsets,
            rules=rules,
            mine_seconds=float(payload["mine_seconds"]),
        )
        for itemset in result.itemsets:
            if any(not 0 <= item < result.n_items for item in itemset):
                raise SerializationError(
                    f"mined_rules snapshot holds itemset {sorted(itemset)} "
                    f"outside its declared universe of {result.n_items} items"
                )
        return result
    if kind == "naive_bayes":
        partitions = [
            Partition(np.asarray(edges, dtype=float))
            for edges in payload["partitions"]
        ]
        model = NaiveBayesClassifier(partitions, laplace=payload["laplace"])
        model.log_priors_ = np.asarray(payload["log_priors"], dtype=float)
        model.log_likelihoods_ = [
            np.asarray(lk, dtype=float) for lk in payload["log_likelihoods"]
        ]
        return model
    raise ValidationError(f"unknown serialization kind {kind!r}")


def payload_digest(payload: dict) -> str:
    """Canonical SHA-256 digest of a snapshot dict (sans ``integrity``).

    The digest is computed over the sorted-key JSON encoding of the
    payload with any existing ``integrity`` entry removed, so the value
    can be embedded into the document it covers.
    """
    body = {k: v for k, v in payload.items() if k != "integrity"}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save(obj, path) -> None:
    """Serialize ``obj`` to a JSON file (atomically and durably).

    The document carries an ``integrity`` SHA-256 digest of its own
    canonical encoding (verified by :func:`load`), is written to a
    sibling temp file, flushed and fsynced, then moved into place with
    ``os.replace`` — and the directory entry is fsynced too — so a
    crash, a full disk, or a server killed mid-snapshot can never leave
    a truncated or silently-corrupt file where a valid snapshot was.
    """
    path = Path(path)
    payload = to_jsonable(obj)
    payload["integrity"] = payload_digest(payload)
    document = json.dumps(payload)
    temp = path.with_name(path.name + ".tmp")
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        _fsync_dir(path.parent)
    except OSError:
        with contextlib.suppress(OSError):  # best effort; original error wins
            temp.unlink()
        raise


def _fsync_dir(directory: Path) -> None:
    """fsync a directory entry; skipped where directories can't be opened."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load(path):
    """Load an object saved with :func:`save`.

    When the document embeds an ``integrity`` digest, it is verified
    against the payload before any reconstruction: a mismatch means the
    bytes on disk are not the bytes that were written, and surfaces as
    a loud :class:`~repro.exceptions.SerializationError` rather than a
    quietly wrong model.  Digest-less documents (pre-upgrade snapshots,
    hand-written specs) still load.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"{str(path)!r} is not valid JSON ({exc}); not a repro snapshot"
        ) from exc
    if isinstance(payload, dict) and "integrity" in payload:
        claimed = payload.pop("integrity")
        actual = payload_digest(payload)
        if claimed != actual:
            raise SerializationError(
                f"{str(path)!r} is corrupt: integrity digest mismatch "
                f"(snapshot claims {str(claimed)[:12]}..., payload hashes "
                f"to {actual[:12]}...)"
            )
    return from_jsonable(payload)
