"""Classification metrics used by the experiment harness.

The paper reports plain accuracy ("correction rate") on a clean test set;
the confusion matrix and per-class recall exist for diagnostics when a
strategy degrades asymmetrically (e.g. Randomized collapsing to the
majority class at high privacy).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _check_labels(predicted, actual) -> tuple:
    predicted = np.asarray(predicted, dtype=np.int64)
    actual = np.asarray(actual, dtype=np.int64)
    if predicted.shape != actual.shape or predicted.ndim != 1:
        raise ValidationError(
            f"predicted and actual must be equal-length 1-D arrays, got "
            f"{predicted.shape} and {actual.shape}"
        )
    if predicted.size == 0:
        raise ValidationError("label arrays must not be empty")
    if predicted.min() < 0 or actual.min() < 0:
        raise ValidationError("labels must be non-negative")
    return predicted, actual


def accuracy(predicted, actual) -> float:
    """Fraction of records classified correctly."""
    predicted, actual = _check_labels(predicted, actual)
    return float((predicted == actual).mean())


def confusion_matrix(predicted, actual, *, n_classes=None) -> np.ndarray:
    """Confusion matrix ``C[a, p]`` counting actual ``a`` predicted as ``p``."""
    predicted, actual = _check_labels(predicted, actual)
    if n_classes is None:
        n_classes = int(max(predicted.max(), actual.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (actual, predicted), 1)
    return matrix


def per_class_recall(predicted, actual) -> np.ndarray:
    """Recall per actual class (``nan`` for classes absent from ``actual``)."""
    matrix = confusion_matrix(predicted, actual)
    totals = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        recall = np.diag(matrix) / totals
    return np.where(totals > 0, recall, np.nan)
