"""Random-number-generator plumbing.

All stochastic code in this package accepts a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (shared stream).  :func:`ensure_rng`
normalizes the three cases; :func:`spawn_rngs` derives independent child
generators for parallel or per-attribute use without correlated streams.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses ``Generator.spawn`` (NumPy >= 1.25) when available and falls back
    to seeding children from the parent's bit stream otherwise.  The parent
    generator's state advances either way, so repeated calls yield fresh
    children.
    """
    if count < 0:
        raise ValidationError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed)
    try:
        return rng.spawn(count)
    except AttributeError:  # pragma: no cover - old NumPy fallback
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
