"""Joint reconstruction: recovering correlation the 1-D design loses.

The paper reconstructs each attribute independently, so any correlation
*between* attributes is invisible to it — the root cause of the accuracy
gap on multi-attribute concepts (see EXPERIMENTS.md, E5/E16).  Because
noise is independent across attributes, the same Bayes machinery runs on
a 2-D product grid and recovers the joint.  Run:

    python examples/joint_reconstruction.py
"""

import numpy as np

from repro.core import JointBayesReconstructor, Partition, UniformRandomizer
from repro.utils.rng import ensure_rng

RHO = 0.8
N = 15_000

# A correlated pair on [0,1]^2 (think: age and salary within one class).
rng = ensure_rng(4)
z1 = rng.normal(size=N)
z2 = RHO * z1 + np.sqrt(1 - RHO**2) * rng.normal(size=N)
x1 = np.clip((z1 + 3) / 6, 0, 1)
x2 = np.clip((z2 + 3) / 6, 0, 1)

noise = UniformRandomizer.from_privacy(0.5, 1.0)  # 50% privacy each
w1 = noise.randomize(x1, seed=5)
w2 = noise.randomize(x2, seed=6)

part = Partition.uniform(0, 1, 15)
joint = JointBayesReconstructor().reconstruct(w1, w2, (part, part), (noise, noise))

print(f"true correlation:                 {np.corrcoef(x1, x2)[0, 1]:.3f}")
print(
    f"correlation of randomized values: {np.corrcoef(w1, w2)[0, 1]:.3f}  (attenuated)"
)
print(f"per-attribute reconstruction:      0.000  (independent by construction)")
print(f"joint reconstruction:             {joint.correlation():.3f}  "
      f"({joint.n_iterations} sweeps)")

print("\nJoint density estimate (rows = attribute 1, columns = attribute 2):")
peak = joint.probs.max()
for i in range(joint.probs.shape[0]):
    line = "".join(
        " .:-=+*#@"[min(8, int(9 * joint.probs[i, j] / peak))]
        for j in range(joint.probs.shape[1])
    )
    print(f"  {part.midpoints[i]:5.2f} |{line}|")
print("\nThe diagonal ridge is the correlation: visible in the joint")
print("estimate, impossible to represent in per-attribute reconstructions.")
