#!/usr/bin/env python
"""Gate CI on a checked-in line-coverage floor (stdlib only).

Reads the Cobertura-style ``coverage.xml`` emitted by ``pytest --cov``
and fails when the overall line rate drops below the committed floor::

    python tools/check_coverage.py coverage.xml --floor-file tools/coverage_floor.txt

The floor file holds one number (percent).  It is a *ratchet*: when real
coverage rises, bump the floor in the same PR — CI only defends against
regressions, it never celebrates improvements on its own.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path


def read_line_rate(report_path) -> float:
    """Overall line coverage (percent) from a coverage XML report."""
    try:
        root = ET.parse(report_path).getroot()
    except (OSError, ET.ParseError) as exc:
        raise SystemExit(f"error: cannot read {report_path}: {exc}") from exc
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(
            f"error: {report_path} has no line-rate attribute; is it a "
            "coverage XML report?"
        )
    return float(rate) * 100.0


def read_floor(floor_path) -> float:
    """The committed coverage floor (percent)."""
    try:
        text = Path(floor_path).read_text().strip()
        return float(text)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read floor {floor_path}: {exc}") from exc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="coverage XML report (pytest --cov-report=xml)")
    parser.add_argument(
        "--floor-file",
        default="tools/coverage_floor.txt",
        help="file holding the committed floor percentage",
    )
    args = parser.parse_args(argv)

    actual = read_line_rate(args.report)
    floor = read_floor(args.floor_file)
    print(f"line coverage: {actual:.2f}% (floor {floor:.2f}%)")
    if actual < floor:
        print(
            f"FAIL: coverage {actual:.2f}% fell below the committed floor "
            f"{floor:.2f}% ({args.floor_file})",
            file=sys.stderr,
        )
        return 1
    headroom = actual - floor
    if headroom > 5.0:
        print(
            f"note: {headroom:.1f} points of headroom — consider ratcheting "
            f"the floor up in {args.floor_file}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
