"""Tests for the interval-based decision tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import Partition
from repro.exceptions import NotFittedError, ValidationError
from repro.tree.tree import DecisionTreeClassifier, TreeNode


def make_tree(n_attrs=1, m=10, **kwargs):
    return DecisionTreeClassifier(
        [Partition.uniform(0, 1, m) for _ in range(n_attrs)], **kwargs
    )


@pytest.fixture
def xor_data(rng):
    """Two attributes; class = XOR of halves — needs depth 2."""
    x = rng.random((2_000, 2))
    y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(int)
    return x, y


class TestConfiguration:
    def test_requires_partitions(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier([])

    def test_rejects_non_partition(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier([np.array([0, 1])])

    def test_rejects_bad_criterion(self):
        with pytest.raises(ValidationError):
            make_tree(criterion="mse")

    def test_rejects_bad_min_split(self):
        with pytest.raises(ValidationError):
            make_tree(min_records_split=1)

    def test_rejects_negative_depth(self):
        with pytest.raises(ValidationError):
            make_tree(max_depth=-1)

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValidationError):
            make_tree(n_attrs=2, attribute_names=["only-one"])


class TestFitting:
    def test_simple_threshold(self):
        tree = make_tree()
        x = np.linspace(0, 0.999, 200)[:, None]
        y = (x[:, 0] >= 0.5).astype(int)
        tree.fit(x, y)
        assert tree.root_.attribute_index == 0
        assert tree.root_.threshold == pytest.approx(0.5)
        assert tree.score(x, y) == 1.0

    def test_xor_needs_two_levels(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2)
        tree.fit(x, y)
        assert tree.depth >= 2
        assert tree.score(x, y) > 0.95

    def test_pure_labels_give_leaf(self):
        tree = make_tree()
        tree.fit(np.random.default_rng(0).random((50, 1)), np.zeros(50, dtype=int))
        assert tree.root_.is_leaf
        assert tree.root_.prediction == 0

    def test_max_depth_zero_gives_stump(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2, max_depth=0)
        tree.fit(x, y)
        assert tree.root_.is_leaf

    def test_min_records_split_respected(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2, min_records_split=10_000)
        tree.fit(x, y)
        assert tree.root_.is_leaf

    def test_min_gain_blocks_marginal_splits(self, rng):
        x = rng.random((500, 1))
        y = rng.integers(0, 2, 500)  # pure noise
        tree = make_tree(min_gain=0.01)
        tree.fit(x, y)
        assert tree.n_nodes <= 3

    def test_multiclass(self, rng):
        x = rng.random((900, 1))
        y = np.digitize(x[:, 0], [1 / 3, 2 / 3])
        tree = make_tree(m=30)
        tree.fit(x, y)
        assert tree.n_classes_ == 3
        assert tree.score(x, y) > 0.95

    def test_fit_intervals_direct(self):
        tree = make_tree(m=4)
        intervals = np.array([[0], [1], [2], [3]] * 20)
        labels = (intervals[:, 0] >= 2).astype(int)
        tree.fit_intervals(intervals, labels)
        assert tree.score(np.array([[0.1], [0.9]]), np.array([0, 1])) == 1.0

    def test_fit_empty_rejected(self):
        tree = make_tree()
        with pytest.raises(ValidationError):
            tree.fit(np.empty((0, 1)), np.empty(0, dtype=int))

    def test_fit_wrong_width_rejected(self):
        tree = make_tree(n_attrs=2)
        with pytest.raises(ValidationError):
            tree.fit(np.zeros((5, 3)), np.zeros(5, dtype=int))

    def test_transformer_requires_raw(self):
        tree = make_tree()
        with pytest.raises(ValidationError):
            tree.fit_intervals(
                np.zeros((5, 1), dtype=int),
                np.zeros(5, dtype=int),
                node_transformer=lambda *a: a[2],
            )

    def test_node_transformer_receives_used_attributes(self, xor_data):
        x, y = xor_data
        seen_used = []

        def transformer(raw, labels, intervals, used):
            seen_used.append(used)
            return intervals

        tree = make_tree(n_attrs=2)
        tree.fit_intervals(
            tree.locate(x), y, raw_values=x, node_transformer=transformer
        )
        assert seen_used  # called at non-root nodes
        assert all(isinstance(u, frozenset) for u in seen_used)
        assert any(len(u) >= 1 for u in seen_used)


class TestPrediction:
    def test_not_fitted_raises(self):
        tree = make_tree()
        with pytest.raises(NotFittedError):
            tree.predict(np.zeros((1, 1)))
        with pytest.raises(NotFittedError):
            _ = tree.n_nodes

    def test_predict_shape(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2)
        tree.fit(x, y)
        assert tree.predict(x[:17]).shape == (17,)

    def test_predict_wrong_width_rejected(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2)
        tree.fit(x, y)
        with pytest.raises(ValidationError):
            tree.predict(np.zeros((3, 5)))

    def test_out_of_domain_values_routed(self):
        tree = make_tree()
        x = np.linspace(0, 0.999, 100)[:, None]
        y = (x[:, 0] >= 0.5).astype(int)
        tree.fit(x, y)
        preds = tree.predict(np.array([[-10.0], [10.0]]))
        np.testing.assert_array_equal(preds, [0, 1])

    def test_export_text(self, xor_data):
        x, y = xor_data
        tree = make_tree(
            n_attrs=2, attribute_names=["alpha", "beta"], max_depth=3
        )
        tree.fit(x, y)
        text = tree.export_text()
        assert "alpha" in text or "beta" in text
        assert "predict" in text

    def test_node_counts_consistent(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2)
        tree.fit(x, y)
        # internal node counts equal the sum of their children's
        stack = [tree.root_]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                total = node.left.class_counts + node.right.class_counts
                np.testing.assert_allclose(node.class_counts, total)
                stack.extend((node.left, node.right))


class TestPruning:
    def test_noise_tree_collapses(self, rng):
        """A tree grown on pure noise prunes back to (almost) a stump."""
        x = rng.random((2_000, 2))
        y = rng.integers(0, 2, 2_000)
        tree = make_tree(n_attrs=2, min_records_split=20)
        tree.fit(x[:1_500], y[:1_500])
        grown = tree.n_nodes
        removed = tree.prune(x[1_500:], y[1_500:])
        assert removed > 0
        # reduced-error pruning can keep chance-lucky subtrees, but the
        # bulk of a noise-fitted tree must go
        assert tree.n_nodes < 0.5 * grown

    def test_signal_tree_survives(self, rng):
        x = rng.random((2_000, 1))
        y = (x[:, 0] > 0.5).astype(int)
        tree = make_tree()
        tree.fit(x[:1_500], y[:1_500])
        tree.prune(x[1_500:], y[1_500:])
        assert tree.depth >= 1  # the real split stays
        assert tree.score(x[1_500:], y[1_500:]) > 0.95

    def test_prune_never_hurts_validation_accuracy(self, xor_data, rng):
        x, y = xor_data
        hold = rng.random((500, 2))
        hold_y = ((hold[:, 0] > 0.5) ^ (hold[:, 1] > 0.5)).astype(int)
        tree = make_tree(n_attrs=2, min_records_split=5)
        tree.fit(x, y)
        before = tree.score(hold, hold_y)
        tree.prune(hold, hold_y)
        assert tree.score(hold, hold_y) >= before - 1e-12

    def test_prune_requires_fit(self):
        tree = make_tree()
        with pytest.raises(NotFittedError):
            tree.prune(np.zeros((1, 1)), np.zeros(1, dtype=int))

    def test_prune_validates_shapes(self, xor_data):
        x, y = xor_data
        tree = make_tree(n_attrs=2)
        tree.fit(x, y)
        with pytest.raises(ValidationError):
            tree.prune(np.zeros((3, 5)), np.zeros(3, dtype=int))
        with pytest.raises(ValidationError):
            tree.prune(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_unseen_branches_collapse(self, rng):
        """Branches no validation record reaches are pruned away."""
        x = rng.random((1_000, 1))
        y = (x[:, 0] > 0.5).astype(int)
        tree = make_tree(min_records_split=5)
        tree.fit(x, y)
        # validation set confined to [0, 0.4]: the right subtree is unseen
        hold = rng.random((200, 1)) * 0.4
        tree.prune(hold, np.zeros(200, dtype=int))
        assert tree.root_.is_leaf or tree.root_.right.is_leaf


class TestTreeNode:
    def test_leaf_properties(self):
        node = TreeNode(class_counts=np.array([3.0, 7.0]), depth=0)
        assert node.is_leaf
        assert node.prediction == 1
        assert node.n_records == 10

    def test_tie_breaks_to_lower_label(self):
        node = TreeNode(class_counts=np.array([5.0, 5.0]), depth=0)
        assert node.prediction == 0


@given(
    seed=st.integers(0, 10_000),
    threshold=st.floats(0.15, 0.85),
    n=st.integers(50, 400),
)
def test_property_single_split_recovery(seed, threshold, n):
    """A tree must recover any single-threshold concept up to grid error."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, 1))
    y = (x[:, 0] >= threshold).astype(int)
    if len(np.unique(y)) < 2:
        return
    tree = DecisionTreeClassifier([Partition.uniform(0, 1, 40)])
    tree.fit(x, y)
    # training accuracy only limited by the 1/40 grid
    assert tree.score(x, y) >= 0.9


def test_identical_to_unfitted_comparand_is_false():
    fitted = DecisionTreeClassifier([Partition.uniform(0, 1, 4)]).fit(
        np.array([[0.1], [0.9]]), np.array([0, 1])
    )
    unfitted = DecisionTreeClassifier([Partition.uniform(0, 1, 4)])
    assert not fitted.identical_to(unfitted)
    assert not fitted.identical_to("not a tree")
    assert fitted.identical_to(fitted)
