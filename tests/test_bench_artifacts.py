"""Tests for the BENCH_*.json artifact schema and IO."""

from __future__ import annotations

import json
import math

import pytest

from repro.bench import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    BenchArtifact,
    load_artifact,
    load_artifact_dir,
    write_artifact,
)
from repro.bench.artifacts import artifact_path, check_metrics, host_info
from repro.exceptions import BenchmarkError


def _artifact(**kwargs):
    defaults = dict(
        experiment_id="e1",
        seed=101,
        scale=1.0,
        params={"n": 10_000},
        metrics={"l1": 0.08, "iters": 12},
        timing={"wall_seconds": 0.01, "peak_rss_kb": 5000},
        host={"python": "3.11"},
        title="toy",
        tags=("smoke",),
    )
    defaults.update(kwargs)
    return BenchArtifact(**defaults)


class TestRoundTrip:
    def test_write_then_load_is_equal(self, tmp_path):
        artifact = _artifact()
        path = write_artifact(artifact, tmp_path)
        assert path == artifact_path(tmp_path, "e1")
        assert path.name == f"{ARTIFACT_PREFIX}e1.json"
        assert load_artifact(path) == artifact

    def test_nan_metric_round_trips(self, tmp_path):
        artifact = _artifact(metrics={"chi2": float("nan")})
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)
        assert math.isnan(loaded.metrics["chi2"])

    def test_nonfinite_metrics_stay_strict_json(self, tmp_path):
        artifact = _artifact(
            metrics={
                "gamma": float("inf"),
                "neg": float("-inf"),
                "chi2": float("nan"),
            }
        )
        path = write_artifact(artifact, tmp_path)

        def _reject_literal(name):
            raise AssertionError(f"non-strict JSON literal {name!r} in artifact")

        doc = json.loads(path.read_text(), parse_constant=_reject_literal)
        assert doc["metrics"]["gamma"] == "Infinity"
        assert doc["metrics"]["neg"] == "-Infinity"
        assert doc["metrics"]["chi2"] == "NaN"
        loaded = load_artifact(path)
        assert loaded.metrics["gamma"] == math.inf
        assert loaded.metrics["neg"] == -math.inf
        assert math.isnan(loaded.metrics["chi2"])

    def test_sentinel_like_strings_round_trip_as_strings(self, tmp_path):
        artifact = _artifact(
            metrics={
                "mode": "Infinity",
                "note": "NaN",
                "already_escaped": "\\Infinity",
                "plain": "uniform",
            }
        )
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)
        assert loaded.metrics == artifact.metrics
        assert isinstance(loaded.metrics["mode"], str)

    def test_serialization_is_byte_stable(self, tmp_path):
        a = _artifact(metrics={"b": 1.0, "a": 2.0})
        b = _artifact(metrics={"a": 2.0, "b": 1.0})
        path_a = write_artifact(a, tmp_path / "one")
        path_b = write_artifact(b, tmp_path / "two")
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_deterministic_dict_drops_volatile_sections(self):
        doc = _artifact().deterministic_dict()
        assert "timing" not in doc and "host" not in doc
        assert doc["metrics"] == {"l1": 0.08, "iters": 12}


class TestSchemaValidation:
    def test_schema_version_bump_rejected(self, tmp_path):
        path = write_artifact(_artifact(), tmp_path)
        doc = json.loads(path.read_text())
        doc["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(BenchmarkError, match="schema_version"):
            load_artifact(path)

    def test_missing_field_rejected(self, tmp_path):
        path = write_artifact(_artifact(), tmp_path)
        doc = json.loads(path.read_text())
        del doc["metrics"]
        path.write_text(json.dumps(doc))
        with pytest.raises(BenchmarkError, match="missing fields"):
            load_artifact(path)

    def test_unknown_field_rejected(self, tmp_path):
        path = write_artifact(_artifact(), tmp_path)
        doc = json.loads(path.read_text())
        doc["surprise"] = 1
        path.write_text(json.dumps(doc))
        with pytest.raises(BenchmarkError, match="unknown fields"):
            load_artifact(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / f"{ARTIFACT_PREFIX}bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="does not exist"):
            load_artifact(tmp_path / "BENCH_ghost.json")


class TestCheckMetrics:
    def test_accepts_scalars(self):
        metrics = {"a": 1, "b": 2.5, "c": "x", "d": True, "e": None}
        assert check_metrics(metrics) == metrics

    def test_rejects_nested(self):
        with pytest.raises(BenchmarkError, match="JSON scalar"):
            check_metrics({"a": {"nested": 1}})

    def test_rejects_non_string_keys(self):
        with pytest.raises(BenchmarkError, match="keys must be strings"):
            check_metrics({1: 2.0})

    def test_rejects_non_dict(self):
        with pytest.raises(BenchmarkError, match="must be a dict"):
            check_metrics([1, 2])


class TestDirectoryLoading:
    def test_loads_all_artifacts(self, tmp_path):
        write_artifact(_artifact(experiment_id="e1"), tmp_path)
        write_artifact(_artifact(experiment_id="e2"), tmp_path)
        loaded = load_artifact_dir(tmp_path)
        assert set(loaded) == {"e1", "e2"}

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="no BENCH_"):
            load_artifact_dir(tmp_path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError, match="does not exist"):
            load_artifact_dir(tmp_path / "ghost")

    def test_conflicting_ids_rejected(self, tmp_path):
        write_artifact(_artifact(experiment_id="e1"), tmp_path)
        # second file, same embedded id
        doc = _artifact(experiment_id="e1").to_dict()
        (tmp_path / f"{ARTIFACT_PREFIX}e1_copy.json").write_text(json.dumps(doc))
        with pytest.raises(BenchmarkError, match="two artifacts"):
            load_artifact_dir(tmp_path)


def test_host_info_fields():
    info = host_info()
    assert {"platform", "machine", "python", "numpy", "cpu_count"} <= set(info)
