"""Unit and property tests for repro.core.histogram."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.exceptions import ValidationError


@pytest.fixture
def tri_dist(unit_partition):
    probs = np.zeros(10)
    probs[2:5] = [0.25, 0.5, 0.25]
    return HistogramDistribution(unit_partition, probs)


class TestConstruction:
    def test_probs_normalized_storage(self, unit_partition):
        dist = HistogramDistribution(unit_partition, np.full(10, 0.1))
        assert dist.probs.sum() == pytest.approx(1.0)

    def test_rejects_wrong_length(self, unit_partition):
        with pytest.raises(ValidationError):
            HistogramDistribution(unit_partition, np.full(9, 1 / 9))

    def test_rejects_negative(self, unit_partition):
        probs = np.full(10, 0.1)
        probs[0] = -0.1
        probs[1] = 0.3
        with pytest.raises(ValidationError):
            HistogramDistribution(unit_partition, probs)

    def test_rejects_not_summing_to_one(self, unit_partition):
        with pytest.raises(ValidationError):
            HistogramDistribution(unit_partition, np.full(10, 0.2))

    def test_from_values(self, unit_partition):
        dist = HistogramDistribution.from_values(
            [0.05, 0.05, 0.95, 0.55], unit_partition
        )
        assert dist.probs[0] == pytest.approx(0.5)
        assert dist.probs[9] == pytest.approx(0.25)

    def test_from_values_empty_rejected(self, unit_partition):
        with pytest.raises(ValidationError):
            HistogramDistribution.from_values([], unit_partition)

    def test_uniform(self, unit_partition):
        dist = HistogramDistribution.uniform(unit_partition)
        np.testing.assert_allclose(dist.probs, 0.1)


class TestQueries:
    def test_mean(self, tri_dist):
        expected = 0.25 * 0.25 + 0.5 * 0.35 + 0.25 * 0.45
        assert tri_dist.mean() == pytest.approx(expected)

    def test_density_integrates_to_one(self, tri_dist):
        total = (tri_dist.density() * tri_dist.partition.widths).sum()
        assert total == pytest.approx(1.0)

    def test_cdf_monotone_ending_at_one(self, tri_dist):
        cdf = tri_dist.cdf()
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_expected_counts(self, tri_dist):
        counts = tri_dist.expected_counts(100)
        assert counts.sum() == pytest.approx(100)
        assert counts[3] == pytest.approx(50)

    def test_expected_counts_negative_rejected(self, tri_dist):
        with pytest.raises(ValidationError):
            tri_dist.expected_counts(-1)

    def test_sample_within_support(self, tri_dist):
        values = tri_dist.sample(500, seed=0)
        assert values.min() >= 0.2
        assert values.max() <= 0.5

    def test_sample_distribution_close(self, tri_dist):
        values = tri_dist.sample(20_000, seed=1)
        empirical = HistogramDistribution.from_values(values, tri_dist.partition)
        assert tri_dist.l1_distance(empirical) < 0.05


class TestIntegerCounts:
    def test_sums_exactly(self, tri_dist):
        for n in (0, 1, 7, 99, 1000):
            assert tri_dist.integer_counts(n).sum() == n

    def test_close_to_expected(self, tri_dist):
        counts = tri_dist.integer_counts(1000)
        np.testing.assert_allclose(counts, tri_dist.expected_counts(1000), atol=1.0)

    def test_non_negative(self, tri_dist):
        assert tri_dist.integer_counts(3).min() >= 0


class TestComparisons:
    def test_l1_zero_for_self(self, tri_dist):
        assert tri_dist.l1_distance(tri_dist) == 0.0

    def test_l1_maximal_for_disjoint(self, unit_partition):
        a = np.zeros(10)
        a[0] = 1.0
        b = np.zeros(10)
        b[9] = 1.0
        d1 = HistogramDistribution(unit_partition, a)
        d2 = HistogramDistribution(unit_partition, b)
        assert d1.l1_distance(d2) == pytest.approx(2.0)
        assert d1.total_variation(d2) == pytest.approx(1.0)

    def test_l2_le_l1(self, tri_dist, unit_partition):
        other = HistogramDistribution.uniform(unit_partition)
        assert tri_dist.l2_distance(other) <= tri_dist.l1_distance(other) + 1e-12

    def test_mismatched_grids_rejected(self, tri_dist):
        other = HistogramDistribution.uniform(Partition.uniform(0, 1, 5))
        with pytest.raises(ValidationError):
            tri_dist.l1_distance(other)

    def test_restricted_to_smaller_grid(self, tri_dist):
        expanded = tri_dist.partition.expanded(0.3)
        padded = np.zeros(expanded.n_intervals)
        offset = (expanded.n_intervals - 10) // 2
        padded[offset : offset + 10] = tri_dist.probs
        big = HistogramDistribution(expanded, padded)
        back = big.restricted_to(tri_dist.partition)
        assert tri_dist.l1_distance(back) < 1e-9


@given(
    weights=st.lists(st.floats(0.0, 10.0), min_size=2, max_size=30).filter(
        lambda w: sum(w) > 1e-6
    )
)
def test_property_integer_counts_sum(weights):
    probs = np.asarray(weights) / sum(weights)
    part = Partition.uniform(0, 1, len(weights))
    dist = HistogramDistribution(part, probs)
    for n in (0, 1, 13, 257):
        counts = dist.integer_counts(n)
        assert counts.sum() == n
        assert counts.min() >= 0
        # largest-remainder rounding never deviates by a full record
        assert np.all(np.abs(counts - dist.expected_counts(n)) <= 1.0 + 1e-9)


@given(
    weights_a=st.lists(st.floats(0.0, 1.0), min_size=5, max_size=5),
    weights_b=st.lists(st.floats(0.0, 1.0), min_size=5, max_size=5),
)
def test_property_distance_axioms(weights_a, weights_b):
    part = Partition.uniform(0, 1, 5)
    a = np.asarray(weights_a) + 1e-6
    b = np.asarray(weights_b) + 1e-6
    da = HistogramDistribution(part, a / a.sum())
    db = HistogramDistribution(part, b / b.sum())
    # symmetry and non-negativity of the distances
    assert da.l1_distance(db) == pytest.approx(db.l1_distance(da))
    assert da.l1_distance(db) >= 0
    assert 0 <= da.total_variation(db) <= 1.0 + 1e-12
