"""Distribution reconstruction from randomized values (paper §3).

Given ``n`` disclosed values ``w_i = x_i + r_i`` and the known noise
density ``f_Y``, the paper estimates the original density ``f_X`` by
iterating Bayes' rule:

    f_X^{j+1}(a) = (1/n) * sum_i  f_Y(w_i - a) f_X^j(a)
                                  / integral f_Y(w_i - z) f_X^j(z) dz

starting from the uniform density.  The practical algorithm (§3.2)
partitions the domain into ``m`` intervals, approximates values by interval
midpoints, and buckets the ``w_i`` into intervals too, turning each sweep
into an ``O(m^2)`` matrix iteration independent of ``n``.

:class:`BayesReconstructor` implements that partition algorithm with the
paper's two stopping rules: successive-estimate change (default) and a
chi-squared goodness-of-fit test of the observed randomized histogram
against the randomization of the current estimate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer, transition_matrix
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.validation import check_1d_array, check_positive

#: smallest admissible mixture weight during iteration (guards 0/0)
_EPS = 1e-300


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of a distribution reconstruction.

    Attributes
    ----------
    distribution:
        Estimated distribution of the *original* values on the requested
        partition.
    n_iterations:
        Number of Bayes sweeps performed.
    converged:
        ``False`` when iteration stopped on the iteration cap instead of
        the tolerance / chi-squared criterion.
    chi2_statistic / chi2_threshold:
        Final goodness-of-fit statistic of the observed randomized
        histogram against the randomization of the estimate, and the 95 %
        critical value it is compared to (``nan`` when not computed).
    delta_history:
        L1 change of the estimate at each sweep (diagnostic).
    """

    distribution: HistogramDistribution
    n_iterations: int
    converged: bool
    chi2_statistic: float = float("nan")
    chi2_threshold: float = float("nan")
    delta_history: tuple = field(default=())


def _prepare(
    randomized_values,
    x_partition: Partition,
    randomizer: AdditiveRandomizer,
    *,
    transition_method: str,
    coverage: float,
):
    """Shared setup: bucket the randomized values and build the noise kernel.

    Returns ``(y_counts, kernel)`` where ``kernel[s, p]`` is
    ``P(Y in I_s | X = midpoint_p)`` — also used by the EM reconstructor.
    """
    w = check_1d_array(randomized_values, "randomized_values")
    margin = randomizer.support_half_width(coverage)
    y_partition = x_partition.expanded(margin)
    y_counts = y_partition.histogram(w).astype(float)
    kernel = transition_matrix(
        y_partition, x_partition, randomizer, method=transition_method
    )
    return y_counts, kernel


def _chi2_fit(y_counts: np.ndarray, expected: np.ndarray) -> tuple[float, float]:
    """Chi-squared statistic of observed vs expected interval counts.

    Intervals with tiny expectation are pooled into their neighbours
    (classic rule of thumb: expected >= 5) so the statistic is stable.
    """
    total = y_counts.sum()
    expected = expected / max(expected.sum(), _EPS) * total
    order = np.argsort(-expected, kind="stable")
    obs_sorted, exp_sorted = y_counts[order], expected[order]
    keep = exp_sorted >= 5.0
    if not np.any(keep):
        return float("nan"), float("nan")
    obs_main, exp_main = obs_sorted[keep], exp_sorted[keep]
    # Pool everything below the threshold into one pseudo-cell.
    obs_rest, exp_rest = obs_sorted[~keep].sum(), exp_sorted[~keep].sum()
    if exp_rest > 0:
        obs_main = np.append(obs_main, obs_rest)
        exp_main = np.append(exp_main, exp_rest)
    statistic = float(((obs_main - exp_main) ** 2 / exp_main).sum())
    dof = max(obs_main.size - 1, 1)
    threshold = float(stats.chi2.ppf(0.95, dof))
    return statistic, threshold


def _run_bayes(
    y_counts: np.ndarray,
    kernel: np.ndarray,
    theta: np.ndarray,
    *,
    max_iterations: int,
    tol: float,
    stopping: str,
):
    """Core Bayes sweep loop shared by batch and streaming reconstruction.

    Returns ``(theta, n_iterations, converged, deltas, chi2_stat,
    chi2_threshold)``.  ``theta`` is the starting estimate and is not
    mutated.
    """
    n = y_counts.sum()
    theta = theta.copy()
    deltas: list = []
    converged = False
    iteration = 0
    chi2_stat, chi2_thresh = float("nan"), float("nan")
    previous_chi2 = float("inf")
    for iteration in range(1, max_iterations + 1):
        mixture = kernel @ theta  # P(Y in I_s) under current estimate
        safe_mixture = np.maximum(mixture, _EPS)
        # Posterior responsibility of x-interval p for y-interval s,
        # weighted by observed counts, averaged over the sample.
        weights = y_counts / n / safe_mixture  # (S,)
        theta_new = theta * (kernel.T @ weights)  # (P,)
        total = theta_new.sum()
        if total <= 0:
            raise ValidationError(
                "reconstruction collapsed to zero mass; the noise kernel "
                "does not cover the observed randomized values"
            )
        theta_new /= total

        delta = float(np.abs(theta_new - theta).sum())
        deltas.append(delta)
        theta = theta_new

        if stopping == "chi2":
            chi2_stat, chi2_thresh = _chi2_fit(y_counts, kernel @ theta * n)
            if np.isfinite(chi2_stat):
                # Stop when the randomized data are statistically
                # consistent with the estimate, OR when further sharpening
                # has stopped improving the fit (the model is binned, so
                # the test may never pass outright; iterating past the
                # plateau only overfits sampling noise).
                passed = chi2_stat <= chi2_thresh
                plateaued = (previous_chi2 - chi2_stat) < 0.01 * chi2_thresh
                if passed or plateaued:
                    converged = True
                    break
                previous_chi2 = chi2_stat
        if delta < tol:
            converged = True
            break

    if stopping != "chi2":
        chi2_stat, chi2_thresh = _chi2_fit(y_counts, kernel @ theta * n)
    return theta, iteration, converged, deltas, chi2_stat, chi2_thresh


class BayesReconstructor:
    """The paper's iterative Bayesian reconstruction (partition form).

    Parameters
    ----------
    max_iterations:
        Hard cap on Bayes sweeps (the paper converges in tens of sweeps).
    tol:
        Stop when the L1 change between successive estimates drops below
        this value (the paper's "estimate stops changing" criterion).
    stopping:
        ``"chi2"`` (default) stops as soon as the observed randomized
        histogram passes a 95 % chi-squared goodness-of-fit test against
        the randomization of the current estimate, or as soon as the
        statistic stops improving by at least 1 % of its threshold per
        sweep (the binned model may never pass the test outright; past
        that plateau, sweeps only overfit) — the paper's statistical
        stopping rule.  ``"delta"`` uses ``tol`` alone.

        The chi-squared rule is not a nicety: deconvolution is ill-posed,
        and iterating to a fixed point overfits sampling noise into a
        spiky estimate (ablation E10 measures a ~4x L1 degradation).  The
        rule stops as soon as the data no longer justify further
        sharpening.
    transition_method:
        ``"density"`` reproduces the paper's midpoint approximation of the
        noise kernel; ``"integrated"`` (default) integrates the noise
        density over each interval, which is strictly more accurate and
        equally fast.
    coverage:
        Noise mass that the expanded bucketing grid must cover (only
        matters for unbounded noise such as Gaussian).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import BayesReconstructor, Partition, UniformRandomizer
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(0.25, 0.75, size=4000)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> w = noise.randomize(x, seed=1)
    >>> part = Partition.uniform(0.0, 1.0, 20)
    >>> result = BayesReconstructor().reconstruct(w, part, noise)
    >>> bool(result.converged)
    True
    """

    def __init__(
        self,
        *,
        max_iterations: int = 500,
        tol: float = 1e-3,
        stopping: str = "chi2",
        transition_method: str = "integrated",
        coverage: float = 1.0 - 1e-9,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError(f"max_iterations must be >= 1, got {max_iterations}")
        check_positive(tol, "tol")
        if stopping not in ("delta", "chi2"):
            raise ValidationError(f"stopping must be 'delta' or 'chi2', got {stopping!r}")
        if transition_method not in ("density", "integrated"):
            raise ValidationError(
                f"transition_method must be 'density' or 'integrated', "
                f"got {transition_method!r}"
            )
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.stopping = stopping
        self.transition_method = transition_method
        self.coverage = coverage

    def reconstruct(
        self,
        randomized_values,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
    ) -> ReconstructionResult:
        """Estimate the original distribution of the randomized sample.

        Parameters
        ----------
        randomized_values:
            The disclosed values ``x_i + r_i``.
        x_partition:
            Interval grid over the *original* domain on which the estimate
            is expressed.
        randomizer:
            The (public) noise process that produced the values.
        """
        y_counts, kernel = _prepare(
            randomized_values,
            x_partition,
            randomizer,
            transition_method=self.transition_method,
            coverage=self.coverage,
        )
        theta0 = np.full(x_partition.n_intervals, 1.0 / x_partition.n_intervals)
        theta, iteration, converged, deltas, chi2_stat, chi2_thresh = _run_bayes(
            y_counts,
            kernel,
            theta0,
            max_iterations=self.max_iterations,
            tol=self.tol,
            stopping=self.stopping,
        )
        if not converged:
            warnings.warn(
                f"reconstruction stopped at max_iterations={self.max_iterations} "
                f"with last delta {deltas[-1]:.3g}",
                ConvergenceWarning,
                stacklevel=2,
            )
        return ReconstructionResult(
            distribution=HistogramDistribution(x_partition, theta),
            n_iterations=iteration,
            converged=converged,
            chi2_statistic=chi2_stat,
            chi2_threshold=chi2_thresh,
            delta_history=tuple(deltas),
        )
