"""E17 — Extension: categorical attributes via randomized response.

The paper names categorical data as its open extension.  This bench
randomizes a skewed 5-category attribute (elevel-like) with generalized
randomized response at several keep probabilities and measures recovery:
channel inversion tracks the true distribution where naive counting of
the disclosed values is strongly biased toward uniform, and estimation
error grows as deniability rises.
"""

from __future__ import annotations

import numpy as np
from _common import experiment, run_experiment

from repro.core import CategoricalRandomizer, CategoricalReconstructor
from repro.experiments import format_table
from repro.utils.rng import ensure_rng

KEEP_PROBS = (0.9, 0.7, 0.5, 0.3)
TRUE_PROBS = np.array([0.45, 0.25, 0.15, 0.10, 0.05])


@experiment(
    "e17",
    title="Categorical distribution recovery under randomized response",
    tags=("categorical", "smoke"),
    seed=1700,
)
def run_e17(ctx):
    rng = ensure_rng(ctx.seed)
    n = ctx.scaled(20_000)
    ctx.record(
        n=n,
        n_categories=len(TRUE_PROBS),
        keep_probs=",".join(f"{k:g}" for k in KEEP_PROBS),
    )
    values = rng.choice(5, size=n, p=TRUE_PROBS)
    empirical = np.bincount(values, minlength=5) / n

    rows = []
    for keep in KEEP_PROBS:
        rr = CategoricalRandomizer(5, keep)
        disclosed = rr.randomize(values, seed=rng)
        naive = np.bincount(disclosed, minlength=5) / n
        estimate = CategoricalReconstructor(rr).invert(disclosed)
        rows.append(
            {
                "keep": keep,
                "deniability": rr.privacy_of_value(),
                "err_naive": float(np.abs(naive - empirical).sum()),
                "err_estimate": float(np.abs(estimate - empirical).sum()),
            }
        )

    table = format_table(
        ("keep_prob", "deniability", "L1 naive", "L1 inverted"),
        [
            (
                f"{r['keep']:g}",
                f"{r['deniability']:.2f}",
                f"{r['err_naive']:.4f}",
                f"{r['err_estimate']:.4f}",
            )
            for r in rows
        ],
        title="E17: categorical distribution recovery under randomized response",
    )
    ctx.report(table, name="e17_categorical_response")

    metrics = {}
    for r in rows:
        slug = f"keep{r['keep']:g}".replace(".", "_")
        metrics[f"err_naive_{slug}"] = r["err_naive"]
        metrics[f"err_inverted_{slug}"] = r["err_estimate"]

    for r in rows:
        # inversion beats naive counting at every deniability level
        assert r["err_estimate"] < r["err_naive"], r["keep"]
        # and stays genuinely accurate at moderate deniability
        if r["keep"] >= 0.5:
            assert r["err_estimate"] < 0.05
    # naive bias grows with deniability (sanity of the workload)
    naive_errors = [r["err_naive"] for r in rows]
    assert naive_errors == sorted(naive_errors)
    return metrics


def test_e17_categorical_response(benchmark):
    run_experiment(benchmark, "e17")
