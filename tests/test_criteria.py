"""Tests for impurity criteria and the vectorized split search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.tree.criteria import entropy, gini, split_impurities


class TestGini:
    def test_pure_node_zero(self):
        assert gini([10, 0]) == 0.0
        assert gini([0, 42]) == 0.0

    def test_balanced_two_class(self):
        assert gini([5, 5]) == pytest.approx(0.5)

    def test_balanced_k_class(self):
        assert gini([3, 3, 3]) == pytest.approx(2 / 3)

    def test_empty_node(self):
        assert gini([0, 0]) == 0.0

    def test_bounded(self):
        assert 0 <= gini([7, 2, 1]) < 1


class TestEntropy:
    def test_pure_node_zero(self):
        assert entropy([10, 0]) == 0.0

    def test_balanced_two_class_one_bit(self):
        assert entropy([5, 5]) == pytest.approx(1.0)

    def test_empty_node(self):
        assert entropy([0, 0]) == 0.0

    def test_uniform_k_class(self):
        assert entropy([1, 1, 1, 1]) == pytest.approx(2.0)


class TestSplitImpurities:
    def test_perfect_split_found(self):
        # intervals 0-1 pure class 0, intervals 2-3 pure class 1
        counts = np.array([[10, 0], [10, 0], [0, 10], [0, 10]])
        impurities = split_impurities(counts)
        assert impurities.shape == (3,)
        assert np.argmin(impurities) == 1
        assert impurities[1] == pytest.approx(0.0)

    def test_no_split_helps_on_uniform_mix(self):
        counts = np.array([[5, 5], [5, 5], [5, 5]])
        impurities = split_impurities(counts)
        np.testing.assert_allclose(impurities, 0.5)

    def test_single_interval_no_candidates(self):
        assert split_impurities(np.array([[3, 4]])).size == 0

    def test_empty_intervals_handled(self):
        counts = np.array([[10, 0], [0, 0], [0, 10]])
        impurities = split_impurities(counts)
        assert np.isfinite(impurities).all()
        assert impurities.min() == pytest.approx(0.0)

    def test_entropy_criterion(self):
        counts = np.array([[8, 0], [0, 8]])
        assert split_impurities(counts, "entropy")[0] == pytest.approx(0.0)

    def test_rejects_bad_criterion(self):
        with pytest.raises(ValidationError):
            split_impurities(np.array([[1, 1], [1, 1]]), "misclass")

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            split_impurities(np.array([1, 2, 3]))

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 20, size=(6, 3))
        impurities = split_impurities(counts)
        n = counts.sum()
        for k in range(5):
            left = counts[: k + 1].sum(axis=0)
            right = counts[k + 1 :].sum(axis=0)
            expected = (left.sum() * gini(left) + right.sum() * gini(right)) / n
            assert impurities[k] == pytest.approx(expected)


@given(
    counts=st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=2, max_size=12
    ).filter(lambda rows: sum(a + b for a, b in rows) > 0)
)
def test_property_split_never_beats_zero_and_never_worse_than_parent(counts):
    matrix = np.asarray(counts, dtype=float)
    impurities = split_impurities(matrix)
    parent = gini(matrix.sum(axis=0))
    assert np.all(impurities >= -1e-12)
    # splitting cannot increase weighted gini (concavity of gini)
    assert np.all(impurities <= parent + 1e-9)


@given(
    probs=st.lists(st.integers(0, 100), min_size=2, max_size=6).filter(
        lambda c: sum(c) > 0
    )
)
def test_property_gini_entropy_bounds(probs):
    g = gini(probs)
    h = entropy(probs)
    k = sum(1 for p in probs if p > 0)
    assert 0 <= g <= 1 - 1 / max(k, 1) + 1e-12
    assert 0 <= h <= np.log2(max(k, 1)) + 1e-9
