"""E5 — Classification accuracy at 100 % privacy, uniform noise (paper §5).

The paper's headline figure: for each function Fn1–Fn5, the accuracy of
Original, Randomized, Global, ByClass, and Local.  Paper shape:

* every reconstruction-based strategy beats training on raw randomized
  values, dramatically so on the harder functions;
* ByClass and Local are close to each other;
* Fn1 (single attribute) is essentially unharmed by ByClass/Local.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ClassificationConfig, run_strategy_comparison
from repro.experiments.reporting import accuracy_matrix

FUNCTIONS = (1, 2, 3, 4, 5)
STRATEGIES = ("original", "randomized", "global", "byclass", "local")


@experiment(
    "e5",
    title="Accuracy at 100% privacy, uniform noise, all five strategies",
    tags=("classification",),
    seed=500,
)
def run_e5(ctx):
    config = ClassificationConfig(
        functions=FUNCTIONS,
        strategies=STRATEGIES,
        noise="uniform",
        privacy=1.0,
        n_train=ctx.scaled(10_000),
        n_test=ctx.scaled(3_000),
        seed=ctx.seed,
    )
    ctx.record(
        noise=config.noise,
        privacy=config.privacy,
        n_train=config.n_train,
        n_test=config.n_test,
        strategies=",".join(STRATEGIES),
    )
    rows = run_strategy_comparison(config)
    ctx.report(
        "E5: accuracy (%) at 100% privacy, uniform noise, "
        f"n_train={config.n_train}\n" + accuracy_matrix(rows),
        name="e5_accuracy_100privacy_uniform",
    )

    acc = {(r.function, r.strategy): r.accuracy for r in rows}
    metrics = {
        f"fn{fn}_{strategy}": float(acc[(fn, strategy)])
        for fn in FUNCTIONS
        for strategy in STRATEGIES
    }
    for fn in FUNCTIONS:
        # reconstruction-based training beats the randomized baseline
        assert acc[(fn, "byclass")] > acc[(fn, "randomized")], fn
        # and the original is the (approximate) upper bound
        assert acc[(fn, "original")] >= acc[(fn, "byclass")] - 0.03, fn
    # Fn1: single-attribute concept survives ByClass nearly unchanged
    assert acc[(1, "byclass")] > acc[(1, "original")] - 0.08
    # ByClass and Local land close together (the paper's observation)
    for fn in FUNCTIONS:
        assert abs(acc[(fn, "byclass")] - acc[(fn, "local")]) < 0.15, fn
    return metrics


def test_e5_accuracy_100privacy_uniform(benchmark):
    run_experiment(benchmark, "e5")
