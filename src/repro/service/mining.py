"""Association-rule mining over the service-held pattern counts.

The mining twin of :mod:`repro.service.training`: where the training
tier grows the paper's decision trees from class-conditional histogram
aggregates, :class:`MiningService` runs level-wise Apriori over the
pattern counts a :class:`~repro.service.SupportShardSet` accumulated
from MASK-randomized baskets.  Every float operation is shared with the
offline path — :func:`~repro.mining.support_from_pattern_counts` for
the channel inversion, :func:`~repro.mining.candidate_itemsets` for the
lattice walk, :func:`~repro.mining.association_rules` for the rule
derivation — and the marginalized pattern counts are bit-identical to
tallying the basket matrix directly, so a service-side mine produces
the **bit-identical** itemset supports and rule set the offline
:class:`~repro.mining.MaskMiner` would on the same randomized baskets,
at any shard count (``bench_e24`` asserts this against the ``bench_e12``
pipeline).

Randomization stays client-side (``ppdm ingest --baskets --mask-p P``):
the server only ever holds pattern counts of *disclosed* baskets, and
the keep probability it inverts with is deployment configuration, not
data.  Mining reads one consistent snapshot of the merged table, so a
mine racing concurrent ingestion sees some prefix of the stream, never
a torn batch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.mining.apriori import association_rules, candidate_itemsets
from repro.mining.mask import RandomizedResponse, support_from_pattern_counts
from repro.service.support import (
    PreparedBaskets,
    SupportShardSet,
    marginal_pattern_counts,
)
from repro.utils.validation import check_fraction

__all__ = ["MinedRules", "MiningService", "mining_from_spec"]


@dataclass(frozen=True)
class MinedRules:
    """One mining pass's rule set, plus provenance.

    Attributes
    ----------
    min_support / min_confidence:
        The thresholds the pass ran with.
    n_baskets:
        Randomized baskets the pattern counts covered.
    n_items / keep_prob / max_size:
        The mining deployment's configuration at mine time.
    itemsets:
        Frequent itemsets: ``{frozenset: estimated support}``.
    rules:
        The derived :class:`~repro.mining.AssociationRule` tuple, in
        :func:`~repro.mining.association_rules` order.
    mine_seconds:
        Wall-clock time of the pass (marginalize + invert + derive).

    Examples
    --------
    >>> from repro.service import MinedRules
    >>> result = MinedRules(0.2, 0.5, 100, 4, 0.9, 3, {}, (), 0.001)
    >>> result.n_baskets, result.rules
    (100, ())
    """

    min_support: float
    min_confidence: float
    n_baskets: int
    n_items: int
    keep_prob: float
    max_size: int
    itemsets: dict
    rules: tuple
    mine_seconds: float

    def save(self, path: object) -> None:
        """Persist as a ``mined_rules`` snapshot (:mod:`repro.serialize`)."""
        from repro import serialize

        serialize.save(self, path)


class MiningService:
    """Level-wise MASK Apriori over sharded, service-held pattern counts.

    Parameters
    ----------
    response:
        The :class:`~repro.mining.RandomizedResponse` clients randomize
        with — its keep probability is what the estimator inverts, so
        it is deployment configuration shared by both sides of the wire.
    n_items:
        Size of the item universe (capped by
        :data:`~repro.service.support.MAX_TRACKED_ITEMS`).
    n_shards:
        Ingestion shards of the backing :class:`SupportShardSet`.
    max_size:
        Largest itemset size to mine (channel inversion costs
        ``O(4^k)`` per itemset — keep it small, as the offline miner
        does).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.mining import MaskMiner, RandomizedResponse, generate_baskets
    >>> from repro.service import MiningService
    >>> rr = RandomizedResponse(keep_prob=0.9)
    >>> disclosed = rr.randomize(generate_baskets(2000, 6, seed=0), seed=1)
    >>> mining = MiningService(rr, 6, n_shards=2)
    >>> mining.ingest(disclosed)
    2000
    >>> result = mining.mine(0.2, 0.5)
    >>> offline = MaskMiner(rr).frequent_itemsets(disclosed, 0.2)
    >>> result.itemsets == offline  # bit-identical to the offline miner
    True
    """

    def __init__(
        self,
        response: RandomizedResponse,
        n_items: int,
        *,
        n_shards: int = 1,
        max_size: int = 3,
    ) -> None:
        if not isinstance(response, RandomizedResponse):
            raise ValidationError(
                "response must be a RandomizedResponse, got "
                f"{type(response).__name__}"
            )
        if max_size < 1:
            raise ValidationError(f"max_size must be >= 1, got {max_size}")
        self.response = response
        self.max_size = int(max_size)
        self._shards = SupportShardSet(n_items, n_shards=n_shards)
        self._latest: MinedRules | None = None
        self._results_lock = threading.Lock()

    @property
    def shards(self) -> SupportShardSet:
        """The backing pattern-count shard set."""
        return self._shards

    @property
    def n_items(self) -> int:
        """Size of the item universe."""
        return self._shards.n_items

    @property
    def n_seen(self) -> int:
        """Randomized baskets absorbed so far."""
        return self._shards.n_seen

    # ------------------------------------------------------------------
    # Ingestion (randomized baskets, already MASK-disclosed client-side)
    # ------------------------------------------------------------------
    def prepare(self, baskets: object) -> PreparedBaskets:
        """Pack a randomized basket matrix into codes, outside any lock."""
        return self._shards.prepare(baskets)

    def ingest(self, baskets: object, *, shard: int | None = None) -> int:
        """Absorb a randomized basket matrix; return transactions added."""
        return self._shards.ingest(baskets, shard=shard)

    def ingest_prepared(
        self, prepared: PreparedBaskets, *, shard: int | None = None
    ) -> int:
        """Absorb a :class:`PreparedBaskets`; return transactions added."""
        return self._shards.ingest_prepared(prepared, shard=shard)

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def _snapshot(self) -> tuple:
        """One consistent ``(full pattern table, n_baskets)`` snapshot.

        ``n_baskets`` is read off the table itself (pattern counts are
        exact integers, their sum is the transaction count), so the pair
        can never disagree however ingestion races the read.
        """
        full = self._shards.merged_patterns()
        return full, int(full.sum())

    def _estimate(self, full: np.ndarray, n: int, itemset) -> float:
        observed = marginal_pattern_counts(full, self.n_items, itemset)
        return support_from_pattern_counts(self.response, observed, n)

    def estimate_support(self, itemset) -> float:
        """Channel-corrected support estimate of one itemset.

        Bit-identical to
        :meth:`repro.mining.MaskMiner.estimate_support` on the baskets
        this service has absorbed.
        """
        items = sorted(itemset)
        if not items:
            return 1.0
        if len(items) > self.max_size:
            raise ValidationError(
                f"itemset size {len(items)} exceeds max_size={self.max_size}"
            )
        full, n = self._snapshot()
        if n < 1:
            raise ValidationError("no baskets ingested yet")
        return self._estimate(full, n, items)

    def frequent_itemsets(self, min_support: float) -> dict:
        """Level-wise Apriori over *estimated* supports.

        Mirrors :meth:`repro.mining.MaskMiner.frequent_itemsets` —
        identical lattice walk, identical arithmetic — over the
        service-held counts instead of a basket matrix.
        """
        min_support = check_fraction(min_support, "min_support")
        full, n = self._snapshot()
        if n < 1:
            raise ValidationError("no baskets ingested yet")
        return self._frequent(full, n, min_support)

    def _frequent(self, full: np.ndarray, n: int, min_support: float) -> dict:
        result: dict = {}
        current = {}
        for j in range(self.n_items):
            estimate = self._estimate(full, n, (j,))
            if estimate >= min_support:
                current[frozenset({j})] = estimate
        size = 1
        while current and size <= self.max_size:
            result.update(current)
            size += 1
            if size > self.max_size:
                break
            next_level: dict = {}
            for candidate in candidate_itemsets(set(current), size):
                estimate = self._estimate(full, n, candidate)
                if estimate >= min_support:
                    next_level[candidate] = estimate
            current = next_level
        return result

    def mine(self, min_support: float, min_confidence: float) -> MinedRules:
        """One full pass: frequent itemsets, then association rules.

        The result is cached as :meth:`latest` (what ``GET /rules``
        serves) and returned.  Itemsets, supports, and rule confidences
        are bit-identical to the offline
        ``association_rules(MaskMiner(...).frequent_itemsets(...))``
        pipeline on the same randomized baskets.
        """
        min_support = check_fraction(min_support, "min_support")
        min_confidence = check_fraction(min_confidence, "min_confidence")
        start = time.perf_counter()
        full, n = self._snapshot()
        if n < 1:
            raise ValidationError(
                "no baskets ingested yet; nothing to mine"
            )
        itemsets = self._frequent(full, n, min_support)
        rules = tuple(association_rules(itemsets, min_confidence))
        result = MinedRules(
            min_support=min_support,
            min_confidence=min_confidence,
            n_baskets=n,
            n_items=self.n_items,
            keep_prob=self.response.keep_prob,
            max_size=self.max_size,
            itemsets=itemsets,
            rules=rules,
            mine_seconds=time.perf_counter() - start,
        )
        with self._results_lock:
            self._latest = result
        return result

    def latest(self) -> MinedRules | None:
        """The most recent :meth:`mine` result (``None`` before the first)."""
        with self._results_lock:
            return self._latest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MiningService(n_items={self.n_items}, "
            f"keep_prob={self.response.keep_prob:g}, "
            f"records={self.n_seen})"
        )


def mining_from_spec(section: dict) -> MiningService:
    """Build a :class:`MiningService` from a spec's ``"mining"`` section.

    The section of the ``ppdm serve`` deployment spec that enables the
    mining workload (sibling of ``"attributes"``):

    .. code-block:: python

        {
          "mining": {
            "items": 12,          # item-universe size (required)
            "keep_prob": 0.9,     # clients' MASK keep probability (required)
            "max_size": 3,        # optional, default 3
            "shards": 4,          # optional, default 1
          },
        }

    Examples
    --------
    >>> from repro.service import mining_from_spec
    >>> mining = mining_from_spec({"items": 8, "keep_prob": 0.85, "shards": 2})
    >>> mining.n_items, mining.response.keep_prob, len(mining.shards)
    (8, 0.85, 2)
    """
    if not isinstance(section, dict):
        raise ValidationError("the 'mining' spec section must be a dict")
    try:
        n_items = int(section["items"])
        keep_prob = float(section["keep_prob"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(
            "the 'mining' spec section needs integer 'items' and float "
            f"'keep_prob': {exc}"
        ) from exc
    return MiningService(
        RandomizedResponse(keep_prob=keep_prob),
        n_items,
        n_shards=int(section.get("shards", 1)),
        max_size=int(section.get("max_size", 3)),
    )
