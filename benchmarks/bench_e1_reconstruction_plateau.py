"""E1 — Reconstruction figure: plateau shape, uniform noise (paper §3).

Regenerates the paper's "reconstructing the original distribution" figure
for the flat-topped shape: the per-interval series (original / randomized
/ reconstructed) and the summary distances.  Paper shape: the
reconstructed series tracks the original closely while the randomized
series is badly smeared.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction
from repro.experiments.config import scaled


def test_e1_reconstruction_plateau_uniform(benchmark):
    config = ReconstructionConfig(
        shape="plateau",
        noise="uniform",
        privacy=0.5,
        n=scaled(10_000),
        n_intervals=20,
        seed=101,
    )
    outcome = once(benchmark, lambda: run_reconstruction(config))

    table = format_table(
        ("midpoint", "true", "original", "randomized", "reconstructed"),
        outcome.rows(),
        title="E1: plateau, uniform noise, 50% privacy",
    )
    summary = (
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}"
        f"\nL1(original, reconstructed) = {outcome.l1_reconstructed:.4f}"
        f"\nKS(original, randomized)    = {outcome.ks_randomized:.4f}"
        f"\nKS(original, reconstructed) = {outcome.ks_reconstructed:.4f}"
        f"\niterations = {outcome.n_iterations}"
    )
    report("e1_reconstruction_plateau", table + summary)

    # Paper shape: reconstruction repairs most of the smearing.
    assert outcome.l1_reconstructed < 0.5 * outcome.l1_randomized
    assert outcome.ks_reconstructed < outcome.ks_randomized
