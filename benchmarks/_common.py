"""Shared helpers for the benchmark harness.

Every benchmark registers one paper experiment with the
:mod:`repro.bench` registry: a ``run_e*(ctx)`` function decorated with
``@experiment(...)`` that returns a flat dict of deterministic metrics,
renders its ASCII tables through ``ctx.report`` (persisted under
``benchmarks/results/``), and asserts the paper's qualitative *shape* so
a silent regression fails both the pytest run and ``ppdm bench run``.

The ``test_*`` wrappers in each file execute the same registered body
under pytest-benchmark timing via :func:`run_experiment`, so ``pytest
benchmarks/bench_e*.py`` and ``ppdm bench run`` exercise identical code.

Dataset sizes honour ``PPDM_BENCH_SCALE`` (1.0 = laptop default,
10 = the paper's scale) via ``ctx.scaled``.
"""

from __future__ import annotations

import warnings
from pathlib import Path

from repro.bench import REGISTRY, ExperimentContext
from repro.bench.registry import experiment  # noqa: F401  (re-exported decorator)

warnings.filterwarnings("ignore", category=UserWarning, module="repro")

RESULTS_DIR = Path(__file__).parent / "results"


def make_context(experiment_id: str, *, verbose: bool = True) -> ExperimentContext:
    """A pytest-side context on the experiment's canonical seed.

    The committed tables under ``benchmarks/results/`` are reference
    views at scale 1; an off-scale run (``PPDM_BENCH_SCALE``) keeps its
    tables in memory instead of overwriting them.
    """
    from repro.experiments.config import bench_scale

    spec = REGISTRY.get(experiment_id)
    results_dir = RESULTS_DIR if bench_scale() == 1.0 else None
    return ExperimentContext(
        spec.id, spec.seed, results_dir=results_dir, verbose=verbose
    )


def run_experiment(benchmark, experiment_id: str) -> dict:
    """Run a registered experiment once under pytest-benchmark timing."""
    spec = REGISTRY.get(experiment_id)
    ctx = make_context(experiment_id)
    return once(benchmark, lambda: spec.fn(ctx))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
