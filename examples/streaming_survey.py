"""Streaming survey, server-style: sharded aggregation with snapshots.

The paper's motivating deployment is an online survey whose respondents
randomize locally before submitting.  Responses trickle in across
several collection workers; the analyst wants running estimates of the
answer distributions without the server ever storing a raw submission.

:class:`~repro.service.AggregationService` is that server: ingestion
workers accumulate disclosures into mergeable histogram shards (O(batch)
work, no coordination), and ``estimate()`` merges the shard partials in
O(shards x bins) and refreshes the distribution with warm-started Bayes
sweeps.  Halfway through, the server "restarts" from a snapshot — and
carries on with bit-identical estimates.  Run:

    python examples/streaming_survey.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import AggregationService, AttributeSpec
from repro.core.privacy import noise_for_privacy
from repro.datasets import shapes
from repro.utils.rng import ensure_rng

# Two survey questions, each its own (unknown to the analyst) truth.
QUESTIONS = {
    "opinion": shapes.triangles(),  # twin-peaked
    "hours_online": shapes.plateau(),  # flat-topped
}
N_SHARDS = 4

specs, truths = [], {}
for name, density in QUESTIONS.items():
    partition = density.partition(20)
    noise = noise_for_privacy("uniform", 0.5, 1.0)  # 50% privacy, 95% conf.
    specs.append(AttributeSpec(name, partition, noise))
    truths[name] = density.true_distribution(partition)

service = AggregationService(specs, n_shards=N_SHARDS)
rng = ensure_rng(11)

print(f"collecting on {N_SHARDS} shards; estimates refreshed daily\n")
print("day  question       records   L1-to-truth  sweeps")
for day in range(1, 9):
    # Each worker randomizes its respondents locally and ingests into
    # its own shard — the server only ever sees noise-expanded counts.
    for worker in range(N_SHARDS):
        batch = {}
        for spec in specs:
            respondents = QUESTIONS[spec.name].sample(400, seed=rng)
            batch[spec.name] = spec.randomizer.randomize(respondents, seed=rng)
        service.ingest(batch, shard=worker)

    for name, result in service.estimate_all().items():
        error = result.distribution.l1_distance(truths[name])
        print(
            f"{day:3d}  {name:<12}  {service.n_seen(name):8d}   "
            f"{error:10.4f}  {result.n_iterations:6d}"
        )

    if day == 4:
        # Mid-survey maintenance: snapshot, "restart", restore.  The
        # snapshot holds merged partials + warm-start estimates, so the
        # restored service continues bit-identically.
        with tempfile.TemporaryDirectory() as tmp:
            snapshot_path = Path(tmp) / "survey.json"
            service.save(snapshot_path)
            service = AggregationService.load(snapshot_path)
        print("      -- server restarted from snapshot --")

print("\nFinal estimates vs truth (interval probabilities):")
for spec in specs:
    final = service.estimate(spec.name).distribution
    true = truths[spec.name]
    print(f"\n  {spec.name}:")
    for mid, est, tru in zip(
        spec.x_partition.midpoints, final.probs, true.probs
    ):
        bar = "#" * int(round(40 * est / max(final.probs.max(), 1e-9)))
        print(f"    {mid:5.2f} {est:6.3f} (true {tru:5.3f}) |{bar}")

print(
    "\nNo raw response was ever stored: each shard holds only the\n"
    "histogram of randomized values, which is all the reconstruction\n"
    "algorithm consumes — and all a snapshot persists."
)
