"""E16 — Extension: joint reconstruction recovers intra-class correlation.

EXPERIMENTS.md's E5 delta notes that per-attribute reconstruction (the
paper's design) preserves marginals but dilutes intra-class correlation.
This bench quantifies that and shows the 2-D joint reconstructor
recovering it: for correlated pairs, the correlation of (a) the raw
randomized values is attenuated, (b) the per-attribute product estimate
is zero by construction, and (c) the joint estimate tracks the truth.
"""

from __future__ import annotations

import numpy as np
from _common import once, report

from repro.core import UniformRandomizer
from repro.core.joint import JointBayesReconstructor
from repro.core.partition import Partition
from repro.experiments import format_table
from repro.experiments.config import scaled

RHOS = (0.0, 0.4, 0.8)


def _sample(n, rho, rng):
    z1 = rng.normal(size=n)
    z2 = rho * z1 + np.sqrt(1 - rho**2) * rng.normal(size=n)
    clip = lambda z: np.clip((z + 3) / 6, 0, 1)
    return clip(z1), clip(z2)


def _run():
    n = scaled(10_000)
    part = Partition.uniform(0, 1, 15)
    noise = UniformRandomizer.from_privacy(0.5, 1.0)
    rng = np.random.default_rng(1600)
    rows = []
    for rho in RHOS:
        x1, x2 = _sample(n, rho, rng)
        w1 = noise.randomize(x1, seed=rng)
        w2 = noise.randomize(x2, seed=rng)
        true_corr = float(np.corrcoef(x1, x2)[0, 1])
        noisy_corr = float(np.corrcoef(w1, w2)[0, 1])
        joint = JointBayesReconstructor().reconstruct(
            w1, w2, (part, part), (noise, noise)
        )
        rows.append(
            {
                "rho": rho,
                "true": true_corr,
                "randomized": noisy_corr,
                "joint": joint.correlation(),
                "iterations": joint.n_iterations,
            }
        )
    return rows


def test_e16_joint_reconstruction(benchmark):
    rows = once(benchmark, _run)

    table = format_table(
        ("target rho", "true corr", "randomized corr", "joint recon corr",
         "product recon corr", "sweeps"),
        [
            (
                f"{r['rho']:g}",
                f"{r['true']:.3f}",
                f"{r['randomized']:.3f}",
                f"{r['joint']:.3f}",
                "0.000 (by construction)",
                r["iterations"],
            )
            for r in rows
        ],
        title="E16: correlation through randomization and reconstruction "
        "(uniform noise, 50% privacy)",
    )
    report("e16_joint_reconstruction", table)

    for r in rows:
        if r["rho"] == 0.0:
            assert abs(r["joint"]) < 0.1
        else:
            # noise attenuates the observable correlation ...
            assert r["randomized"] < r["true"] - 0.05
            # ... joint reconstruction recovers most of it
            assert r["joint"] > r["randomized"]
            assert abs(r["joint"] - r["true"]) < 0.2
