"""Tests for the columnar binary wire format (repro.service.wire)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.service.wire import (
    MAGIC,
    WIRE_VERSION,
    decode_columns,
    encode_columns,
    encode_ndjson,
    iter_frames,
    iter_ndjson,
)


class TestColumnarRoundtrip:
    def test_roundtrip_single_attribute(self):
        values = np.linspace(-5.0, 5.0, 100)
        batch, shard = decode_columns(encode_columns({"age": values}))
        assert shard is None
        assert batch["age"].dtype == np.dtype("<f8")
        assert np.array_equal(batch["age"], values)

    def test_roundtrip_multi_attribute_preserves_order(self):
        original = {
            "a": np.array([1.0, 2.0]),
            "b": np.array([3.0]),
            "c": np.array([], dtype=float),
        }
        batch, _ = decode_columns(encode_columns(original))
        assert list(batch) == ["a", "b", "c"]
        for name, values in original.items():
            assert np.array_equal(batch[name], values)

    def test_shard_pin_roundtrips(self):
        _, shard = decode_columns(encode_columns({"x": [0.5]}, shard=3))
        assert shard == 3
        _, shard = decode_columns(encode_columns({"x": [0.5]}))
        assert shard is None

    def test_exact_bit_patterns_survive(self):
        """Raw float64 bytes on the wire: no repr/parse rounding at all."""
        tricky = np.array([0.1, 1e-308, 1.7976931348623157e308, -0.0])
        batch, _ = decode_columns(encode_columns({"x": tricky}))
        assert batch["x"].tobytes() == tricky.tobytes()

    def test_decoded_columns_are_zero_copy_views(self):
        payload = encode_columns({"x": np.arange(1000, dtype=float)})
        batch, _ = decode_columns(payload)
        assert not batch["x"].flags.owndata  # a view into the body
        assert not batch["x"].flags.writeable

    def test_unicode_attribute_names(self):
        batch, _ = decode_columns(encode_columns({"âge": [1.0]}))
        assert list(batch) == ["âge"]

    def test_empty_batch_roundtrips(self):
        batch, shard = decode_columns(encode_columns({}))
        assert batch == {}
        assert shard is None

    def test_iter_frames_concatenated(self):
        body = b"".join(
            [
                encode_columns({"x": [0.1, 0.2]}),
                encode_columns({"x": [0.3]}, shard=1),
                encode_columns({"y": [9.0]}, shard=0),
            ]
        )
        frames = list(iter_frames(body))
        assert [(list(b), s) for b, s in frames] == [
            (["x"], None),
            (["x"], 1),
            (["y"], 0),
        ]
        assert frames[0][0]["x"].size == 2

    def test_iter_frames_empty_body(self):
        assert list(iter_frames(b"")) == []


class TestColumnarErrors:
    def test_bad_magic(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        frame[:4] = b"NOPE"
        with pytest.raises(ValidationError, match="magic"):
            decode_columns(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        struct.pack_into("<H", frame, 4, WIRE_VERSION + 1)
        with pytest.raises(ValidationError, match="version"):
            decode_columns(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(MAGIC)

    def test_truncated_column_data(self):
        frame = encode_columns({"x": [0.5, 0.6, 0.7]})
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(frame[:-8])

    def test_truncated_attribute_table(self):
        frame = encode_columns({"abcdef": [0.5]})
        header_plus_partial_table = frame[: struct.calcsize("<4sHHi") + 3]
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(header_plus_partial_table)

    def test_trailing_bytes_rejected_by_single_decode(self):
        frame = encode_columns({"x": [0.5]})
        with pytest.raises(ValidationError, match="trailing"):
            decode_columns(frame + b"\x00")

    def test_duplicate_attribute_rejected(self):
        good = encode_columns({"x": [0.5]})
        # craft a 2-entry table that names "x" twice
        table_entry = struct.pack("<H", 1) + b"x" + struct.pack("<Q", 1)
        column = np.array([0.5]).tobytes()
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION, 2, -1)
            + table_entry * 2
            + column * 2
        )
        assert decode_columns(good)  # sanity: the crafting matches the layout
        with pytest.raises(ValidationError, match="duplicate"):
            decode_columns(frame)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ValidationError):
            encode_columns([("x", [0.5])])

    def test_encode_rejects_2d_values(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            encode_columns({"x": [[0.5, 0.6]]})

    def test_encode_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            encode_columns({"": [0.5]})


class TestNDJSON:
    def test_roundtrip(self):
        body = encode_ndjson([({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)])
        frames = list(iter_ndjson(body))
        assert frames == [({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)]

    def test_blank_lines_skipped(self):
        body = b'\n{"batch": {"x": [0.5]}}\n\n'
        assert len(list(iter_ndjson(body))) == 1

    def test_empty_body(self):
        assert list(iter_ndjson(b"")) == []
        assert encode_ndjson([]) == b""

    def test_bad_json_line_names_the_line(self):
        body = b'{"batch": {"x": [0.5]}}\nnot json\n'
        with pytest.raises(ValidationError, match="line 2"):
            list(iter_ndjson(body))

    def test_line_without_batch_rejected(self):
        with pytest.raises(ValidationError, match="batch"):
            list(iter_ndjson(b'{"values": [1.0]}\n'))

    def test_batch_must_be_dict(self):
        with pytest.raises(ValidationError):
            list(iter_ndjson(b'{"batch": [1.0]}\n'))
