"""Tests for the benchmark comparator and regression gating."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchArtifact,
    compare_artifacts,
    compare_dirs,
    parse_wall_factor,
    write_artifact,
)
from repro.exceptions import BenchmarkError


def _artifact(experiment_id="e1", *, wall=1.0, metrics=None, **kwargs):
    defaults = dict(
        experiment_id=experiment_id,
        seed=7,
        scale=1.0,
        params={"n": 100},
        metrics=metrics if metrics is not None else {"accuracy": 0.9},
        timing={"wall_seconds": wall, "peak_rss_kb": 1000},
        host={},
    )
    defaults.update(kwargs)
    return BenchArtifact(**defaults)


class TestParseWallFactor:
    def test_accepts_x_suffix(self):
        assert parse_wall_factor("1.3x") == pytest.approx(1.3)
        assert parse_wall_factor("2x") == 2.0
        assert parse_wall_factor("1.5") == 1.5
        assert parse_wall_factor(1.25) == 1.25

    def test_rejects_garbage(self):
        for bad in ("fast", "x2", "", "1.3y"):
            with pytest.raises(BenchmarkError, match="invalid regression factor"):
                parse_wall_factor(bad)

    def test_rejects_below_one(self):
        with pytest.raises(BenchmarkError, match=">= 1"):
            parse_wall_factor("0.5x")


class TestCompare:
    def test_identical_passes(self):
        base = {"e1": _artifact()}
        report = compare_artifacts(base, {"e1": _artifact()})
        assert report.passed
        assert report.rows[0][-1] == "ok"

    def test_metric_drift_fails(self):
        base = {"e1": _artifact(metrics={"accuracy": 0.9})}
        cand = {"e1": _artifact(metrics={"accuracy": 0.85})}
        report = compare_artifacts(base, cand)
        assert not report.passed
        assert report.failures[0].kind == "metric"
        assert "accuracy" in report.failures[0].detail

    def test_metric_within_tolerance_passes(self):
        base = {"e1": _artifact(metrics={"accuracy": 0.9})}
        cand = {"e1": _artifact(metrics={"accuracy": 0.9 + 1e-12})}
        assert compare_artifacts(base, cand).passed

    def test_relaxed_rtol_tolerates_drift(self):
        base = {"e1": _artifact(metrics={"accuracy": 0.900})}
        cand = {"e1": _artifact(metrics={"accuracy": 0.903})}
        assert not compare_artifacts(base, cand).passed
        assert compare_artifacts(base, cand, metric_rtol=0.01).passed

    def test_nan_equals_nan(self):
        base = {"e1": _artifact(metrics={"chi2": float("nan")})}
        cand = {"e1": _artifact(metrics={"chi2": float("nan")})}
        assert compare_artifacts(base, cand).passed

    def test_nan_vs_finite_is_drift(self):
        for base_value, cand_value in (
            (float("nan"), 5.0),
            (5.0, float("nan")),
            (float("nan"), float("inf")),
        ):
            base = {"e1": _artifact(metrics={"chi2": base_value})}
            cand = {"e1": _artifact(metrics={"chi2": cand_value})}
            report = compare_artifacts(base, cand)
            assert not report.passed, (base_value, cand_value)
            assert report.failures[0].kind == "metric"

    def test_disappeared_metric_fails(self):
        base = {"e1": _artifact(metrics={"a": 1.0, "b": 2.0})}
        cand = {"e1": _artifact(metrics={"a": 1.0})}
        report = compare_artifacts(base, cand)
        assert not report.passed
        assert "disappeared" in report.failures[0].detail

    def test_wall_regression_fails(self):
        base = {"e1": _artifact(wall=1.0)}
        cand = {"e1": _artifact(wall=2.0)}
        report = compare_artifacts(base, cand, wall_factor="1.3x")
        assert not report.passed
        assert report.failures[0].kind == "wall"
        assert report.rows[0][-1] == "wall-regression"

    def test_wall_regression_warns_when_demoted(self):
        base = {"e1": _artifact(wall=1.0)}
        cand = {"e1": _artifact(wall=2.0)}
        report = compare_artifacts(
            base, cand, wall_factor="1.3x", wall_action="warn"
        )
        assert report.passed
        assert report.warnings[0].kind == "wall"
        assert report.rows[0][-1] == "slower"

    def test_wall_within_slack_passes(self):
        base = {"e1": _artifact(wall=1.0)}
        cand = {"e1": _artifact(wall=1.2)}
        assert compare_artifacts(base, cand, wall_factor="1.3x").passed

    def test_wall_improvement_noted(self):
        base = {"e1": _artifact(wall=2.0)}
        cand = {"e1": _artifact(wall=0.5)}
        report = compare_artifacts(base, cand)
        assert report.passed
        assert any(f.severity == "info" and f.kind == "wall" for f in report.findings)
        assert report.rows[0][-1] == "faster"

    def test_missing_experiment_fails(self):
        base = {"e1": _artifact("e1"), "e2": _artifact("e2")}
        cand = {"e1": _artifact("e1")}
        report = compare_artifacts(base, cand)
        assert not report.passed
        assert report.failures[0].kind == "missing"

    def test_new_experiment_is_informational(self):
        base = {"e1": _artifact("e1")}
        cand = {"e1": _artifact("e1"), "e2": _artifact("e2")}
        report = compare_artifacts(base, cand)
        assert report.passed
        assert any(f.kind == "added" for f in report.findings)

    def test_failed_candidate_fails(self):
        base = {"e1": _artifact()}
        cand = {
            "e1": _artifact(status="failed", error="AssertionError: shape broke")
        }
        report = compare_artifacts(base, cand)
        assert not report.passed
        assert report.failures[0].kind == "failed"
        assert "shape broke" in report.failures[0].detail

    def test_seed_mismatch_fails(self):
        base = {"e1": _artifact(seed=7)}
        cand = {"e1": _artifact(seed=8)}
        report = compare_artifacts(base, cand)
        assert not report.passed
        assert report.failures[0].kind == "config"

    def test_invalid_wall_action_rejected(self):
        with pytest.raises(BenchmarkError, match="wall_action"):
            compare_artifacts({}, {}, wall_action="shrug")

    def test_format_mentions_result(self):
        base = {"e1": _artifact()}
        text = compare_artifacts(base, {"e1": _artifact()}).format()
        assert "result: PASS" in text
        text = compare_artifacts(base, {"e1": _artifact(wall=9.0)}).format()
        assert "result: FAIL" in text


class TestCompareDirs:
    def test_round_trip_through_disk(self, tmp_path):
        base_dir, cand_dir = tmp_path / "base", tmp_path / "cand"
        write_artifact(_artifact(wall=1.0), base_dir)
        write_artifact(_artifact(wall=3.0), cand_dir)
        report = compare_dirs(base_dir, cand_dir, wall_factor="1.5x")
        assert not report.passed
        assert compare_dirs(base_dir, base_dir).passed
