"""Tests for the Quest synthetic workload (paper §5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import quest
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def big_table():
    return quest.generate(30_000, function=1, seed=5)


class TestGenerator:
    def test_size_and_schema(self, big_table):
        assert big_table.n_records == 30_000
        assert big_table.attribute_names == tuple(a.name for a in quest.ATTRIBUTES)

    def test_attribute_domains_respected(self, big_table):
        for attribute in quest.ATTRIBUTES:
            column = big_table.column(attribute.name)
            assert column.min() >= attribute.low, attribute.name
            assert column.max() <= attribute.high, attribute.name

    def test_discrete_attributes_integral(self, big_table):
        for name in ("elevel", "car", "zipcode", "hyears"):
            column = big_table.column(name)
            np.testing.assert_array_equal(column, np.round(column))

    def test_commission_rule(self, big_table):
        salary = big_table.column("salary")
        commission = big_table.column("commission")
        high_earners = salary >= 75_000
        assert np.all(commission[high_earners] == 0)
        assert np.all(commission[~high_earners] >= 10_000)

    def test_hvalue_depends_on_zipcode(self, big_table):
        zipcode = big_table.column("zipcode")
        hvalue = big_table.column("hvalue")
        assert np.all(hvalue >= 50_000 * zipcode - 1e-9)
        assert np.all(hvalue <= 150_000 * zipcode + 1e-9)

    def test_reproducible(self):
        a = quest.generate(100, function=2, seed=3)
        b = quest.generate(100, function=2, seed=3)
        np.testing.assert_array_equal(a.matrix(), b.matrix())
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = quest.generate(100, function=2, seed=3)
        b = quest.generate(100, function=2, seed=4)
        assert not np.array_equal(a.matrix(), b.matrix())

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            quest.generate(0, function=1)

    def test_rejects_bad_function(self):
        with pytest.raises(ValidationError):
            quest.generate(10, function=9)


class TestFunctions:
    def test_function1_exact_semantics(self, big_table):
        age = big_table.column("age")
        expected = ((age < 40) | (age >= 60)).astype(np.int64)
        np.testing.assert_array_equal(big_table.labels, expected)

    def test_function1_group_a_fraction(self, big_table):
        # age ~ U[20, 80]: P(A) = P(age<40) + P(age>=60) = 2/3
        assert big_table.labels.mean() == pytest.approx(2 / 3, abs=0.02)

    @pytest.mark.parametrize("function", quest.FUNCTION_IDS)
    def test_both_classes_present(self, function):
        table = quest.generate(5_000, function=function, seed=1)
        assert set(np.unique(table.labels)) == {0, 1}

    @pytest.mark.parametrize("function", quest.FUNCTION_IDS)
    def test_labels_depend_only_on_inputs(self, function):
        """Re-deriving labels from the documented inputs must reproduce them."""
        table = quest.generate(2_000, function=function, seed=2)
        columns = {name: table.column(name) for name in table.attribute_names}
        np.testing.assert_array_equal(
            quest.classify(columns, function), table.labels
        )

    def test_function2_semantics_spot_check(self):
        columns = {
            "age": np.array([30.0, 30.0, 50.0, 70.0]),
            "salary": np.array([60_000.0, 120_000.0, 100_000.0, 50_000.0]),
        }
        labels = quest.classify(columns, 2)
        np.testing.assert_array_equal(labels, [1, 0, 1, 1])

    def test_function3_semantics_spot_check(self):
        columns = {
            "age": np.array([30.0, 30.0, 50.0, 70.0]),
            "elevel": np.array([1.0, 3.0, 2.0, 1.0]),
        }
        labels = quest.classify(columns, 3)
        np.testing.assert_array_equal(labels, [1, 0, 1, 0])

    def test_function5_uses_loan(self):
        columns = {
            "age": np.array([30.0, 30.0]),
            "salary": np.array([60_000.0, 60_000.0]),
            "loan": np.array([200_000.0, 450_000.0]),
        }
        labels = quest.classify(columns, 5)
        np.testing.assert_array_equal(labels, [1, 0])

    def test_function_inputs_registry(self):
        assert quest.FUNCTION_INPUTS[1] == ("age",)
        assert "loan" in quest.FUNCTION_INPUTS[5]
        assert set(quest.FUNCTION_INPUTS) == set(quest.FUNCTION_IDS)

    def test_function6_uses_total_income(self):
        columns = {
            "age": np.array([30.0, 30.0]),
            "salary": np.array([40_000.0, 40_000.0]),
            "commission": np.array([20_000.0, 70_000.0]),
        }
        # totals 60k (in the young window) and 110k (outside it)
        labels = quest.classify(columns, 6)
        np.testing.assert_array_equal(labels, [1, 0])

    def test_function7_disposable_income(self):
        columns = {
            "salary": np.array([120_000.0, 40_000.0]),
            "commission": np.array([0.0, 0.0]),
            "loan": np.array([100_000.0, 400_000.0]),
        }
        # 0.67*120k - 0.2*100k - 20k = +40.4k ; 0.67*40k - 0.2*400k - 20k < 0
        labels = quest.classify(columns, 7)
        np.testing.assert_array_equal(labels, [1, 0])

    def test_function7_boundary_not_group_a(self):
        # disposable exactly zero is Group B (strict inequality)
        salary = (20_000 + 0.2 * 100_000) / 0.67
        columns = {
            "salary": np.array([salary]),
            "commission": np.array([0.0]),
            "loan": np.array([100_000.0]),
        }
        assert quest.classify(columns, 7)[0] == 0


class TestRandomize:
    def test_labels_untouched(self, big_table):
        randomized, _ = quest.randomize(big_table, privacy=0.5, seed=1)
        np.testing.assert_array_equal(randomized.labels, big_table.labels)

    def test_all_attributes_randomized_by_default(self, big_table):
        randomized, randomizers = quest.randomize(big_table, privacy=0.5, seed=1)
        assert set(randomizers) == set(big_table.attribute_names)
        for name in big_table.attribute_names:
            assert not np.array_equal(
                randomized.column(name), big_table.column(name)
            ), name

    def test_subset_of_attributes(self, big_table):
        randomized, randomizers = quest.randomize(
            big_table, privacy=0.5, seed=1, attributes=("age",)
        )
        assert set(randomizers) == {"age"}
        np.testing.assert_array_equal(
            randomized.column("salary"), big_table.column("salary")
        )

    def test_noise_scaled_per_attribute(self, big_table):
        _, randomizers = quest.randomize(big_table, privacy=1.0, seed=1)
        # salary span (130k) >> age span (60): so must be the noise
        assert (
            randomizers["salary"].half_width
            > 1000 * randomizers["age"].half_width / 60
        )

    def test_gaussian_kind(self, big_table):
        _, randomizers = quest.randomize(
            big_table, kind="gaussian", privacy=0.5, seed=1
        )
        assert all(hasattr(r, "sigma") for r in randomizers.values())

    def test_reproducible_with_seed(self, big_table):
        a, _ = quest.randomize(big_table, privacy=0.5, seed=42)
        b, _ = quest.randomize(big_table, privacy=0.5, seed=42)
        np.testing.assert_array_equal(a.matrix(), b.matrix())


@given(function=st.sampled_from(quest.FUNCTION_IDS), seed=st.integers(0, 999))
def test_property_generate_valid(function, seed):
    table = quest.generate(50, function=function, seed=seed)
    assert table.n_records == 50
    assert set(np.unique(table.labels)) <= {0, 1}
