"""Randomized response for categorical attributes (paper future work).

Additive noise suits numeric domains; the paper names *categorical data*
as the open extension.  The canonical categorical discloser is
generalized randomized response: report the true category with
probability ``keep_prob``, otherwise a uniformly random one.  The channel

    M = keep_prob * I + (1 - keep_prob) / k * J        (J = all-ones)

is known publicly, so the server can recover the category *distribution*
two ways:

* :meth:`CategoricalReconstructor.invert` — exact linear inversion
  (unbiased, but may need clipping back onto the simplex), or
* :meth:`CategoricalReconstructor.reconstruct` — the same Bayes/EM sweep
  machinery as the numeric reconstructor (kernel = the channel matrix),
  which stays on the simplex by construction.

This mirrors the basket-mining module (`repro.mining.mask`) but for
single multi-valued attributes, and plugs into
:class:`~repro.bayes.naive.NaiveBayesClassifier` through
``fit_distributions``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reconstruction import _run_bayes
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

#: smallest |keep_prob| distance from the uninformative channel
_MIN_SIGNAL = 1e-9


@dataclass(frozen=True)
class CategoricalRandomizer:
    """Generalized randomized response over ``k`` categories.

    Parameters
    ----------
    n_values:
        Number of categories; values are integers ``0 .. n_values - 1``.
    keep_prob:
        Probability of disclosing the true category.  With probability
        ``1 - keep_prob`` a uniformly random category (possibly the true
        one again) is disclosed instead, so the effective diagonal is
        ``keep_prob + (1 - keep_prob) / n_values``.

    Examples
    --------
    >>> import numpy as np
    >>> rr = CategoricalRandomizer(n_values=5, keep_prob=0.8)
    >>> disclosed = rr.randomize(np.zeros(1000, dtype=int), seed=0)
    >>> bool((disclosed == 0).mean() > 0.7)
    True
    """

    n_values: int
    keep_prob: float

    def __post_init__(self) -> None:
        if self.n_values < 2:
            raise ValidationError(f"n_values must be >= 2, got {self.n_values}")
        check_fraction(self.keep_prob, "keep_prob", inclusive_low=True)

    @property
    def channel(self) -> np.ndarray:
        """The ``(k, k)`` column-stochastic channel ``M[observed, true]``."""
        k = self.n_values
        return self.keep_prob * np.eye(k) + (1.0 - self.keep_prob) / k * np.ones((k, k))

    def randomize(self, values, seed=None) -> np.ndarray:
        """Disclose a randomized copy of integer category ``values``."""
        arr = np.asarray(values)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_values):
            raise ValidationError(
                f"values must lie in [0, {self.n_values - 1}]"
            )
        rng = ensure_rng(seed)
        replace = rng.random(arr.shape) >= self.keep_prob
        random_values = rng.integers(0, self.n_values, size=arr.shape)
        return np.where(replace, random_values, arr).astype(np.int64)

    def privacy_of_value(self) -> float:
        """Probability that a disclosed category is not the provider's.

        ``(1 - keep_prob) * (k - 1) / k`` — 0 for full disclosure,
        approaching ``(k-1)/k`` (uniform deniability) as keep_prob -> 0.
        """
        return (1.0 - self.keep_prob) * (self.n_values - 1) / self.n_values


class CategoricalReconstructor:
    """Recover a category distribution from randomized-response counts.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CategoricalRandomizer, CategoricalReconstructor
    >>> rr = CategoricalRandomizer(n_values=3, keep_prob=0.6)
    >>> true = np.repeat([0, 1, 2], [5000, 3000, 2000])  # 50/30/20 split
    >>> disclosed = rr.randomize(true, seed=0)
    >>> estimate = CategoricalReconstructor(rr).invert(disclosed)
    >>> [round(float(p), 1) for p in estimate]
    [0.5, 0.3, 0.2]
    """

    def __init__(self, randomizer: CategoricalRandomizer) -> None:
        if randomizer.keep_prob < _MIN_SIGNAL:
            raise ValidationError(
                "keep_prob = 0 discloses nothing; the channel is singular"
            )
        self.randomizer = randomizer

    def _observed_counts(self, disclosed_values) -> np.ndarray:
        arr = np.asarray(disclosed_values)
        if arr.ndim != 1 or arr.size == 0:
            raise ValidationError("disclosed_values must be a non-empty 1-D array")
        k = self.randomizer.n_values
        if arr.min() < 0 or arr.max() >= k:
            raise ValidationError(f"disclosed values must lie in [0, {k - 1}]")
        return np.bincount(arr.astype(np.int64), minlength=k).astype(float)

    def invert(self, disclosed_values) -> np.ndarray:
        """Exact (unbiased) channel inversion, clipped onto the simplex.

        ``observed = M @ true`` with ``M = p I + (1-p)/k J`` inverts in
        closed form: ``true = (observed - (1-p)/k) / p`` elementwise on
        frequencies.
        """
        counts = self._observed_counts(disclosed_values)
        k = self.randomizer.n_values
        p = self.randomizer.keep_prob
        observed = counts / counts.sum()
        estimate = (observed - (1.0 - p) / k) / p
        estimate = np.clip(estimate, 0.0, None)
        total = estimate.sum()
        if total <= 0:
            # all mass clipped away (tiny samples): fall back to uniform
            return np.full(k, 1.0 / k)
        return estimate / total

    def reconstruct(self, disclosed_values, *, max_iterations: int = 500,
                    tol: float = 1e-8) -> np.ndarray:
        """Maximum-likelihood recovery via the shared Bayes/EM sweeps.

        Always stays on the simplex; agrees with :meth:`invert` whenever
        the exact inverse is already a valid distribution.
        """
        counts = self._observed_counts(disclosed_values)
        k = self.randomizer.n_values
        theta0 = np.full(k, 1.0 / k)
        theta, _, _, _, _, _ = _run_bayes(
            counts,
            self.randomizer.channel,
            theta0,
            max_iterations=max_iterations,
            tol=tol,
            stopping="delta",
        )
        return theta
