"""Tests for classification metrics and distribution distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.exceptions import ValidationError
from repro.metrics import (
    accuracy,
    confusion_matrix,
    hellinger_distance,
    kolmogorov_distance,
    l1_distance,
    l2_distance,
    per_class_recall,
    total_variation,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_zero(self):
        assert accuracy([0, 0], [1, 1]) == 0.0

    def test_partial(self):
        assert accuracy([0, 1, 0, 1], [0, 1, 1, 0]) == 0.5

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            accuracy([0, 1], [0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            accuracy([], [])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValidationError):
            accuracy([-1, 0], [0, 0])


class TestConfusionMatrix:
    def test_layout(self):
        matrix = confusion_matrix(predicted=[0, 1, 1, 0], actual=[0, 1, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_row_sums_are_class_counts(self):
        actual = [0, 0, 0, 1, 2, 2]
        matrix = confusion_matrix([0, 1, 2, 1, 2, 0], actual)
        np.testing.assert_array_equal(matrix.sum(axis=1), [3, 1, 2])

    def test_explicit_n_classes(self):
        matrix = confusion_matrix([0], [0], n_classes=4)
        assert matrix.shape == (4, 4)

    def test_diagonal_is_correct_predictions(self):
        predicted = [0, 1, 1, 0, 1]
        actual = [0, 1, 0, 0, 1]
        matrix = confusion_matrix(predicted, actual)
        assert np.trace(matrix) == 4


class TestPerClassRecall:
    def test_values(self):
        recall = per_class_recall([0, 1, 1, 1], [0, 1, 1, 0])
        assert recall[0] == pytest.approx(0.5)
        assert recall[1] == pytest.approx(1.0)

    def test_absent_class_is_nan(self):
        recall = per_class_recall([0, 2], [0, 2])
        assert np.isnan(recall[1])


class TestDistances:
    @pytest.fixture
    def pair(self):
        part = Partition.uniform(0, 1, 4)
        a = HistogramDistribution(part, [0.5, 0.5, 0.0, 0.0])
        b = HistogramDistribution(part, [0.0, 0.0, 0.5, 0.5])
        return a, b

    def test_l1_disjoint(self, pair):
        assert l1_distance(*pair) == pytest.approx(2.0)

    def test_tv_disjoint(self, pair):
        assert total_variation(*pair) == pytest.approx(1.0)

    def test_hellinger_disjoint(self, pair):
        assert hellinger_distance(*pair) == pytest.approx(1.0)

    def test_ks_disjoint(self, pair):
        assert kolmogorov_distance(*pair) == pytest.approx(1.0)

    def test_identity_all_zero(self, pair):
        a, _ = pair
        for fn in (l1_distance, l2_distance, total_variation,
                   kolmogorov_distance, hellinger_distance):
            assert fn(a, a) == pytest.approx(0.0)

    def test_accepts_raw_arrays(self):
        assert l1_distance([0.5, 0.5], [0.25, 0.75]) == pytest.approx(0.5)

    def test_rejects_mismatched_grids(self):
        with pytest.raises(ValidationError):
            l1_distance([0.5, 0.5], [1.0])

    def test_ks_le_tv(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = rng.dirichlet(np.ones(8))
            b = rng.dirichlet(np.ones(8))
            assert kolmogorov_distance(a, b) <= total_variation(a, b) + 1e-12


@given(
    a=st.lists(st.floats(0.001, 1.0), min_size=4, max_size=4),
    b=st.lists(st.floats(0.001, 1.0), min_size=4, max_size=4),
    c=st.lists(st.floats(0.001, 1.0), min_size=4, max_size=4),
)
def test_property_l1_triangle_inequality(a, b, c):
    norm = lambda v: np.asarray(v) / np.sum(v)
    pa, pb, pc = norm(a), norm(b), norm(c)
    assert l1_distance(pa, pc) <= l1_distance(pa, pb) + l1_distance(pb, pc) + 1e-9


@given(
    a=st.lists(st.floats(0.001, 1.0), min_size=6, max_size=6),
    b=st.lists(st.floats(0.001, 1.0), min_size=6, max_size=6),
)
def test_property_distance_ranges(a, b):
    norm = lambda v: np.asarray(v) / np.sum(v)
    pa, pb = norm(a), norm(b)
    assert 0 <= total_variation(pa, pb) <= 1
    assert 0 <= hellinger_distance(pa, pb) <= 1
    assert 0 <= kolmogorov_distance(pa, pb) <= 1
