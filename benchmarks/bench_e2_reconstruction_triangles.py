"""E2 — Reconstruction figure: triangles shape, uniform noise (paper §3).

Same figure as E1 for the twin-peaked shape.  The harder case: additive
noise fills the valley between the peaks, and reconstruction must dig it
back out.  Paper shape: both modes clearly restored.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction
from repro.experiments.config import scaled


def test_e2_reconstruction_triangles_uniform(benchmark):
    config = ReconstructionConfig(
        shape="triangles",
        noise="uniform",
        privacy=0.5,
        n=scaled(10_000),
        n_intervals=20,
        seed=102,
    )
    outcome = once(benchmark, lambda: run_reconstruction(config))

    table = format_table(
        ("midpoint", "true", "original", "randomized", "reconstructed"),
        outcome.rows(),
        title="E2: triangles, uniform noise, 50% privacy",
    )
    summary = (
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}"
        f"\nL1(original, reconstructed) = {outcome.l1_reconstructed:.4f}"
    )
    report("e2_reconstruction_triangles", table + summary)

    assert outcome.l1_reconstructed < 0.5 * outcome.l1_randomized
    # bimodality restored: valley (middle intervals) has far less mass
    # than the two peak regions in the reconstruction
    rec = outcome.reconstructed_probs
    valley = rec[9:11].sum()
    peaks = rec[3:6].sum() + rec[14:17].sum()
    assert peaks > 3 * valley
    # and the randomized series does NOT show that contrast as strongly
    rand = outcome.randomized_probs
    rand_contrast = (rand[3:6].sum() + rand[14:17].sum()) / max(rand[9:11].sum(), 1e-9)
    rec_contrast = peaks / max(valley, 1e-9)
    assert rec_contrast > rand_contrast
