"""E10 — Ablation: reconstruction internals (paper §3 design choices).

Three design choices the paper (and its PODS 2001 successor) motivate:

* stopping rule — the chi-squared rule vs iterating to a fixed point
  (deconvolution overfits when run to convergence; the rule is the fix),
* grid resolution — interval count trades bias against variance,
* algorithm — the paper's Bayes iterate vs explicit EM (they coincide).
"""

from __future__ import annotations

import warnings

from _common import experiment, run_experiment

from repro.core import BayesReconstructor, EMReconstructor
from repro.experiments import ReconstructionConfig, format_table, run_reconstruction

GRID_SIZES = (5, 10, 20, 40, 80)


@experiment(
    "e10",
    title="Ablation: stopping rule, grid resolution, Bayes vs EM",
    tags=("reconstruction", "ablation", "smoke"),
    seed=1000,
)
def run_e10(ctx):
    # Stopping ablation runs at 25% privacy: deconvolution there is easy,
    # so *all* the error of the fixed-point variant is overfitting — the
    # cleanest demonstration of why the paper stops early.
    n = ctx.scaled(10_000)
    base = dict(shape="plateau", noise="uniform", privacy=0.25, n=n)
    ctx.record(shape="plateau", noise="uniform", n=n)

    variants = {
        "chi2 stop (paper)": BayesReconstructor(stopping="chi2"),
        "delta 1e-3": BayesReconstructor(stopping="delta", tol=1e-3),
        "fixed point (overfit)": BayesReconstructor(
            stopping="delta", tol=1e-12, max_iterations=400
        ),
        "EM (AA'01)": EMReconstructor(),
        "density transition": BayesReconstructor(transition_method="density"),
    }
    stopping_rows = []
    with warnings.catch_warnings():
        # the overfit variant warns by design
        warnings.simplefilter("ignore", UserWarning)
        for name, reconstructor in variants.items():
            outcome = run_reconstruction(
                ReconstructionConfig(**base, n_intervals=20, seed=ctx.seed),
                reconstructor=reconstructor,
            )
            stopping_rows.append(
                (name, f"{outcome.l1_reconstructed:.4f}", outcome.n_iterations)
            )

        grid_rows = []
        grid_base = dict(base, privacy=0.5)
        for m in GRID_SIZES:
            outcome = run_reconstruction(
                ReconstructionConfig(**grid_base, n_intervals=m, seed=ctx.seed + 1)
            )
            grid_rows.append((m, f"{outcome.l1_reconstructed:.4f}"))

    stopping_table = format_table(
        ("variant", "L1 to original", "iterations"),
        stopping_rows,
        title="E10a: stopping rule / algorithm ablation (plateau, 25% privacy)",
    )
    grid_table = format_table(
        ("intervals", "L1 to original"),
        grid_rows,
        title="E10b: grid-resolution ablation",
    )
    ctx.report(
        stopping_table + "\n\n" + grid_table, name="e10_ablation_reconstruction"
    )

    slugs = {
        "chi2 stop (paper)": "chi2",
        "delta 1e-3": "delta",
        "fixed point (overfit)": "fixed_point",
        "EM (AA'01)": "em",
        "density transition": "density",
    }
    metrics = {
        f"l1_{slugs[name]}": float(l1) for name, l1, _ in stopping_rows
    }
    metrics.update({f"l1_grid_{m}": float(l1) for m, l1 in grid_rows})

    by_name = {name: float(l1) for name, l1, _ in stopping_rows}
    # the paper's chi-squared rule must beat the overfit fixed point
    # clearly (the gap is variance-driven, so it narrows as n grows:
    # ~4x at 10k records, ~1.8x at 30k)
    assert by_name["chi2 stop (paper)"] < 0.7 * by_name["fixed point (overfit)"]
    # EM run to (near) convergence behaves like the fixed point, not better
    assert by_name["EM (AA'01)"] > by_name["chi2 stop (paper)"]
    # the density-transition approximation is usable (same ballpark)
    assert by_name["density transition"] < 3 * by_name["chi2 stop (paper)"] + 0.05
    return metrics


def test_e10_ablation_reconstruction(benchmark):
    # the run body suppresses the overfit variant's deliberate warning
    run_experiment(benchmark, "e10")
