"""Joint (two-attribute) distribution reconstruction.

The paper reconstructs each attribute independently, which is exactly why
its ByClass/Local training loses *intra-class correlation* between
attributes (EXPERIMENTS.md documents this as E5's known delta).  Because
the noise added to different attributes is independent, the Bayes
machinery generalizes verbatim to a product grid:

    P(W in s1 x s2 | X at (p1, p2)) = M1[s1, p1] * M2[s2, p2]

so one can reconstruct the full 2-D joint of an attribute pair from the
pairwise randomized values.  The cost is quadratic in the grid (the curse
of dimensionality the paper sidesteps), which is why this lives as an
extension: feasible for a handful of attribute pairs, not as a general
replacement.

Ablation E16 measures what this buys: the per-attribute product estimate
cannot see correlation at all, while the joint reconstruction recovers
it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.randomizers import AdditiveRandomizer, transition_matrix
from repro.core.reconstruction import _EPS, _chi2_fit
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.validation import check_1d_array, check_positive


@dataclass(frozen=True)
class JointReconstructionResult:
    """Outcome of a joint reconstruction.

    Attributes
    ----------
    probs:
        Estimated joint probabilities, shape ``(m1, m2)`` over the two
        attribute partitions (sums to one).
    partitions:
        The ``(x1, x2)`` partitions the estimate lives on.
    n_iterations / converged:
        Sweep count and whether a stopping rule fired.
    chi2_statistic / chi2_threshold:
        Goodness of fit of the observed randomized 2-D histogram against
        the randomization of the estimate.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import JointReconstructionResult, Partition
    >>> part = Partition.uniform(0, 1, 2)
    >>> result = JointReconstructionResult(
    ...     probs=np.array([[0.4, 0.1], [0.1, 0.4]]),
    ...     partitions=(part, part),
    ...     n_iterations=1,
    ...     converged=True,
    ... )
    >>> result.marginal(0).tolist()
    [0.5, 0.5]
    >>> round(float(result.correlation()), 3)  # diagonal mass: correlated
    0.6
    """

    probs: np.ndarray
    partitions: tuple
    n_iterations: int
    converged: bool
    chi2_statistic: float = float("nan")
    chi2_threshold: float = float("nan")

    def marginal(self, axis: int) -> np.ndarray:
        """Marginal distribution of attribute 0 or 1."""
        if axis not in (0, 1):
            raise ValidationError(f"axis must be 0 or 1, got {axis}")
        return self.probs.sum(axis=1 - axis)

    def correlation(self) -> float:
        """Pearson correlation of the two attributes under the estimate."""
        m1 = self.partitions[0].midpoints
        m2 = self.partitions[1].midpoints
        p1 = self.marginal(0)
        p2 = self.marginal(1)
        mean1 = float(p1 @ m1)
        mean2 = float(p2 @ m2)
        var1 = float(p1 @ (m1 - mean1) ** 2)
        var2 = float(p2 @ (m2 - mean2) ** 2)
        cov = float(((m1 - mean1)[:, None] * (m2 - mean2)[None, :] * self.probs).sum())
        denominator = np.sqrt(max(var1, 0.0) * max(var2, 0.0))
        if denominator <= 0:
            return 0.0
        return cov / denominator


class JointBayesReconstructor:
    """Bayes reconstruction of a two-attribute joint distribution.

    Parameters
    ----------
    max_iterations / tol / stopping / coverage:
        As in :class:`~repro.core.reconstruction.BayesReconstructor`
        (``stopping="chi2"`` uses the same pass-or-plateau rule).

    Notes
    -----
    The implementation never materializes the full ``(S1*S2, P1*P2)``
    kernel: each sweep contracts the two per-attribute kernels with
    ``einsum`` (O(S1·S2·max(P1, P2)) per sweep), which keeps 25x25 grids
    comfortable.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import JointBayesReconstructor, Partition, UniformRandomizer
    >>> rng = np.random.default_rng(0)
    >>> x1 = rng.uniform(0.2, 0.8, 3000)
    >>> x2 = np.clip(x1 + rng.normal(0.0, 0.05, 3000), 0, 1)  # correlated
    >>> noise = UniformRandomizer(half_width=0.2)
    >>> part = Partition.uniform(0, 1, 8)
    >>> result = JointBayesReconstructor(max_iterations=50).reconstruct(
    ...     noise.randomize(x1, seed=1), noise.randomize(x2, seed=2),
    ...     (part, part), (noise, noise),
    ... )
    >>> result.probs.shape
    (8, 8)
    >>> bool(result.correlation() > 0.5)  # correlation survives the noise
    True
    """

    def __init__(
        self,
        *,
        max_iterations: int = 200,
        tol: float = 1e-3,
        stopping: str = "chi2",
        coverage: float = 1.0 - 1e-9,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError(f"max_iterations must be >= 1, got {max_iterations}")
        check_positive(tol, "tol")
        if stopping not in ("delta", "chi2"):
            raise ValidationError(
                f"stopping must be 'delta' or 'chi2', got {stopping!r}"
            )
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.stopping = stopping
        self.coverage = coverage

    def reconstruct(
        self,
        randomized_1,
        randomized_2,
        partitions,
        randomizers,
    ) -> JointReconstructionResult:
        """Estimate the joint distribution of an attribute pair.

        Parameters
        ----------
        randomized_1 / randomized_2:
            Row-aligned randomized values of the two attributes (same
            records, same order).
        partitions:
            ``(Partition, Partition)`` for the two original domains.
        randomizers:
            ``(AdditiveRandomizer, AdditiveRandomizer)`` that produced the
            disclosed values (noise independent across attributes).
        """
        w1 = check_1d_array(randomized_1, "randomized_1")
        w2 = check_1d_array(randomized_2, "randomized_2")
        if w1.shape != w2.shape:
            raise ValidationError(
                "randomized_1 and randomized_2 must be row-aligned, got "
                f"lengths {w1.size} and {w2.size}"
            )
        part1, part2 = partitions
        rand1, rand2 = randomizers
        for randomizer in (rand1, rand2):
            if not isinstance(randomizer, AdditiveRandomizer):
                raise ValidationError("joint reconstruction needs additive noise")

        y_part1 = part1.expanded(rand1.support_half_width(self.coverage))
        y_part2 = part2.expanded(rand2.support_half_width(self.coverage))
        kernel1 = transition_matrix(y_part1, part1, rand1)  # (S1, P1)
        kernel2 = transition_matrix(y_part2, part2, rand2)  # (S2, P2)

        # 2-D histogram of the randomized pairs.
        idx1 = y_part1.locate(w1)
        idx2 = y_part2.locate(w2)
        s1, s2 = y_part1.n_intervals, y_part2.n_intervals
        counts = np.bincount(idx1 * s2 + idx2, minlength=s1 * s2).astype(float)
        counts = counts.reshape(s1, s2)
        n = counts.sum()

        p1, p2 = part1.n_intervals, part2.n_intervals
        theta = np.full((p1, p2), 1.0 / (p1 * p2))

        converged = False
        iteration = 0
        chi2_stat, chi2_thresh = float("nan"), float("nan")
        previous_chi2 = float("inf")
        for iteration in range(1, self.max_iterations + 1):
            # mixture[s1, s2] = sum_{p1, p2} K1[s1,p1] K2[s2,p2] theta[p1,p2]
            mixture = kernel1 @ theta @ kernel2.T
            safe = np.maximum(mixture, _EPS)
            weights = counts / n / safe  # (S1, S2)
            # theta update: theta * (K1^T weights K2)
            theta_new = theta * (kernel1.T @ weights @ kernel2)
            total = theta_new.sum()
            if total <= 0:
                raise ValidationError(
                    "joint reconstruction collapsed to zero mass; the noise "
                    "kernels do not cover the observed randomized values"
                )
            theta_new /= total
            delta = float(np.abs(theta_new - theta).sum())
            theta = theta_new

            if self.stopping == "chi2":
                mixture = kernel1 @ theta @ kernel2.T
                chi2_stat, chi2_thresh = _chi2_fit(
                    counts.ravel(), mixture.ravel() * n
                )
                if np.isfinite(chi2_stat):
                    passed = chi2_stat <= chi2_thresh
                    plateaued = (previous_chi2 - chi2_stat) < 0.01 * chi2_thresh
                    if passed or plateaued:
                        converged = True
                        break
                    previous_chi2 = chi2_stat
            if delta < self.tol:
                converged = True
                break

        if not converged:
            warnings.warn(
                f"joint reconstruction stopped at max_iterations="
                f"{self.max_iterations}",
                ConvergenceWarning,
                stacklevel=2,
            )
        if self.stopping != "chi2":
            mixture = kernel1 @ theta @ kernel2.T
            chi2_stat, chi2_thresh = _chi2_fit(counts.ravel(), mixture.ravel() * n)
        return JointReconstructionResult(
            probs=theta,
            partitions=(part1, part2),
            n_iterations=iteration,
            converged=converged,
            chi2_statistic=chi2_stat,
            chi2_threshold=chi2_thresh,
        )
