"""Association mining over randomized baskets (the paper's future work).

Market-basket data is randomized bit-by-bit (randomized response), giving
each provider plausible deniability for every item, yet itemset supports
— and therefore association rules — are still recoverable by inverting
the known randomization channel.  Run:

    python examples/association_mining.py
"""

from repro.experiments import format_table
from repro.mining import (
    MaskMiner,
    RandomizedResponse,
    association_rules,
    frequent_itemsets,
    generate_baskets,
)
from repro.mining.apriori import support

N_BASKETS = 20_000
N_ITEMS = 12
KEEP_PROB = 0.9
MIN_SUPPORT = 0.15

baskets = generate_baskets(N_BASKETS, N_ITEMS, seed=0)
response = RandomizedResponse(KEEP_PROB)
disclosed = response.randomize(baskets, seed=1)

print(
    f"{N_BASKETS} baskets, {N_ITEMS} items; every bit kept with "
    f"p={KEEP_PROB} (a disclosed item is a lie with probability "
    f"{response.privacy_of_bit():.0%}).\n"
)

true_sets = frequent_itemsets(baskets, MIN_SUPPORT, max_size=3)
miner = MaskMiner(response, max_size=3)
mined_sets = miner.frequent_itemsets(disclosed, MIN_SUPPORT)

rows = []
for itemset in sorted(set(true_sets) | set(mined_sets), key=sorted):
    label = "{" + ", ".join(str(i) for i in sorted(itemset)) + "}"
    rows.append(
        (
            label,
            f"{true_sets.get(itemset, support(baskets, itemset)):.3f}",
            f"{support(disclosed, itemset):.3f}",
            f"{mined_sets[itemset]:.3f}" if itemset in mined_sets else "missed",
        )
    )
print(
    format_table(
        ("itemset", "true support", "naive (biased)", "recovered"),
        rows,
        title=f"Frequent itemsets at min_support={MIN_SUPPORT}",
    )
)

rules = association_rules(mined_sets, min_confidence=0.5)
print("\nTop rules mined from the randomized data:")
for rule in rules[:5]:
    ant = "{" + ", ".join(str(i) for i in sorted(rule.antecedent)) + "}"
    con = "{" + ", ".join(str(i) for i in sorted(rule.consequent)) + "}"
    print(
        f"  {ant} => {con}   support={rule.support:.3f} "
        f"confidence={rule.confidence:.2f} lift={rule.lift:.2f}"
    )
