"""Tests for categorical randomized response and reconstruction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.categorical import CategoricalRandomizer, CategoricalReconstructor
from repro.exceptions import ValidationError


@pytest.fixture
def skewed_sample(rng):
    """Categories 0..4 with known skewed distribution."""
    probs = np.array([0.5, 0.25, 0.15, 0.07, 0.03])
    values = rng.choice(5, size=20_000, p=probs)
    return values, probs


class TestRandomizer:
    def test_rejects_few_values(self):
        with pytest.raises(ValidationError):
            CategoricalRandomizer(n_values=1, keep_prob=0.8)

    def test_rejects_bad_keep_prob(self):
        with pytest.raises(ValidationError):
            CategoricalRandomizer(n_values=3, keep_prob=1.5)

    def test_channel_column_stochastic(self):
        channel = CategoricalRandomizer(4, 0.7).channel
        np.testing.assert_allclose(channel.sum(axis=0), 1.0)

    def test_keep_prob_one_is_identity(self, rng):
        rr = CategoricalRandomizer(5, 1.0)
        values = rng.integers(0, 5, 100)
        np.testing.assert_array_equal(rr.randomize(values, seed=1), values)

    def test_flip_rate_matches_channel(self, rng):
        rr = CategoricalRandomizer(5, 0.8)
        values = np.zeros(50_000, dtype=int)
        disclosed = rr.randomize(values, seed=rng)
        kept = (disclosed == 0).mean()
        expected = 0.8 + 0.2 / 5  # keep + uniform re-draw of the truth
        assert kept == pytest.approx(expected, abs=0.01)

    def test_rejects_out_of_range(self):
        rr = CategoricalRandomizer(3, 0.8)
        with pytest.raises(ValidationError):
            rr.randomize([0, 3], seed=0)

    def test_privacy_of_value(self):
        rr = CategoricalRandomizer(5, 0.8)
        assert rr.privacy_of_value() == pytest.approx(0.2 * 4 / 5)
        assert CategoricalRandomizer(5, 1.0).privacy_of_value() == 0.0


class TestReconstructor:
    def test_invert_recovers_distribution(self, skewed_sample):
        values, probs = skewed_sample
        rr = CategoricalRandomizer(5, 0.7)
        disclosed = rr.randomize(values, seed=1)
        estimate = CategoricalReconstructor(rr).invert(disclosed)
        assert np.abs(estimate - probs).sum() < 0.05

    def test_naive_counting_is_biased(self, skewed_sample):
        values, probs = skewed_sample
        rr = CategoricalRandomizer(5, 0.6)
        disclosed = rr.randomize(values, seed=2)
        naive = np.bincount(disclosed, minlength=5) / disclosed.size
        estimate = CategoricalReconstructor(rr).invert(disclosed)
        assert np.abs(estimate - probs).sum() < np.abs(naive - probs).sum()

    def test_bayes_agrees_with_inversion(self, skewed_sample):
        values, probs = skewed_sample
        rr = CategoricalRandomizer(5, 0.8)
        disclosed = rr.randomize(values, seed=3)
        reconstructor = CategoricalReconstructor(rr)
        exact = reconstructor.invert(disclosed)
        bayes = reconstructor.reconstruct(disclosed)
        assert np.abs(exact - bayes).sum() < 0.02

    def test_bayes_stays_on_simplex_for_tiny_samples(self):
        rr = CategoricalRandomizer(4, 0.6)
        reconstructor = CategoricalReconstructor(rr)
        estimate = reconstructor.reconstruct(np.array([0, 1]))
        assert estimate.min() >= 0
        assert estimate.sum() == pytest.approx(1.0)

    def test_invert_clips_onto_simplex(self):
        # a sample so small the exact inverse goes negative
        rr = CategoricalRandomizer(4, 0.6)
        estimate = CategoricalReconstructor(rr).invert(np.array([0, 0, 0]))
        assert estimate.min() >= 0
        assert estimate.sum() == pytest.approx(1.0)

    def test_rejects_zero_keep_prob(self):
        rr = CategoricalRandomizer(3, 0.0)
        with pytest.raises(ValidationError):
            CategoricalReconstructor(rr)

    def test_rejects_empty_input(self):
        rr = CategoricalRandomizer(3, 0.8)
        with pytest.raises(ValidationError):
            CategoricalReconstructor(rr).invert(np.array([], dtype=int))

    def test_end_to_end_with_naive_bayes(self, rng):
        """Categorical reconstruction feeds the NB classifier directly."""
        from repro.bayes import NaiveBayesClassifier
        from repro.core.partition import Partition

        n = 12_000
        labels = rng.integers(0, 2, n)
        # elevel-like attribute: class 0 favours low values, class 1 high
        values = np.where(
            labels == 0, rng.choice(5, n, p=[0.4, 0.3, 0.2, 0.07, 0.03]),
            rng.choice(5, n, p=[0.03, 0.07, 0.2, 0.3, 0.4]),
        )
        rr = CategoricalRandomizer(5, 0.7)
        disclosed = rr.randomize(values, seed=rng)

        reconstructor = CategoricalReconstructor(rr)
        conditionals = [
            [
                reconstructor.invert(disclosed[labels == c])
                for c in (0, 1)
            ]
        ]
        part = Partition.uniform(-0.5, 4.5, 5)
        model = NaiveBayesClassifier([part]).fit_distributions(
            [0.5, 0.5], conditionals
        )
        accuracy = model.score(values[:, None].astype(float), labels)
        # ~69% is the Bayes rate of this overlap; reconstruction gets close
        assert accuracy > 0.6


@given(
    keep_prob=st.sampled_from([0.5, 0.7, 0.9]),
    seed=st.integers(0, 300),
)
def test_property_inversion_near_truth(keep_prob, seed):
    rng = np.random.default_rng(seed)
    probs = rng.dirichlet(np.ones(4))
    values = rng.choice(4, size=4_000, p=probs)
    rr = CategoricalRandomizer(4, keep_prob)
    disclosed = rr.randomize(values, seed=rng)
    estimate = CategoricalReconstructor(rr).invert(disclosed)
    tolerance = 0.1 if keep_prob >= 0.7 else 0.2
    assert np.abs(estimate - probs).sum() < tolerance
