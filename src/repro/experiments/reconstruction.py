"""Distribution-reconstruction experiments (E1–E3 and the E10 ablation).

Each run samples a synthetic shape, randomizes it, reconstructs the
original distribution, and reports the per-interval series the paper
plots (original / randomized / reconstructed) plus summary distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import KernelCache
from repro.core.histogram import HistogramDistribution
from repro.core.privacy import noise_for_privacy
from repro.core.reconstruction import BayesReconstructor
from repro.datasets import shapes
from repro.exceptions import ValidationError
from repro.experiments.config import ReconstructionConfig
from repro.metrics.distribution import kolmogorov_distance, l1_distance
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ReconstructionOutcome:
    """Result of one reconstruction experiment.

    Attributes
    ----------
    config:
        The experiment configuration.
    midpoints:
        Interval midpoints of the evaluation grid.
    true_probs / original_probs / randomized_probs / reconstructed_probs:
        Interval series: analytic truth, empirical sample, randomized
        sample (clipped onto the grid), and the reconstruction estimate.
    l1_randomized / l1_reconstructed:
        L1 distance from the empirical original distribution — the paper's
        qualitative claim is ``l1_reconstructed << l1_randomized``.
    ks_randomized / ks_reconstructed:
        The same comparison in Kolmogorov–Smirnov distance.
    n_iterations:
        Reconstruction sweeps used.
    """

    config: ReconstructionConfig
    midpoints: np.ndarray
    true_probs: np.ndarray
    original_probs: np.ndarray
    randomized_probs: np.ndarray
    reconstructed_probs: np.ndarray
    l1_randomized: float
    l1_reconstructed: float
    ks_randomized: float
    ks_reconstructed: float
    n_iterations: int

    def rows(self) -> list:
        """Per-interval rows for :func:`~repro.experiments.reporting.format_table`."""
        return [
            (
                f"{mid:.3f}",
                f"{true:.4f}",
                f"{orig:.4f}",
                f"{rand:.4f}",
                f"{rec:.4f}",
            )
            for mid, true, orig, rand, rec in zip(
                self.midpoints,
                self.true_probs,
                self.original_probs,
                self.randomized_probs,
                self.reconstructed_probs,
            )
        ]


#: kernels are pure functions of (partition, randomizer, method), so one
#: process-wide cache lets sweeps over seeds / sample sizes / shapes with
#: identical noise settings skip rebuilding the same kernel every run
_SHARED_KERNEL_CACHE = KernelCache()


def run_reconstruction(
    config: ReconstructionConfig, *, reconstructor=None
) -> ReconstructionOutcome:
    """Run one reconstruction experiment.

    Parameters
    ----------
    config:
        Shape, noise, and size settings.
    reconstructor:
        Override the default :class:`~repro.core.reconstruction.
        BayesReconstructor` (the E10 ablation passes alternatives).  The
        default shares a process-wide kernel cache, so repeated runs with
        the same grid and noise reuse the discretized kernel.
    """
    if config.shape not in shapes.SHAPES:
        raise ValidationError(
            f"unknown shape {config.shape!r}; expected one of "
            f"{tuple(shapes.SHAPES)}"
        )
    density = shapes.SHAPES[config.shape]()
    partition = density.partition(config.n_intervals)
    rng = ensure_rng(config.seed)

    x = density.sample(config.n, seed=rng)
    randomizer = noise_for_privacy(
        config.noise, config.privacy, density.high - density.low, config.confidence
    )
    w = randomizer.randomize(x, seed=rng)

    original = HistogramDistribution.from_values(x, partition)
    randomized = HistogramDistribution.from_values(w, partition)
    if reconstructor is None:
        reconstructor = BayesReconstructor(kernel_cache=_SHARED_KERNEL_CACHE)
    result = reconstructor.reconstruct(w, partition, randomizer)
    reconstructed = result.distribution

    return ReconstructionOutcome(
        config=config,
        midpoints=partition.midpoints,
        true_probs=density.true_distribution(partition).probs,
        original_probs=original.probs,
        randomized_probs=randomized.probs,
        reconstructed_probs=reconstructed.probs,
        l1_randomized=l1_distance(original, randomized),
        l1_reconstructed=l1_distance(original, reconstructed),
        ks_randomized=kolmogorov_distance(original, randomized),
        ks_reconstructed=kolmogorov_distance(original, reconstructed),
        n_iterations=result.n_iterations,
    )
