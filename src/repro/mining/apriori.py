"""Apriori frequent-itemset mining on boolean basket matrices.

This is the substrate the privacy-preserving extension mines on top of:
a plain, well-tested Apriori with support counting vectorized over an
``(n_baskets, n_items)`` boolean matrix.  Itemsets are ``frozenset`` of
item column indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_fraction


def _check_matrix(baskets) -> np.ndarray:
    matrix = np.asarray(baskets)
    if matrix.ndim != 2:
        raise ValidationError(f"baskets must be 2-D, got shape {matrix.shape}")
    if matrix.size == 0:
        raise ValidationError("baskets must not be empty")
    return matrix.astype(bool)


def support(baskets, itemset) -> float:
    """Fraction of baskets containing every item of ``itemset``."""
    matrix = _check_matrix(baskets)
    items = sorted(itemset)
    if not items:
        return 1.0
    if max(items) >= matrix.shape[1] or min(items) < 0:
        raise ValidationError(
            f"itemset {items} out of range for {matrix.shape[1]} items"
        )
    return float(matrix[:, items].all(axis=1).mean())


def candidate_itemsets(previous: set, size: int) -> set:
    """Level-wise candidate generation with the Apriori pruning rule.

    Given the frequent itemsets of size ``size - 1``, return every
    ``size``-itemset all of whose ``(size - 1)``-subsets are frequent —
    the only itemsets downward closure allows to be frequent.  Shared by
    the offline miners and the service-side
    :class:`~repro.service.MiningService`, so every mining path walks
    the identical candidate lattice.

    Examples
    --------
    >>> from repro.mining.apriori import candidate_itemsets
    >>> previous = {frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})}
    >>> candidate_itemsets(previous, 3)
    {frozenset({0, 1, 2})}
    """
    items = sorted({item for itemset in previous for item in itemset})
    candidates = set()
    for combo in combinations(items, size):
        itemset = frozenset(combo)
        if all(
            frozenset(sub) in previous for sub in combinations(combo, size - 1)
        ):
            candidates.add(itemset)
    return candidates


def frequent_itemsets(baskets, min_support: float, *, max_size=None) -> dict:
    """All itemsets with support >= ``min_support``.

    Parameters
    ----------
    baskets:
        ``(n_baskets, n_items)`` boolean matrix.
    min_support:
        Minimum support threshold in ``(0, 1]``.
    max_size:
        Optional cap on itemset cardinality.

    Returns
    -------
    dict mapping ``frozenset`` itemsets to their support.

    Examples
    --------
    >>> import numpy as np
    >>> baskets = np.array([[1, 1, 0], [1, 1, 1], [1, 0, 0], [0, 1, 1]])
    >>> sets = frequent_itemsets(baskets, 0.5)
    >>> sets[frozenset({0, 1})]
    0.5
    """
    matrix = _check_matrix(baskets)
    min_support = check_fraction(min_support, "min_support")
    n_items = matrix.shape[1]
    limit = n_items if max_size is None else int(max_size)

    result: dict = {}
    item_support = matrix.mean(axis=0)
    current = {
        frozenset({j}): float(item_support[j])
        for j in range(n_items)
        if item_support[j] >= min_support
    }
    size = 1
    while current and size <= limit:
        result.update(current)
        size += 1
        if size > limit:
            break
        next_level: dict = {}
        for candidate in candidate_itemsets(set(current), size):
            s = float(matrix[:, sorted(candidate)].all(axis=1).mean())
            if s >= min_support:
                next_level[candidate] = s
        current = next_level
    return result


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent => consequent``.

    Attributes
    ----------
    antecedent / consequent:
        Disjoint frozensets of item indices.
    support:
        Support of the union itemset.
    confidence:
        ``support(antecedent | consequent) / support(antecedent)``.
    lift:
        Confidence over the consequent's support (``> 1`` = positive
        association).
    """

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float


def association_rules(itemsets: dict, min_confidence: float) -> list:
    """Derive rules from a frequent-itemset dict (as returned above).

    Every frequent itemset of size >= 2 is split into all (antecedent,
    consequent) partitions whose confidence clears ``min_confidence``.
    Rules whose sub-itemset supports are missing from ``itemsets`` are
    skipped (they cannot be scored).
    """
    min_confidence = check_fraction(min_confidence, "min_confidence")
    rules: list = []
    for itemset, itemset_support in itemsets.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset)
        for r in range(1, len(items)):
            for antecedent_combo in combinations(items, r):
                antecedent = frozenset(antecedent_combo)
                consequent = itemset - antecedent
                if antecedent not in itemsets or consequent not in itemsets:
                    continue
                confidence = itemset_support / max(itemsets[antecedent], 1e-300)
                if confidence >= min_confidence:
                    lift = confidence / max(itemsets[consequent], 1e-300)
                    rules.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=itemset_support,
                            confidence=min(confidence, 1.0),
                            lift=lift,
                        )
                    )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
    return rules
