"""Artifact comparison and CI regression gating.

``ppdm bench compare BASELINE/ CANDIDATE/`` diffs two directories of
``BENCH_*.json`` artifacts produced by :mod:`repro.bench.runner`:

* **metrics** are deterministic at fixed seed, so any drift beyond a
  (tight) relative tolerance is a failure — a changed accuracy or L1
  number means the computation changed, not the weather;
* **wall clock** is judged against a slack factor
  (``--fail-on-regression 1.3x``), and can be demoted to a warning on
  shared CI runners where neighbours distort timings;
* a baseline experiment missing from the candidate is a failure
  (deleting a benchmark must be explicit), a new candidate experiment is
  informational.

The comparator never looks at ``host`` info except to annotate output:
artifacts from different machines compare fine, the tolerance semantics
just shift to the caller's choice of factor.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.bench.artifacts import load_artifact_dir
from repro.bench.registry import _natural_key
from repro.exceptions import BenchmarkError
from repro.experiments.reporting import format_table

__all__ = [
    "Finding",
    "ComparisonReport",
    "compare_artifacts",
    "compare_dirs",
    "parse_wall_factor",
]

#: findings severities, in escalation order
SEVERITIES = ("info", "warn", "fail")

_FACTOR_PATTERN = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*x?\s*$")


def parse_wall_factor(text) -> float:
    """Parse a slack factor like ``"1.3x"`` (the ``x`` is optional).

    Factors below 1 would flag *improvements* as regressions, so they
    are rejected.
    """
    if isinstance(text, (int, float)):
        factor = float(text)
    else:
        match = _FACTOR_PATTERN.match(str(text))
        if not match:
            raise BenchmarkError(
                f"invalid regression factor {text!r}; expected e.g. '1.3x'"
            )
        factor = float(match.group(1))
    if factor < 1.0:
        raise BenchmarkError(f"regression factor must be >= 1, got {factor:g}")
    return factor


@dataclass(frozen=True)
class Finding:
    """One comparator observation about one experiment."""

    experiment_id: str
    kind: str  # missing | added | failed | config | metric | wall
    severity: str  # info | warn | fail
    detail: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise BenchmarkError(f"unknown severity {self.severity!r}")


@dataclass
class ComparisonReport:
    """Outcome of one baseline/candidate comparison."""

    wall_factor: float
    metric_rtol: float
    findings: list = field(default_factory=list)
    rows: list = field(default_factory=list)  # (id, base wall, cand wall, verdict)

    @property
    def failures(self) -> tuple:
        return tuple(f for f in self.findings if f.severity == "fail")

    @property
    def warnings(self) -> tuple:
        return tuple(f for f in self.findings if f.severity == "warn")

    @property
    def passed(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """Human-readable summary (the machine answer is :attr:`passed`)."""
        table = format_table(
            ("experiment", "base wall s", "cand wall s", "ratio", "verdict"),
            self.rows,
            title=(
                f"bench compare: wall slack {self.wall_factor:g}x, "
                f"metric rtol {self.metric_rtol:g}"
            ),
        )
        lines = [table]
        for finding in self.findings:
            lines.append(
                f"[{finding.severity.upper()}] {finding.experiment_id} "
                f"({finding.kind}): {finding.detail}"
            )
        lines.append(
            "result: "
            + (
                "PASS"
                if self.passed
                else f"FAIL ({len(self.failures)} failing finding(s))"
            )
            + (f", {len(self.warnings)} warning(s)" if self.warnings else "")
        )
        return "\n".join(lines)


def _numbers_differ(a, b, rtol: float) -> bool:
    a, b = float(a), float(b)
    if math.isnan(a) or math.isnan(b):
        # NaN == NaN for gating purposes; NaN vs anything else is drift
        # (a bare < comparison would silently call them equal)
        return math.isnan(a) != math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a != b
    return abs(a - b) > rtol * max(abs(a), abs(b)) + 1e-12


def _compare_metrics(base: dict, cand: dict, rtol: float) -> list:
    """Per-key drift descriptions between two metric dicts."""
    problems = []
    for key in sorted(set(base) | set(cand)):
        if key not in cand:
            problems.append(f"metric {key!r} disappeared")
        elif key not in base:
            problems.append(f"metric {key!r} appeared")
        else:
            a, b = base[key], cand[key]
            numeric = isinstance(a, (int, float)) and isinstance(b, (int, float))
            if numeric and not isinstance(a, bool) and not isinstance(b, bool):
                if _numbers_differ(a, b, rtol):
                    problems.append(f"{key}: {a!r} -> {b!r}")
            elif a != b:
                problems.append(f"{key}: {a!r} -> {b!r}")
    return problems


def compare_artifacts(
    baseline: dict,
    candidate: dict,
    *,
    wall_factor: float = 1.3,
    metric_rtol: float = 1e-9,
    wall_action: str = "fail",
) -> ComparisonReport:
    """Compare two id-keyed artifact mappings.

    ``wall_action`` is ``"fail"`` or ``"warn"`` — the severity a
    wall-clock regression beyond ``wall_factor`` is reported at (metric
    drift is always a failure).
    """
    if wall_action not in ("fail", "warn"):
        raise BenchmarkError(
            f"wall_action must be 'fail' or 'warn', got {wall_action!r}"
        )
    wall_factor = parse_wall_factor(wall_factor)
    report = ComparisonReport(wall_factor=wall_factor, metric_rtol=metric_rtol)

    for experiment_id in sorted(set(baseline) | set(candidate), key=_natural_key):
        base = baseline.get(experiment_id)
        cand = candidate.get(experiment_id)
        if cand is None:
            report.findings.append(
                Finding(
                    experiment_id,
                    "missing",
                    "fail",
                    "present in baseline but not in candidate",
                )
            )
            report.rows.append((experiment_id, _wall(base), "-", "-", "missing"))
            continue
        if base is None:
            report.findings.append(
                Finding(
                    experiment_id,
                    "added",
                    "info",
                    "new experiment (no baseline to compare against)",
                )
            )
            report.rows.append((experiment_id, "-", _wall(cand), "-", "new"))
            continue

        verdict = "ok"
        if cand.status != "ok":
            detail = f"candidate run status is {cand.status!r}"
            if cand.error:
                detail += ": " + cand.error.strip().splitlines()[-1]
            report.findings.append(Finding(experiment_id, "failed", "fail", detail))
            verdict = "failed"
        elif (cand.seed, cand.scale) != (base.seed, base.scale):
            report.findings.append(
                Finding(
                    experiment_id,
                    "config",
                    "fail",
                    f"seed/scale mismatch: baseline ({base.seed}, {base.scale:g})"
                    f" vs candidate ({cand.seed}, {cand.scale:g}); metrics are "
                    "not comparable",
                )
            )
            verdict = "config"
        else:
            drifts = _compare_metrics(base.metrics, cand.metrics, metric_rtol)
            if drifts:
                report.findings.append(
                    Finding(
                        experiment_id,
                        "metric",
                        "fail",
                        "; ".join(drifts),
                    )
                )
                verdict = "metric-drift"

        base_wall = base.timing.get("wall_seconds")
        cand_wall = cand.timing.get("wall_seconds")
        ratio = "-"
        if base_wall and cand_wall is not None:
            ratio_value = cand_wall / base_wall
            ratio = f"{ratio_value:.2f}x"
            if ratio_value > wall_factor:
                report.findings.append(
                    Finding(
                        experiment_id,
                        "wall",
                        wall_action,
                        f"wall clock {base_wall:.3f}s -> {cand_wall:.3f}s "
                        f"({ratio_value:.2f}x > allowed {wall_factor:g}x)",
                    )
                )
                if verdict == "ok":
                    verdict = (
                        "slower" if wall_action == "warn" else "wall-regression"
                    )
            elif ratio_value < 1.0 / wall_factor:
                report.findings.append(
                    Finding(
                        experiment_id,
                        "wall",
                        "info",
                        f"wall clock improved {base_wall:.3f}s -> "
                        f"{cand_wall:.3f}s ({ratio_value:.2f}x)",
                    )
                )
                if verdict == "ok":
                    verdict = "faster"
        report.rows.append(
            (experiment_id, _wall(base), _wall(cand), ratio, verdict)
        )
    return report


def _wall(artifact) -> str:
    wall = artifact.timing.get("wall_seconds")
    return f"{wall:.3f}" if wall is not None else "-"


def compare_dirs(
    baseline_dir,
    candidate_dir,
    *,
    wall_factor: float = 1.3,
    metric_rtol: float = 1e-9,
    wall_action: str = "fail",
) -> ComparisonReport:
    """Load two artifact directories and compare them."""
    return compare_artifacts(
        load_artifact_dir(baseline_dir),
        load_artifact_dir(candidate_dir),
        wall_factor=wall_factor,
        metric_rtol=metric_rtol,
        wall_action=wall_action,
    )
