"""Benchmark execution: contexts, measurement, and the parallel runner.

The runner turns registered experiments (:mod:`repro.bench.registry`)
into ``BENCH_<id>.json`` artifacts (:mod:`repro.bench.artifacts`):

* each experiment body receives an :class:`ExperimentContext` carrying
  its seed and scale and collecting params + ASCII tables,
* wall clock and peak RSS are captured around the body,
* ``jobs > 1`` fans independent experiments out over a process pool —
  results are returned in id order and, because every experiment's seed
  is derived from ``(base seed, experiment id)`` alone, are
  bit-identical to a serial run.

Peak RSS is the *process* high-water mark (``ru_maxrss``): exact per
experiment in pool mode (one fresh process per concurrent experiment),
an upper bound in serial mode where experiments share the process.
"""

from __future__ import annotations

import resource
import sys
import time
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.bench.artifacts import (
    BenchArtifact,
    check_metrics,
    host_info,
    write_artifact,
)
from repro.bench.registry import REGISTRY, discover
from repro.exceptions import BenchmarkError

__all__ = [
    "ExperimentContext",
    "derive_seed",
    "run_experiments",
]


def derive_seed(base_seed: int, experiment_id: str) -> int:
    """Deterministic per-experiment seed, stable across processes.

    A stable hash (CRC32, not Python's randomized ``hash``) of the base
    seed and the experiment id, so a pool worker and a serial run derive
    the same seed and experiments never share RNG streams.
    """
    return zlib.crc32(f"{base_seed}:{experiment_id}".encode()) % (2**31)


class ExperimentContext:
    """Per-run services handed to every experiment body.

    Attributes
    ----------
    experiment_id / seed:
        Identity and the seed this run must derive all randomness from.
    params:
        Parameters the body declared via :meth:`record`; stored in the
        artifact so a metric is never read without its workload.
    tables:
        ASCII tables the body rendered via :meth:`report`, keyed by
        table name.
    timings:
        Extra *volatile* measurements declared via :meth:`record_timing`
        (e.g. a measured speedup); merged into the artifact's ``timing``
        section, which the comparator treats with slack rather than the
        exact-match rule it applies to ``metrics``.
    """

    def __init__(
        self,
        experiment_id: str,
        seed: int,
        *,
        results_dir=None,
        verbose: bool = False,
    ) -> None:
        self.experiment_id = experiment_id
        self.seed = int(seed)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.verbose = verbose
        self.params: dict = {}
        self.tables: dict = {}
        self.timings: dict = {}

    def scaled(self, n: int) -> int:
        """Apply the ambient benchmark scale to a base dataset size."""
        from repro.experiments.config import scaled

        return scaled(n)

    def record(self, **params) -> None:
        """Attach workload parameters to the run's artifact.

        Validated to JSON scalars immediately, so a stray numpy value
        fails inside the offending experiment (a ``failed`` artifact)
        rather than at serialization time after the whole sweep ran.
        """
        self.params.update(check_metrics(params, label="params"))

    def record_timing(self, **timings) -> None:
        """Attach volatile measurements (never compared exactly)."""
        self.timings.update(check_metrics(timings, label="timings"))

    def report(self, text: str, *, name: str = None) -> None:
        """Render one ASCII table: collect, optionally print and persist.

        ``name`` defaults to the experiment id and becomes the
        ``benchmarks/results/<name>.txt`` filename — the same text the
        pre-registry scripts wrote, now derived from the run that also
        produces the JSON artifact.
        """
        name = name or self.experiment_id
        self.tables[name] = text
        if self.verbose:
            print(f"\n=== {name} ===\n{text}\n")
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            (self.results_dir / f"{name}.txt").write_text(text + "\n")


def _peak_rss_kb() -> int:
    """Process peak RSS in kilobytes (``ru_maxrss`` is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        peak //= 1024
    return int(peak)


def _execute(spec, *, seed, results_dir, verbose) -> BenchArtifact:
    """Run one experiment body under measurement, never raising.

    A failing body (assertion or error) yields a ``status="failed"``
    artifact carrying the traceback tail, so one broken experiment
    cannot take down a whole sweep; the CLI turns any failure into a
    nonzero exit.
    """
    from repro.experiments.config import bench_scale

    ctx = ExperimentContext(
        spec.id, seed, results_dir=results_dir, verbose=verbose
    )
    status, error, metrics = "ok", "", {}
    start = time.perf_counter()
    try:
        metrics = check_metrics(spec.fn(ctx) or {})
    except Exception:
        status = "failed"
        error = traceback.format_exc(limit=8)
    wall = time.perf_counter() - start
    return BenchArtifact(
        experiment_id=spec.id,
        title=spec.title,
        tags=spec.tags,
        seed=ctx.seed,
        scale=bench_scale(),
        params=ctx.params,
        metrics=metrics,
        timing={
            "wall_seconds": wall,
            "peak_rss_kb": _peak_rss_kb(),
            **ctx.timings,
        },
        host=host_info(),
        status=status,
        error=error,
    )


def _pool_run(task) -> dict:
    """Pool worker: re-discover (no-op under fork), run, ship a dict."""
    benchmarks_dir, experiment_id, seed, scale, results_dir, verbose = task
    from repro.experiments.config import scale_override

    discover(benchmarks_dir)
    spec = REGISTRY.get(experiment_id)
    with scale_override(scale):
        artifact = _execute(
            spec, seed=seed, results_dir=results_dir, verbose=verbose
        )
    return artifact.to_dict()


def run_experiments(
    *,
    ids=None,
    tags=None,
    jobs: int = 1,
    artifacts_dir,
    benchmarks_dir=None,
    results_dir=None,
    base_seed: int = None,
    scale: float = None,
    verbose: bool = False,
) -> list:
    """Execute selected experiments and write one artifact per id.

    Parameters
    ----------
    ids / tags:
        Selection forwarded to
        :meth:`~repro.bench.registry.ExperimentRegistry.select`.
    jobs:
        Process-pool width; ``1`` runs in-process.  Experiments are
        independent by contract, and per-experiment seeds depend only on
        ``(base_seed, id)``, so the artifacts' deterministic sections are
        identical for any ``jobs``.
    artifacts_dir:
        Where ``BENCH_<id>.json`` documents land (created if needed).
    results_dir:
        Where ASCII tables land; ``None`` keeps tables in memory only.
    base_seed:
        ``None`` (default) runs every experiment on its canonical
        registered seed — reproducing the committed reference numbers —
        while an explicit value derives per-experiment seeds via
        :func:`derive_seed`.
    scale:
        Optional dataset-size multiplier overriding ``PPDM_BENCH_SCALE``.

    Returns the artifacts in id order.
    """
    from repro.experiments.config import bench_scale, scale_override

    if jobs < 1:
        raise BenchmarkError(f"jobs must be >= 1, got {jobs}")
    # Surface a bad --scale or PPDM_BENCH_SCALE here, as one clean error,
    # rather than letting every experiment fail on it mid-measurement
    # (nothing mutates them between this probe and the runs).
    with scale_override(scale):
        bench_scale()
    discover(benchmarks_dir)
    specs = REGISTRY.select(ids=ids, tags=tags)
    if not specs:
        raise BenchmarkError("selection matched no experiments")

    seeds = {
        spec.id: spec.seed if base_seed is None else derive_seed(base_seed, spec.id)
        for spec in specs
    }
    artifacts = []
    if jobs == 1 or len(specs) == 1:
        with scale_override(scale):
            for spec in specs:
                artifact = _execute(
                    spec,
                    seed=seeds[spec.id],
                    results_dir=results_dir,
                    verbose=verbose,
                )
                # write as completed: a crash later in the sweep cannot
                # take already-measured artifacts down with it
                write_artifact(artifact, artifacts_dir)
                artifacts.append(artifact)
    else:
        benchmarks_dir_str = str(benchmarks_dir) if benchmarks_dir else None
        results_dir_str = str(results_dir) if results_dir else None
        tasks = [
            (
                benchmarks_dir_str,
                spec.id,
                seeds[spec.id],
                scale,
                results_dir_str,
                verbose,
            )
            for spec in specs
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            # map() preserves submission order, so artifacts come back in
            # id order no matter which worker finishes first.
            for doc in pool.map(_pool_run, tasks):
                artifact = BenchArtifact.from_dict(doc)
                write_artifact(artifact, artifacts_dir)
                artifacts.append(artifact)
    return artifacts
