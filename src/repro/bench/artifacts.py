"""Machine-readable benchmark artifacts (``BENCH_<id>.json``).

Each experiment run produces one schema-versioned JSON document next to
the human-readable ASCII tables.  The document separates *deterministic*
content — params and metrics, reproducible bit-for-bit from the seed —
from *volatile* measurement context (wall clock, peak RSS, host info),
so two runs at the same seed can be compared field-by-field: the
deterministic sections must match exactly, the volatile ones are judged
with tolerances by :mod:`repro.bench.compare`.

Readers reject documents whose ``schema_version`` they do not know:
silently reinterpreting a future layout would corrupt every trend line
built on top of the artifacts.
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.exceptions import BenchmarkError

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_PREFIX",
    "BenchArtifact",
    "artifact_path",
    "check_metrics",
    "host_info",
    "load_artifact",
    "load_artifact_dir",
    "write_artifact",
]

#: version of the artifact layout; bump on any structural change
SCHEMA_VERSION = 1

#: artifact filename prefix: ``BENCH_<experiment id>.json``
ARTIFACT_PREFIX = "BENCH_"

_SCALAR_TYPES = (bool, int, float, str)


def check_metrics(metrics, *, label: str = "metrics") -> dict:
    """Validate a flat ``{str: scalar}`` mapping and return it as a dict.

    Experiments must return JSON-scalar metrics so artifacts stay
    diffable; nested structures belong in separate keys (``"acc_fn1"``,
    not ``{"acc": {...}}``).  Non-finite floats are allowed — ``nan``
    chi-squared fields are meaningful — and are serialized as the strings
    ``"NaN"``/``"Infinity"``/``"-Infinity"`` to keep the documents strict
    JSON (decoded back to floats on load).
    """
    if not isinstance(metrics, dict):
        raise BenchmarkError(
            f"{label} must be a dict of scalars, got {type(metrics).__name__}"
        )
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise BenchmarkError(f"{label} keys must be strings, got {key!r}")
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise BenchmarkError(
                f"{label}[{key!r}] must be a JSON scalar "
                f"(bool/int/float/str/None), got {type(value).__name__}"
            )
    return dict(metrics)


#: encoding of non-finite floats in the JSON documents.  ``json.dumps``
#: would otherwise emit bare ``NaN``/``Infinity`` literals, which are not
#: JSON — jq, JavaScript, and most dashboard tooling reject them.
_NONFINITE_TO_STRING = {
    math.inf: "Infinity",
    -math.inf: "-Infinity",
}
_STRING_TO_NONFINITE = {
    "NaN": math.nan,
    "Infinity": math.inf,
    "-Infinity": -math.inf,
}


def _encode_nonfinite(value):
    """Recursively replace non-finite floats with their string spelling.

    Genuine *strings* that spell a sentinel (or start with the escape
    character) are backslash-escaped so the round trip is value- and
    type-preserving for every scalar.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return "NaN" if math.isnan(value) else _NONFINITE_TO_STRING[value]
    if isinstance(value, str) and (
        value in _STRING_TO_NONFINITE or value.startswith("\\")
    ):
        return "\\" + value
    if isinstance(value, dict):
        return {key: _encode_nonfinite(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_nonfinite(inner) for inner in value]
    return value


def _decode_nonfinite(value):
    """Inverse of :func:`_encode_nonfinite`."""
    if isinstance(value, str):
        if value in _STRING_TO_NONFINITE:
            return _STRING_TO_NONFINITE[value]
        if value.startswith("\\"):
            return value[1:]
        return value
    if isinstance(value, dict):
        return {key: _decode_nonfinite(inner) for key, inner in value.items()}
    if isinstance(value, list):
        return [_decode_nonfinite(inner) for inner in value]
    return value


def host_info() -> dict:
    """Measurement context recorded alongside every artifact."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


@dataclass(frozen=True)
class BenchArtifact:
    """One experiment's recorded run.

    Deterministic sections (compared exactly at fixed seed):
    ``experiment_id``, ``title``, ``tags``, ``seed``, ``scale``,
    ``params``, ``metrics``, ``status``.  Volatile sections:
    ``timing`` (wall seconds, peak RSS) and ``host``.
    """

    experiment_id: str
    seed: int
    scale: float
    params: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    timing: dict = field(default_factory=dict)
    host: dict = field(default_factory=dict)
    title: str = ""
    tags: tuple = ()
    status: str = "ok"
    error: str = ""
    schema_version: int = SCHEMA_VERSION

    def deterministic_dict(self) -> dict:
        """The seed-reproducible portion, for bitwise run-to-run diffs."""
        doc = self.to_dict()
        for volatile in ("timing", "host"):
            doc.pop(volatile)
        return doc

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["tags"] = list(self.tags)
        return doc

    @classmethod
    def from_dict(cls, doc, *, source: str = "<dict>") -> "BenchArtifact":
        if not isinstance(doc, dict):
            raise BenchmarkError(f"{source}: artifact root must be an object")
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BenchmarkError(
                f"{source}: unsupported artifact schema_version {version!r} "
                f"(this reader understands {SCHEMA_VERSION}); regenerate the "
                "artifact or upgrade the reader"
            )
        missing = {
            "experiment_id",
            "seed",
            "scale",
            "params",
            "metrics",
            "timing",
        } - set(doc)
        if missing:
            raise BenchmarkError(
                f"{source}: artifact is missing fields {sorted(missing)}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(doc) - known
        if unknown:
            raise BenchmarkError(
                f"{source}: artifact has unknown fields {sorted(unknown)}"
            )
        doc = dict(doc)
        doc["tags"] = tuple(doc.get("tags", ()))
        for section in ("params", "metrics", "timing"):
            doc[section] = _decode_nonfinite(doc[section])
        check_metrics(doc["metrics"], label=f"{source} metrics")
        return cls(**doc)


def artifact_path(directory, experiment_id: str) -> Path:
    """``<directory>/BENCH_<experiment_id>.json``."""
    return Path(directory) / f"{ARTIFACT_PREFIX}{experiment_id}.json"


def write_artifact(artifact: BenchArtifact, directory) -> Path:
    """Serialize ``artifact`` into ``directory`` and return the path.

    The JSON is sorted and newline-terminated, so artifacts produced by
    the same run are byte-stable regardless of dict build order.  The
    document is *strict* JSON: non-finite floats are spelled as the
    strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` (decoded back to
    floats by :func:`load_artifact`), so jq and friends can consume it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = artifact_path(directory, artifact.experiment_id)
    doc = _encode_nonfinite(artifact.to_dict())
    text = json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)
    path.write_text(text + "\n")
    return path


def load_artifact(path) -> BenchArtifact:
    """Read and validate one ``BENCH_*.json`` file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchmarkError(f"artifact {str(path)!r} does not exist") from None
    except json.JSONDecodeError as exc:
        raise BenchmarkError(
            f"artifact {str(path)!r} is not valid JSON: {exc}"
        ) from None
    return BenchArtifact.from_dict(doc, source=str(path))


def load_artifact_dir(directory) -> dict:
    """Load every ``BENCH_*.json`` under ``directory``, keyed by id.

    Returns an id-sorted dict; an empty or missing directory is an
    error (comparing against nothing is never what the caller meant).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise BenchmarkError(f"artifact directory {str(directory)!r} does not exist")
    artifacts = {}
    for path in sorted(directory.glob(f"{ARTIFACT_PREFIX}*.json")):
        artifact = load_artifact(path)
        if artifact.experiment_id in artifacts:
            raise BenchmarkError(
                f"{str(directory)!r} holds two artifacts for experiment "
                f"{artifact.experiment_id!r}"
            )
        artifacts[artifact.experiment_id] = artifact
    if not artifacts:
        raise BenchmarkError(
            f"no {ARTIFACT_PREFIX}*.json artifacts found in {str(directory)!r}"
        )
    return artifacts
