"""Keep the documentation site honest without building it.

CI's docs job runs the real ``mkdocs build --strict``; this test file
covers the parts that must hold in *every* environment (mkdocs is not a
runtime dependency):

* the generated API reference under ``docs/api/`` matches the current
  docstrings (``docs/gen_api.py --check``),
* every internal markdown link and anchor in README/ROADMAP/docs
  resolves (``tools/check_links.py``),
* every page named in the mkdocs nav exists.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _run(args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_generated_api_reference_in_sync():
    result = _run(["docs/gen_api.py", "--check"])
    assert result.returncode == 0, (
        "docs/api is stale — regenerate with "
        "'PYTHONPATH=src python docs/gen_api.py'\n" + result.stderr
    )


def test_markdown_links_resolve():
    result = _run(["tools/check_links.py", "README.md", "ROADMAP.md", "docs"])
    assert result.returncode == 0, result.stderr


def test_mkdocs_nav_pages_exist():
    text = (REPO_ROOT / "mkdocs.yml").read_text()
    nav = text.split("nav:", 1)[1].split("markdown_extensions:", 1)[0]
    pages = re.findall(r":\s*([\w\-./]+\.md)\s*$", nav, re.MULTILINE)
    assert pages, "no pages parsed from mkdocs.yml nav"
    for page in pages:
        assert (REPO_ROOT / "docs" / page).is_file(), f"nav names missing page {page}"


def test_api_pages_are_marked_generated():
    for path in sorted((REPO_ROOT / "docs" / "api").glob("*.md")):
        head = path.read_text()[:200]
        assert "GENERATED FILE" in head, f"{path.name} lost its generated marker"
