"""Tests for the JSON-over-HTTP front end (repro.service.httpd)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import Partition, StreamingReconstructor, UniformRandomizer
from repro.service import AggregationService, AttributeSpec, ServiceHTTPServer


@pytest.fixture
def noise():
    return UniformRandomizer(half_width=0.2)


@pytest.fixture
def service(noise):
    return AggregationService(
        [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
        n_shards=2,
    )


@pytest.fixture
def server(service, tmp_path):
    srv = ServiceHTTPServer(
        service, port=0, snapshot_path=tmp_path / "snap.json"
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def _get(server, path):
    with urllib.request.urlopen(server.url + path) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _error_of(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    return excinfo.value.code, json.loads(excinfo.value.read())


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "records": 0}

    def test_attributes(self, server):
        _, payload = _get(server, "/attributes")
        (attr,) = payload["attributes"]
        assert attr["name"] == "opinion"
        assert attr["n_intervals"] == 10
        assert attr["noise"] == "uniform"
        assert attr["privacy"] == pytest.approx(0.38)

    def test_ingest_and_stats(self, server):
        status, payload = _post(
            server, "/ingest", {"batch": {"opinion": [0.5, 0.6, 0.7]}}
        )
        assert status == 200
        assert payload == {"ingested": 3, "records": 3}
        _, stats = _get(server, "/stats")
        assert stats["records"] == {"opinion": 3}
        assert stats["n_shards"] == 2
        assert stats["kernel_cache"]["misses"] == 1

    def test_ingest_with_shard_pin(self, server, service):
        _post(server, "/ingest", {"batch": {"opinion": [0.5]}, "shard": 1})
        assert service.shards.shard(1).n_seen("opinion") == 1

    def test_estimate_matches_single_stream(self, server, noise):
        rng = np.random.default_rng(0)
        w = noise.randomize(rng.uniform(0.3, 0.7, 2_000), seed=1)
        _post(server, "/ingest", {"batch": {"opinion": w.tolist()}})
        _, estimate = _get(server, "/estimate?attribute=opinion")

        stream = StreamingReconstructor(
            Partition.uniform(0, 1, 10), noise
        ).update(np.asarray(w.tolist()))
        expected = stream.estimate()
        assert estimate["n_seen"] == 2_000
        assert estimate["n_iterations"] == expected.n_iterations
        assert np.array_equal(
            np.asarray(estimate["probs"]), expected.distribution.probs
        )

    def test_snapshot_persists(self, server, service, tmp_path):
        _post(server, "/ingest", {"batch": {"opinion": [0.4, 0.5]}})
        status, payload = _post(server, "/snapshot", None)
        assert status == 200
        restored = AggregationService.load(payload["saved"])
        assert restored.n_seen("opinion") == 2


class TestErrors:
    def test_unknown_route_404(self, server):
        code, payload = _error_of(lambda: _get(server, "/nope"))
        assert code == 404
        assert "unknown route" in payload["error"]

    def test_estimate_needs_attribute(self, server):
        code, payload = _error_of(lambda: _get(server, "/estimate"))
        assert code == 400
        assert "attribute" in payload["error"]

    def test_estimate_unknown_attribute(self, server):
        code, payload = _error_of(
            lambda: _get(server, "/estimate?attribute=nope")
        )
        assert code == 400

    def test_estimate_before_data(self, server):
        code, payload = _error_of(
            lambda: _get(server, "/estimate?attribute=opinion")
        )
        assert code == 400
        assert "ingest" in payload["error"]

    def test_ingest_requires_batch_key(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/ingest", {"opinion": [0.5]})
        )
        assert code == 400

    def test_ingest_rejects_non_json(self, server):
        request = urllib.request.Request(
            server.url + "/ingest", data=b"not json{", method="POST"
        )
        code, payload = _error_of(lambda: urllib.request.urlopen(request))
        assert code == 400
        assert "JSON" in payload["error"]

    def test_ingest_unknown_attribute(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/ingest", {"batch": {"nope": [0.5]}})
        )
        assert code == 400
        assert "unknown attribute" in payload["error"]

    def test_snapshot_without_path_400(self, service):
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            code, payload = _error_of(lambda: _post(srv, "/snapshot", None))
            assert code == 400
        finally:
            srv.shutdown()
            thread.join(timeout=5)


class TestMaxRequests:
    def test_serves_exactly_n_requests(self, service):
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(
            target=srv.serve_forever, kwargs={"max_requests": 2}, daemon=True
        )
        thread.start()
        assert _get(srv, "/healthz")[0] == 200
        assert _get(srv, "/healthz")[0] == 200
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert srv.requests_served == 2
