"""The Quest synthetic classification workload (paper §5).

The paper evaluates on the synthetic data generator of Agrawal et al.'s
classification work (the IBM Quest generator): nine attributes with fixed
domains and five boolean "group" functions of increasing complexity used as
class labels.  This module reproduces the generator, the five functions,
and the per-attribute randomization step (noise sized per attribute range).

Attribute domains
-----------------
========= ========================== ==========================================
name      domain                     distribution
========= ========================== ==========================================
salary    [20 000, 150 000]          uniform
commission[0, 75 000]                0 if salary >= 75k else uniform[10k, 75k]
age       [20, 80]                   uniform
elevel    {0 .. 4}                   uniform integer
car       {1 .. 20}                  uniform integer
zipcode   {1 .. 9}                   uniform integer
hvalue    [50 000, 1 350 000]        uniform[k*50k, k*150k], k = zipcode
hyears    {1 .. 30}                  uniform integer
loan      [0, 500 000]               uniform
========= ========================== ==========================================

Class labels: label 1 for records in *Group A* per the function predicate,
label 0 for *Group B*.

The paper evaluates on functions 1–5.  Functions 6 and 7 (total-income
windows and a disposable-income predicate) come from the same generator
family and are included as extensions: they exercise the derived-attribute
and linear-combination cases the first five avoid.
"""

from __future__ import annotations

import numpy as np

from repro.core.privacy import noise_for_privacy
from repro.datasets.schema import Attribute, Table
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

#: the nine Quest attributes, in canonical order
ATTRIBUTES = (
    Attribute("salary", 20_000, 150_000),
    Attribute("commission", 0, 75_000),
    Attribute("age", 20, 80),
    Attribute("elevel", 0, 4, discrete=True),
    Attribute("car", 1, 20, discrete=True),
    Attribute("zipcode", 1, 9, discrete=True),
    Attribute("hvalue", 50_000, 1_350_000),
    Attribute("hyears", 1, 30, discrete=True),
    Attribute("loan", 0, 500_000),
)

#: attributes actually referenced by each classification function
FUNCTION_INPUTS = {
    1: ("age",),
    2: ("age", "salary"),
    3: ("age", "elevel"),
    4: ("age", "elevel", "salary"),
    5: ("age", "salary", "loan"),
    6: ("age", "salary", "commission"),
    7: ("salary", "commission", "loan"),
}


def _columns(n: int, rng: np.random.Generator) -> dict:
    """Draw the nine raw attribute columns."""
    salary = rng.uniform(20_000, 150_000, n)
    commission = np.where(
        salary >= 75_000, 0.0, rng.uniform(10_000, 75_000, n)
    )
    zipcode = rng.integers(1, 10, n).astype(float)
    hvalue = rng.uniform(zipcode * 50_000, zipcode * 150_000)
    return {
        "salary": salary,
        "commission": commission,
        "age": rng.uniform(20, 80, n),
        "elevel": rng.integers(0, 5, n).astype(float),
        "car": rng.integers(1, 21, n).astype(float),
        "zipcode": zipcode,
        "hvalue": hvalue,
        "hyears": rng.integers(1, 31, n).astype(float),
        "loan": rng.uniform(0, 500_000, n),
    }


# ----------------------------------------------------------------------
# The five classification functions (Group A predicate of each)
# ----------------------------------------------------------------------
def _function_1(c: dict) -> np.ndarray:
    age = c["age"]
    return (age < 40) | (age >= 60)


def _function_2(c: dict) -> np.ndarray:
    age, salary = c["age"], c["salary"]
    young = (age < 40) & (50_000 <= salary) & (salary <= 100_000)
    middle = (40 <= age) & (age < 60) & (75_000 <= salary) & (salary <= 125_000)
    old = (age >= 60) & (25_000 <= salary) & (salary <= 75_000)
    return young | middle | old


def _function_3(c: dict) -> np.ndarray:
    age, elevel = c["age"], c["elevel"]
    young = (age < 40) & (elevel <= 1)
    middle = (40 <= age) & (age < 60) & (1 <= elevel) & (elevel <= 3)
    old = (age >= 60) & (2 <= elevel) & (elevel <= 4)
    return young | middle | old


def _function_4(c: dict) -> np.ndarray:
    age, elevel, salary = c["age"], c["elevel"], c["salary"]
    young = np.where(
        elevel <= 1,
        (25_000 <= salary) & (salary <= 75_000),
        (50_000 <= salary) & (salary <= 100_000),
    ) & (age < 40)
    middle = np.where(
        (1 <= elevel) & (elevel <= 3),
        (50_000 <= salary) & (salary <= 100_000),
        (75_000 <= salary) & (salary <= 125_000),
    ) & ((40 <= age) & (age < 60))
    old = np.where(
        (2 <= elevel) & (elevel <= 4),
        (50_000 <= salary) & (salary <= 100_000),
        (25_000 <= salary) & (salary <= 75_000),
    ) & (age >= 60)
    return young | middle | old


def _function_5(c: dict) -> np.ndarray:
    age, salary, loan = c["age"], c["salary"], c["loan"]
    young = np.where(
        (50_000 <= salary) & (salary <= 100_000),
        (100_000 <= loan) & (loan <= 300_000),
        (200_000 <= loan) & (loan <= 400_000),
    ) & (age < 40)
    middle = np.where(
        (75_000 <= salary) & (salary <= 125_000),
        (200_000 <= loan) & (loan <= 400_000),
        (300_000 <= loan) & (loan <= 500_000),
    ) & ((40 <= age) & (age < 60))
    old = np.where(
        (25_000 <= salary) & (salary <= 75_000),
        (300_000 <= loan) & (loan <= 500_000),
        (100_000 <= loan) & (loan <= 300_000),
    ) & (age >= 60)
    return young | middle | old


def _function_6(c: dict) -> np.ndarray:
    # Function 2's windows applied to total income (salary + commission):
    # the generator family's variant that makes the derived attribute the
    # discriminator.
    age, total = c["age"], c["salary"] + c["commission"]
    young = (age < 40) & (50_000 <= total) & (total <= 100_000)
    middle = (40 <= age) & (age < 60) & (75_000 <= total) & (total <= 125_000)
    old = (age >= 60) & (25_000 <= total) & (total <= 75_000)
    return young | middle | old


def _function_7(c: dict) -> np.ndarray:
    # Disposable income: linear in income and loan; Group A when positive.
    disposable = (
        0.67 * (c["salary"] + c["commission"]) - 0.2 * c["loan"] - 20_000
    )
    return disposable > 0


_FUNCTIONS = {
    1: _function_1,
    2: _function_2,
    3: _function_3,
    4: _function_4,
    5: _function_5,
    6: _function_6,
    7: _function_7,
}

#: ids of the available classification functions
FUNCTION_IDS = tuple(sorted(_FUNCTIONS))


def classify(columns: dict, function: int) -> np.ndarray:
    """Apply classification function ``function`` to raw columns.

    Returns an int64 label vector: 1 for Group A, 0 for Group B.
    """
    if function not in _FUNCTIONS:
        raise ValidationError(
            f"function must be one of {FUNCTION_IDS}, got {function}"
        )
    return _FUNCTIONS[function](columns).astype(np.int64)


def generate(n: int, function: int = 1, seed=None) -> Table:
    """Generate ``n`` labelled Quest records.

    Parameters
    ----------
    n:
        Number of records.
    function:
        Classification function id (1–5) used to label records.
    seed:
        Seed / generator for reproducibility.

    Examples
    --------
    >>> table = generate(100, function=3, seed=0)
    >>> table.n_records
    100
    >>> sorted(set(table.labels.tolist())) in ([0], [1], [0, 1])
    True
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    rng = ensure_rng(seed)
    columns = _columns(int(n), rng)
    labels = classify(columns, function)
    return Table(columns, labels, ATTRIBUTES)


def randomize(
    table: Table,
    *,
    kind: str = "uniform",
    privacy: float = 1.0,
    confidence: float = 0.95,
    seed=None,
    attributes=None,
) -> tuple:
    """Randomize a Quest table attribute-by-attribute (labels untouched).

    Noise for each attribute is sized so that privacy at ``confidence``
    equals ``privacy`` times *that attribute's* domain range, exactly as
    the paper states privacy levels.

    Parameters
    ----------
    attributes:
        Names to perturb; defaults to every attribute.

    Returns
    -------
    (randomized_table, randomizers)
        The perturbed table and a dict mapping attribute name to the
        randomizer that perturbed it (needed for reconstruction).
    """
    rng = ensure_rng(seed)
    names = tuple(attributes) if attributes is not None else table.attribute_names
    randomizers: dict = {}
    new_columns: dict = {}
    for name in names:
        attribute = table.attribute(name)
        randomizer = noise_for_privacy(kind, privacy, attribute.span, confidence)
        randomizers[name] = randomizer
        new_columns[name] = randomizer.randomize(table.column(name), seed=rng)
    return table.with_columns(new_columns), randomizers
