"""Incremental distribution reconstruction for streaming collection.

The paper's motivating deployment is an online survey: providers arrive
over time, each submitting one randomized record.  Nothing about the
reconstruction algorithm needs the raw sample — it only consumes the
*histogram* of randomized values — so collection can be folded into a
running histogram and the estimate refreshed at any time at cost
independent of how many records have been seen.

:class:`StreamingReconstructor` does exactly that: ``update()`` buckets a
batch into the noise-expanded histogram in O(batch), and ``estimate()``
re-runs the Bayes sweeps warm-started from the previous estimate (usually
a handful of sweeps once the stream has stabilized).  The sweeps run on
the shared :class:`~repro.core.engine.ReconstructionEngine`, so several
streams over the same grid can share one kernel via a common
:class:`~repro.core.engine.KernelCache`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import (
    EngineConfig,
    KernelCache,
    ReconstructionEngine,
    ReconstructionResult,
    config_property,
)
from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer
from repro.exceptions import ValidationError
from repro.utils.validation import check_1d_array


class StreamingReconstructor:
    """Reconstruction over a stream of randomized values.

    Parameters
    ----------
    x_partition:
        Grid over the original domain on which estimates are expressed.
    randomizer:
        The (public) noise process producing the stream.
    max_iterations / tol / stopping / transition_method / coverage:
        As in :class:`~repro.core.reconstruction.BayesReconstructor`;
        they govern each ``estimate()`` refresh and are validated by the
        shared :class:`~repro.core.engine.EngineConfig`.
    kernel_cache:
        Optionally share a kernel cache with other reconstructors over
        the same grid (the kernel is fetched through it once, at
        construction).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.core.streaming import StreamingReconstructor
    >>> part = Partition.uniform(0, 1, 10)
    >>> noise = UniformRandomizer(half_width=0.2)
    >>> stream = StreamingReconstructor(part, noise)
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(5):
    ...     x = rng.uniform(0.3, 0.7, size=200)
    ...     _ = stream.update(noise.randomize(x, seed=rng))
    >>> stream.n_seen
    1000
    >>> result = stream.estimate()
    >>> bool(result.distribution.probs[4] > 0.1)
    True
    """

    def __init__(
        self,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
        *,
        max_iterations: int = 500,
        tol: float = 1e-3,
        stopping: str = "chi2",
        transition_method: str = "integrated",
        coverage: float = 1.0 - 1e-9,
        kernel_cache: KernelCache = None,
    ) -> None:
        config = EngineConfig(
            max_iterations=max_iterations,
            tol=tol,
            stopping=stopping,
            transition_method=transition_method,
            coverage=coverage,
        )
        self._engine = ReconstructionEngine(config, kernel_cache=kernel_cache)
        self.x_partition = x_partition
        self.randomizer = randomizer

        self._y_partition, self._kernel = self._engine.kernel_for(
            x_partition, randomizer
        )
        self._y_counts = np.zeros(self._y_partition.n_intervals)
        # warm start: carry the previous estimate between refreshes
        m = x_partition.n_intervals
        self._theta = np.full(m, 1.0 / m)
        self._n_seen = 0

    # The kernel is fixed at construction, so only the sweep settings are
    # exposed as live config views.
    max_iterations = config_property("max_iterations", engine_attr="_engine")
    tol = config_property("tol", engine_attr="_engine")
    stopping = config_property("stopping", engine_attr="_engine")

    @property
    def n_seen(self) -> int:
        """Total randomized values absorbed so far."""
        return self._n_seen

    def update(self, randomized_batch) -> "StreamingReconstructor":
        """Absorb a batch of randomized values (O(batch) work)."""
        batch = check_1d_array(randomized_batch, "randomized_batch", allow_empty=True)
        if batch.size:
            self._y_counts += self._y_partition.histogram(batch)
            self._n_seen += batch.size
        return self

    def estimate(self) -> ReconstructionResult:
        """Current estimate of the original distribution.

        Warm-starts from the previous call's estimate, so successive
        refreshes on a stable stream converge in very few sweeps.  Emits
        a :class:`~repro.exceptions.ConvergenceWarning` when the refresh
        stops on the iteration cap, exactly like the batch reconstructor.
        """
        if self._n_seen == 0:
            raise ValidationError("no data yet: call update() before estimate()")
        result, self._theta = self._engine.estimate_counts(
            self._y_counts, self._kernel, self._theta, self.x_partition,
            _stacklevel=2,
        )
        return result

    def reset(self) -> "StreamingReconstructor":
        """Forget all absorbed data and the warm-start estimate."""
        self._y_counts[:] = 0.0
        self._theta = np.full(
            self.x_partition.n_intervals, 1.0 / self.x_partition.n_intervals
        )
        self._n_seen = 0
        return self
