"""E18 — Methodology: seed variance of the headline comparison.

EXPERIMENTS.md repeatedly cites seed-to-seed variance when reconciling
absolute numbers with the paper.  This bench quantifies it: the headline
Fn-level comparison (ByClass vs Randomized at 100 % privacy) repeated
over independent seeds, reporting mean ± spread.  The measured picture:
ByClass beats Randomized on average for every function and is several
times more stable (std 0.2–2.2 vs 2.6–6.3 points); the margin is wide and
seed-independent where the structure favours reconstruction (Fn1, Fn5),
while Fn3 at 100 % privacy is a genuinely close race whose winner can
flip on individual seeds.
"""

from __future__ import annotations

import numpy as np
from _common import experiment, run_experiment

from repro.datasets import quest
from repro.experiments import format_table
from repro.tree import PrivacyPreservingClassifier

SEED_OFFSETS = (1, 45, 99)
FUNCTIONS = (1, 3, 5)


@experiment(
    "e18",
    title="Seed variance of ByClass vs Randomized at 100% privacy",
    tags=("classification", "variance"),
    seed=1800,
)
def run_e18(ctx):
    n_train, n_test = ctx.scaled(10_000), ctx.scaled(3_000)
    ctx.record(
        n_train=n_train, n_test=n_test, n_seeds=len(SEED_OFFSETS), privacy=1.0
    )
    results: dict = {fn: {"byclass": [], "randomized": []} for fn in FUNCTIONS}
    for offset in SEED_OFFSETS:
        seed = ctx.seed + offset
        for fn in FUNCTIONS:
            train = quest.generate(n_train, function=fn, seed=seed)
            test = quest.generate(n_test, function=fn, seed=seed + 7)
            randomized, randomizers = quest.randomize(
                train, privacy=1.0, seed=seed + 13
            )
            for strategy in ("byclass", "randomized"):
                clf = PrivacyPreservingClassifier(
                    strategy, privacy=1.0, seed=seed + 29
                )
                clf.fit(train, randomized_table=randomized, randomizers=randomizers)
                results[fn][strategy].append(clf.score(test))

    rows = []
    for fn in FUNCTIONS:
        for strategy in ("byclass", "randomized"):
            accs = np.asarray(results[fn][strategy])
            rows.append(
                (
                    f"Fn{fn}",
                    strategy,
                    f"{100 * accs.mean():.1f}",
                    f"{100 * accs.std():.1f}",
                    f"{100 * accs.min():.1f}",
                    f"{100 * accs.max():.1f}",
                )
            )
    table = format_table(
        ("function", "strategy", "mean %", "std %", "min %", "max %"),
        rows,
        title=f"E18: accuracy across {len(SEED_OFFSETS)} seeds "
        "(100% privacy, uniform)",
    )
    ctx.report(table, name="e18_seed_variance")

    metrics = {}
    for fn in FUNCTIONS:
        for strategy in ("byclass", "randomized"):
            accs = np.asarray(results[fn][strategy])
            metrics[f"fn{fn}_{strategy}_mean"] = float(accs.mean())
            metrics[f"fn{fn}_{strategy}_std"] = float(accs.std())

    for fn in FUNCTIONS:
        byclass = np.asarray(results[fn]["byclass"])
        randomized = np.asarray(results[fn]["randomized"])
        # the ordering conclusion holds on average for every function ...
        assert byclass.mean() > randomized.mean(), fn
        # ... and ByClass is the far more *stable* method
        assert byclass.std() <= randomized.std() + 0.01, fn
    # where the gap is structural (Fn1 single-attribute, Fn5 joint), it
    # holds with wide margin on every individual seed
    for fn in (1, 5):
        byclass = np.asarray(results[fn]["byclass"])
        randomized = np.asarray(results[fn]["randomized"])
        assert byclass.mean() > randomized.mean() + 0.05, fn
        assert np.all(byclass > randomized), fn
    return metrics


def test_e18_seed_variance(benchmark):
    run_experiment(benchmark, "e18")
