"""E13 — Extension: classifier-agnosticism of reconstruction (naive Bayes).

The paper argues its reconstruction approach is not tree-specific.  Naive
Bayes is the cleanest demonstration: it consumes only per-class marginals,
so reconstructed distributions feed it *directly* — no record correction.
Shape: NB-ByClass tracks NB-Original (both limited by NB's own modelling
bias) and clearly beats NB trained on raw randomized values; trees beat
NB on joint-structure functions (Fn2/Fn4/Fn5) in every mode.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.bayes import PrivacyPreservingNaiveBayes
from repro.datasets import quest
from repro.experiments import format_table
from repro.tree import PrivacyPreservingClassifier

FUNCTIONS = (1, 2, 3, 4, 5)
NB_STRATEGIES = ("original", "randomized", "byclass")


@experiment(
    "e13",
    title="Naive Bayes over reconstructed distributions",
    tags=("bayes", "classification", "smoke"),
    seed=1300,
)
def run_e13(ctx):
    n_train, n_test = ctx.scaled(10_000), ctx.scaled(3_000)
    ctx.record(n_train=n_train, n_test=n_test, privacy=1.0, noise="uniform")
    results = {}
    for fn in FUNCTIONS:
        train = quest.generate(n_train, function=fn, seed=ctx.seed + fn)
        test = quest.generate(n_test, function=fn, seed=ctx.seed + 50 + fn)
        cell = {}
        for strategy in NB_STRATEGIES:
            model = PrivacyPreservingNaiveBayes(
                strategy, privacy=1.0, seed=ctx.seed + 99
            ).fit(train)
            cell[f"nb-{strategy}"] = model.score(test)
        tree = PrivacyPreservingClassifier(
            "byclass", privacy=1.0, seed=ctx.seed + 99
        ).fit(train)
        cell["tree-byclass"] = tree.score(test)
        results[fn] = cell

    columns = ("nb-original", "nb-randomized", "nb-byclass", "tree-byclass")
    rows = [
        (f"Fn{fn}",) + tuple(f"{100 * results[fn][c]:.1f}" for c in columns)
        for fn in FUNCTIONS
    ]
    table = format_table(
        ("function",) + columns,
        rows,
        title="E13: naive Bayes over reconstructed distributions "
        "(100% privacy, uniform)",
    )
    ctx.report(table, name="e13_naive_bayes")

    metrics = {
        f"fn{fn}_{column.replace('-', '_')}": float(results[fn][column])
        for fn in FUNCTIONS
        for column in columns
    }
    wins = 0
    for fn in FUNCTIONS:
        cell = results[fn]
        # reconstruction-fed NB tracks clean NB (reconstruction variance
        # feeds NB's likelihoods directly, so allow a modest band) ...
        assert cell["nb-byclass"] > cell["nb-original"] - 0.13, fn
        # ... and at least matches NB on raw noisy values everywhere
        # (Fn3 is a statistical tie at some scales) ...
        assert cell["nb-byclass"] > cell["nb-randomized"] - 0.02, fn
        wins += cell["nb-byclass"] > cell["nb-randomized"]
    # ... winning clearly on most functions
    assert wins >= 4
    # single-attribute function: NB-byclass stays in Original's ballpark
    # while NB-randomized collapses far below it
    assert results[1]["nb-byclass"] > 0.85
    assert results[1]["nb-randomized"] < results[1]["nb-byclass"] - 0.2
    metrics["nb_byclass_wins"] = int(wins)
    return metrics


def test_e13_naive_bayes(benchmark):
    run_experiment(benchmark, "e13")
