"""E7 — Accuracy vs privacy sweep (paper §5's tradeoff figure).

For each function, ByClass accuracy as privacy rises from 10 % to 200 %
of the attribute range, with the Randomized baseline alongside.  Paper
shape: graceful degradation for ByClass; the Randomized baseline falls
off a cliff as noise grows; Fn1 stays nearly flat for ByClass.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import (
    ClassificationConfig,
    format_table,
    run_privacy_sweep,
)
from repro.experiments.config import scaled

LEVELS = (0.1, 0.25, 0.5, 1.0, 2.0)

CONFIG = ClassificationConfig(
    functions=(1, 2, 3, 4, 5),
    strategies=("randomized", "byclass"),
    noise="uniform",
    n_train=scaled(10_000),
    n_test=scaled(3_000),
    seed=700,
)


def test_e7_accuracy_vs_privacy(benchmark):
    rows = once(benchmark, lambda: run_privacy_sweep(CONFIG, LEVELS))

    acc = {(r.function, r.strategy, r.privacy): r.accuracy for r in rows}
    table_rows = []
    for fn in CONFIG.functions:
        for strategy in CONFIG.strategies:
            cells = [f"Fn{fn}", strategy] + [
                f"{100 * acc[(fn, strategy, level)]:.1f}" for level in LEVELS
            ]
            table_rows.append(tuple(cells))
    table = format_table(
        ("function", "strategy") + tuple(f"p={level:g}" for level in LEVELS),
        table_rows,
        title=f"E7: accuracy (%) vs privacy, uniform noise, n_train={CONFIG.n_train}",
    )
    report("e7_accuracy_vs_privacy", table)

    for fn in CONFIG.functions:
        # byclass degrades gracefully: low-privacy beats the 200% point
        assert acc[(fn, "byclass", 0.1)] > acc[(fn, "byclass", 2.0)] - 0.02
        # at high privacy byclass clearly beats the randomized baseline
        assert acc[(fn, "byclass", 2.0)] > acc[(fn, "randomized", 2.0)]
    # Fn1 stays essentially flat for byclass (single-attribute concept)
    assert acc[(1, "byclass", 2.0)] > 0.85
