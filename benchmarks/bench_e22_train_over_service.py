"""E22 — Decision-tree training over the live service vs the offline pipeline.

PRs 3–4 made the service ingest randomized streams at memory bandwidth,
but the paper's headline workload — ByClass reconstruction feeding
decision-tree induction — still required the offline batch pipeline.
This benchmark exercises the closed loop: labeled randomized Quest
records stream into class-conditional shards, and ``TrainingService``
grows the tree directly from the service-held aggregates (reconstruction
is O(bins) per attribute x class, independent of stream length) plus the
buffered randomized rows (per-record correction and routing).

Asserted, at 1 and 4 shards:

* the service-trained ByClass tree is **bit-identical** — same splits,
  same thresholds, same leaf counts — to the offline
  ``PrivacyPreservingClassifier`` fed the same pre-randomized table
  (the ``experiments/classification.py`` path), and so is Global;
* accuracy on clean test records matches the offline tree exactly.

Measured: ingest wall time for the labeled stream and the train-after-
ingest latency (reconstruct + correct + grow), per shard count.
"""

from __future__ import annotations

import time

from _common import experiment, run_experiment

from repro.datasets import quest
from repro.service import AggregationService, AttributeSpec, TrainingService
from repro.tree.pipeline import PrivacyPreservingClassifier

FUNCTION = 2
N_INTERVALS = 25
PRIVACY = 1.0
NOISE = "uniform"
SHARD_COUNTS = (1, 4)
N_BATCHES = 64


def _offline_fit(strategy, train, randomized, randomizers, seed):
    """The offline pipeline (the parity anchor)."""
    classifier = PrivacyPreservingClassifier(
        strategy,
        noise=NOISE,
        privacy=PRIVACY,
        n_intervals=N_INTERVALS,
        seed=seed,
    )
    start = time.perf_counter()
    classifier.fit(train, randomized_table=randomized, randomizers=randomizers)
    return classifier, time.perf_counter() - start


def _service_train(train, randomized, randomizers, n_shards, strategy):
    """Stream the labeled randomized rows in, then train over the service."""
    names = train.attribute_names
    specs = [
        AttributeSpec(
            name, train.attribute(name).partition(N_INTERVALS), randomizers[name]
        )
        for name in names
    ]
    service = AggregationService(specs, n_shards=n_shards, classes=2)
    training = TrainingService(service)
    w = randomized.matrix()
    labels = train.labels
    n = labels.size
    per_batch = max(1, n // N_BATCHES)
    start = time.perf_counter()
    for lo in range(0, n, per_batch):
        sl = slice(lo, lo + per_batch)
        batch = {name: w[sl, j] for j, name in enumerate(names)}
        training.ingest(batch, labels[sl])
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    model = training.train(strategy)
    train_seconds = time.perf_counter() - start
    return model, ingest_seconds, train_seconds


@experiment(
    "e22",
    title="Decision-tree training over the live service (parity + latency)",
    tags=("service", "classification", "smoke"),
    seed=11,
)
def run_e22(ctx):
    from repro.experiments.reporting import format_table

    n_train = ctx.scaled(6_000)
    n_test = ctx.scaled(2_000)
    train = quest.generate(n_train, function=FUNCTION, seed=ctx.seed)
    test = quest.generate(n_test, function=FUNCTION, seed=ctx.seed + 1)
    randomized, randomizers = quest.randomize(
        train, kind=NOISE, privacy=PRIVACY, seed=ctx.seed + 2
    )
    ctx.record(
        n_train=n_train,
        n_test=n_test,
        function=FUNCTION,
        n_intervals=N_INTERVALS,
        privacy=PRIVACY,
    )

    offline = {}
    offline_seconds = {}
    for strategy in ("byclass", "global"):
        offline[strategy], offline_seconds[strategy] = _offline_fit(
            strategy, train, randomized, randomizers, seed=ctx.seed + 3
        )

    rows = []
    timing = {}
    metrics = {}
    for strategy in ("byclass", "global"):
        anchor = offline[strategy]
        for n_shards in SHARD_COUNTS:
            model, ingest_s, train_s = _service_train(
                train, randomized, randomizers, n_shards, strategy
            )
            identical = model.tree.identical_to(anchor.tree_)
            accuracy = model.tree.score(test.matrix(), test.labels)
            assert identical, (
                f"service-trained {strategy} tree at {n_shards} shard(s) is "
                "not bit-identical to the offline pipeline"
            )
            assert accuracy == anchor.score(test), strategy
            rows.append(
                (
                    strategy,
                    str(n_shards),
                    str(model.tree.n_nodes),
                    str(model.tree.depth),
                    f"{100 * accuracy:.1f}",
                    f"{ingest_s * 1e3:.1f}",
                    f"{train_s * 1e3:.1f}",
                    "yes",
                )
            )
            timing[f"{strategy}_{n_shards}_shards_ingest_ms"] = ingest_s * 1e3
            timing[f"{strategy}_{n_shards}_shards_train_ms"] = train_s * 1e3
            metrics[f"{strategy}_n_nodes"] = model.tree.n_nodes
            metrics[f"{strategy}_depth"] = model.tree.depth
            metrics[f"{strategy}_accuracy"] = accuracy
        timing[f"{strategy}_offline_fit_ms"] = offline_seconds[strategy] * 1e3

    table_text = format_table(
        (
            "strategy", "shards", "nodes", "depth", "accuracy %",
            "ingest ms", "train ms", "bit-identical",
        ),
        rows,
        title=(
            f"E22: train-over-service parity and latency, Fn{FUNCTION}, "
            f"{n_train} records, privacy {PRIVACY:g}"
        ),
    )
    summary = (
        "\nevery service-trained tree is bit-identical (same splits, same "
        "leaf counts) to the offline PrivacyPreservingClassifier pipeline"
    )
    ctx.report(table_text + summary, name="e22_train_over_service")
    ctx.record_timing(**timing)

    return {"bit_identical": True, **metrics}


def test_e22_train_over_service(benchmark):
    run_experiment(benchmark, "e22")
