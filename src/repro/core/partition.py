"""Interval partitions of a numeric attribute domain.

The reconstruction algorithm of the paper (§3.2) and the decision-tree
training algorithms (§4) both discretize each attribute's domain into a
grid of contiguous intervals: reconstruction estimates one probability per
interval, and candidate tree splits are placed at interval boundaries.
:class:`Partition` is that shared substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_1d_array


@dataclass(frozen=True)
class Partition:
    """A sorted grid of ``m`` contiguous half-open intervals.

    Interval ``t`` (``0 <= t < m``) is ``[edges[t], edges[t+1])``; the final
    interval is closed on the right so the full domain ``[low, high]`` is
    covered.  Instances are immutable and hashable-by-identity, so they can
    be shared freely between distributions, reconstructors, and trees.

    Attributes
    ----------
    edges:
        Strictly increasing array of ``m + 1`` boundary values.

    Examples
    --------
    >>> from repro.core import Partition
    >>> part = Partition.uniform(0.0, 1.0, 4)
    >>> part.n_intervals
    4
    >>> part.midpoints
    array([0.125, 0.375, 0.625, 0.875])
    >>> part.locate([0.3, 0.99]).tolist()
    [1, 3]
    >>> part.histogram([0.1, 0.15, 0.8]).tolist()
    [2, 0, 0, 1]
    """

    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValidationError("edges must be a 1-D array with at least two entries")
        if not np.all(np.isfinite(edges)):
            raise ValidationError("edges must be finite")
        if not np.all(np.diff(edges) > 0):
            raise ValidationError("edges must be strictly increasing")
        object.__setattr__(self, "edges", edges)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, low: float, high: float, n_intervals: int) -> "Partition":
        """Partition ``[low, high]`` into ``n_intervals`` equal-width intervals."""
        if n_intervals < 1:
            raise ValidationError(f"n_intervals must be >= 1, got {n_intervals}")
        if not (np.isfinite(low) and np.isfinite(high) and high > low):
            raise ValidationError(f"need finite high > low, got [{low}, {high}]")
        return cls(np.linspace(float(low), float(high), int(n_intervals) + 1))

    @classmethod
    def equidepth(cls, values, n_intervals: int) -> "Partition":
        """Partition whose intervals hold (approximately) equal sample mass.

        Edges are placed at sample quantiles, so dense regions get narrow
        intervals — the classic alternative to equal-width grids for
        reconstruction.  Duplicate quantiles (heavy ties) are collapsed,
        so the result may have fewer than ``n_intervals`` intervals.
        """
        if n_intervals < 1:
            raise ValidationError(f"n_intervals must be >= 1, got {n_intervals}")
        arr = check_1d_array(values, "values")
        quantiles = np.quantile(arr, np.linspace(0.0, 1.0, n_intervals + 1))
        edges = np.unique(quantiles)
        if edges.size < 2:
            return cls.from_values(arr, 1)
        return cls(edges)

    @classmethod
    def from_values(cls, values, n_intervals: int, *, pad: float = 0.0) -> "Partition":
        """Equal-width partition covering the observed range of ``values``.

        Parameters
        ----------
        pad:
            Fraction of the observed range added on each side, useful when
            the partition must also cover future samples from the same
            distribution.
        """
        arr = check_1d_array(values, "values")
        low, high = float(arr.min()), float(arr.max())
        if high == low:
            # Degenerate sample: build a tiny non-empty domain around it.
            span = max(abs(low), 1.0)
            low, high = low - 0.5 * span, high + 0.5 * span
        margin = pad * (high - low)
        return cls.uniform(low - margin, high + margin, n_intervals)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def n_intervals(self) -> int:
        """Number of intervals ``m``."""
        return self.edges.size - 1

    @property
    def low(self) -> float:
        """Left end of the domain."""
        return float(self.edges[0])

    @property
    def high(self) -> float:
        """Right end of the domain."""
        return float(self.edges[-1])

    @property
    def span(self) -> float:
        """Total width ``high - low`` of the domain."""
        return self.high - self.low

    @property
    def midpoints(self) -> np.ndarray:
        """Midpoint of each interval (the paper's representative values)."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def widths(self) -> np.ndarray:
        """Width of each interval."""
        return np.diff(self.edges)

    # ------------------------------------------------------------------
    # Value <-> interval mapping
    # ------------------------------------------------------------------
    def locate(self, values) -> np.ndarray:
        """Map each value to its interval index, clipping out-of-domain values.

        Values below ``low`` map to interval 0 and values above ``high`` to
        interval ``m - 1`` — the behaviour the reconstruction algorithm
        needs for randomized values that fall slightly outside the grid.
        """
        arr = np.asarray(values, dtype=float)
        idx = np.searchsorted(self.edges, arr, side="right") - 1
        return np.clip(idx, 0, self.n_intervals - 1)

    def histogram(self, values) -> np.ndarray:
        """Count values per interval (clipped like :meth:`locate`)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return np.zeros(self.n_intervals, dtype=np.int64)
        idx = self.locate(arr)
        return np.bincount(idx, minlength=self.n_intervals).astype(np.int64)

    def expanded(self, margin: float) -> "Partition":
        """Extend the grid by whole intervals to cover ``margin`` on each side.

        Used to bucket randomized values ``x + r``, whose range exceeds the
        original domain by the noise half-width.  Interval widths are kept
        identical to the first/last interval so midpoint arithmetic in the
        reconstructor stays uniform.
        """
        if margin < 0:
            raise ValidationError(f"margin must be >= 0, got {margin}")
        if margin == 0:
            return self
        left_w = float(self.edges[1] - self.edges[0])
        right_w = float(self.edges[-1] - self.edges[-2])
        n_left = int(np.ceil(margin / left_w))
        n_right = int(np.ceil(margin / right_w))
        left = self.edges[0] - left_w * np.arange(n_left, 0, -1)
        right = self.edges[-1] + right_w * np.arange(1, n_right + 1)
        return Partition(np.concatenate([left, self.edges, right]))

    def __len__(self) -> int:
        return self.n_intervals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition(n_intervals={self.n_intervals}, "
            f"low={self.low:.6g}, high={self.high:.6g})"
        )
