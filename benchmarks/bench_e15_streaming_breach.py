"""E15 — Extensions: streaming reconstruction + worst-case breach table.

E15a: the paper's motivating deployment is an online survey — providers
arrive over time.  Streaming reconstruction folds each batch into a
histogram and refreshes the estimate with warm-started sweeps; the
estimate must converge to the batch result as the stream accumulates.

E15b: the worst-case (rho1, rho2) breach view of the §2 operators at
matched interval privacy: uniform noise has unbounded amplification
(extreme disclosures pin values down) while Gaussian stays bounded — the
worst-case argument the average-case metric cannot express.
"""

from __future__ import annotations

import numpy as np
from _common import experiment, run_experiment

from repro.core import (
    HistogramDistribution,
    StreamingReconstructor,
    amplification_factor,
    breach_analysis,
    noise_for_privacy,
)
from repro.datasets import shapes
from repro.experiments import format_table
from repro.utils.rng import ensure_rng


@experiment(
    "e15",
    title="Streaming reconstruction and worst-case breach analysis",
    tags=("streaming", "privacy", "smoke"),
    seed=1500,
)
def run_e15(ctx):
    density = shapes.triangles()
    part = density.partition(20)
    noise = noise_for_privacy("uniform", 0.5, 1.0)
    true = density.true_distribution(part)

    stream = StreamingReconstructor(part, noise)
    rng = ensure_rng(ctx.seed)
    batch = ctx.scaled(2_000)
    ctx.record(batch_size=batch, n_batches=5, privacy=0.5, n_intervals=20)
    streaming_rows = []
    for _step in range(1, 6):
        x = density.sample(batch, seed=rng)
        stream.update(noise.randomize(x, seed=rng))
        result = stream.estimate()
        streaming_rows.append(
            (
                stream.n_seen,
                f"{result.distribution.l1_distance(true):.4f}",
                result.n_iterations,
            )
        )

    prior_x = density.sample(ctx.scaled(20_000), seed=rng)
    prior = HistogramDistribution.from_values(prior_x, part)
    breach_cells = []
    for kind in ("uniform", "gaussian"):
        for level in (0.25, 1.0):
            randomizer = noise_for_privacy(kind, level, 1.0)
            analysis = breach_analysis(prior, randomizer, rho1=0.06, rho2=0.5)
            gamma = amplification_factor(part, randomizer)
            breach_cells.append(
                {
                    "kind": kind,
                    "level": level,
                    "posterior": float(analysis.worst_posterior),
                    "breached": bool(analysis.breached),
                    "gamma": float(gamma),
                }
            )
    breach_rows = [
        (
            cell["kind"],
            f"{cell['level']:g}",
            f"{cell['posterior']:.3f}",
            "yes" if cell["breached"] else "no",
            "inf" if np.isinf(cell["gamma"]) else f"{cell['gamma']:.3g}",
        )
        for cell in breach_cells
    ]

    streaming_table = format_table(
        ("records seen", "L1 to truth", "sweeps"),
        streaming_rows,
        title="E15a: streaming reconstruction (triangles, uniform, 50% privacy)",
    )
    breach_table = format_table(
        ("noise", "privacy", "worst posterior", "breach?", "amplification"),
        breach_rows,
        title="E15b: worst-case (0.06, 0.5) breach analysis",
    )
    ctx.report(
        streaming_table + "\n\n" + breach_table, name="e15_streaming_breach"
    )

    errors = [float(row[1]) for row in streaming_rows]
    sweeps = [int(row[2]) for row in streaming_rows]
    metrics = {
        "stream_l1_first": errors[0],
        "stream_l1_last": errors[-1],
        "stream_sweeps_first": sweeps[0],
        "stream_sweeps_last": sweeps[-1],
    }
    for cell in breach_cells:
        slug = f"{cell['kind']}_p{cell['level']:g}"
        metrics[f"worst_posterior_{slug}"] = cell["posterior"]
        metrics[f"amplification_{slug}"] = cell["gamma"]

    # the stream's error decreases as records accumulate
    assert errors[-1] < errors[0]
    # warm-started refreshes get cheap
    assert sweeps[-1] <= sweeps[0] + 5

    # bounded-support noise: unbounded amplification at every level
    assert np.isinf(metrics["amplification_uniform_p0.25"])
    assert np.isinf(metrics["amplification_uniform_p1"])
    # Gaussian amplification is finite at 100% privacy
    assert np.isfinite(metrics["amplification_gaussian_p1"])
    return metrics


def test_e15_streaming_breach(benchmark):
    run_experiment(benchmark, "e15")
