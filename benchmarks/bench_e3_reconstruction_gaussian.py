"""E3 — Reconstruction with Gaussian noise, both shapes (paper §3).

The paper runs its reconstruction demonstration with Gaussian
randomization as well; the conclusion (reconstruction ~restores the
original, randomization does not) must be noise-kind independent.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction


@experiment(
    "e3",
    title="Reconstruction with Gaussian noise, both shapes",
    tags=("reconstruction", "smoke"),
    seed=103,
)
def run_e3(ctx):
    n = ctx.scaled(10_000)
    ctx.record(noise="gaussian", privacy=0.5, n=n, n_intervals=20)
    outcomes = {}
    for offset, shape in enumerate(("plateau", "triangles")):
        config = ReconstructionConfig(
            shape=shape,
            noise="gaussian",
            privacy=0.5,
            n=n,
            n_intervals=20,
            seed=ctx.seed + offset,
        )
        outcomes[shape] = run_reconstruction(config)

    rows = [
        (
            shape,
            f"{o.l1_randomized:.4f}",
            f"{o.l1_reconstructed:.4f}",
            f"{o.ks_randomized:.4f}",
            f"{o.ks_reconstructed:.4f}",
            o.n_iterations,
        )
        for shape, o in outcomes.items()
    ]
    table = format_table(
        ("shape", "L1 rand", "L1 recon", "KS rand", "KS recon", "iters"),
        rows,
        title="E3: Gaussian noise, 50% privacy",
    )
    ctx.report(table, name="e3_reconstruction_gaussian")

    metrics = {}
    for shape, outcome in outcomes.items():
        metrics[f"{shape}_l1_randomized"] = float(outcome.l1_randomized)
        metrics[f"{shape}_l1_reconstructed"] = float(outcome.l1_reconstructed)
        metrics[f"{shape}_iterations"] = int(outcome.n_iterations)
        assert outcome.l1_reconstructed < 0.6 * outcome.l1_randomized
    return metrics


def test_e3_reconstruction_gaussian(benchmark):
    run_experiment(benchmark, "e3")
