"""Unit and property tests for repro.core.partition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import Partition
from repro.exceptions import ValidationError


class TestConstruction:
    def test_uniform_edges(self):
        part = Partition.uniform(0.0, 1.0, 4)
        np.testing.assert_allclose(part.edges, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_uniform_single_interval(self):
        part = Partition.uniform(-1.0, 1.0, 1)
        assert part.n_intervals == 1
        assert part.span == 2.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            Partition.uniform(1.0, 1.0, 3)
        with pytest.raises(ValidationError):
            Partition.uniform(2.0, 1.0, 3)
        with pytest.raises(ValidationError):
            Partition.uniform(0.0, float("inf"), 3)

    def test_rejects_zero_intervals(self):
        with pytest.raises(ValidationError):
            Partition.uniform(0.0, 1.0, 0)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValidationError):
            Partition(np.array([0.0, 0.5, 0.4, 1.0]))

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValidationError):
            Partition(np.array([0.0, 0.5, 0.5, 1.0]))

    def test_rejects_scalar_edges(self):
        with pytest.raises(ValidationError):
            Partition(np.array([1.0]))

    def test_from_values_covers_range(self):
        values = np.array([3.0, 7.0, 5.0])
        part = Partition.from_values(values, 5)
        assert part.low == 3.0
        assert part.high == 7.0

    def test_from_values_pad(self):
        part = Partition.from_values([0.0, 10.0], 5, pad=0.1)
        assert part.low == pytest.approx(-1.0)
        assert part.high == pytest.approx(11.0)

    def test_from_values_degenerate_sample(self):
        part = Partition.from_values([5.0, 5.0, 5.0], 4)
        assert part.low < 5.0 < part.high

    def test_non_uniform_edges_accepted(self):
        part = Partition(np.array([0.0, 0.1, 0.5, 1.0]))
        assert part.n_intervals == 3
        np.testing.assert_allclose(part.widths, [0.1, 0.4, 0.5])


class TestGeometry:
    def test_midpoints(self, unit_partition):
        np.testing.assert_allclose(
            unit_partition.midpoints, np.arange(0.05, 1.0, 0.1)
        )

    def test_widths_sum_to_span(self, unit_partition):
        assert unit_partition.widths.sum() == pytest.approx(unit_partition.span)

    def test_len(self, unit_partition):
        assert len(unit_partition) == 10


class TestLocate:
    def test_interior_values(self, unit_partition):
        idx = unit_partition.locate([0.05, 0.15, 0.95])
        np.testing.assert_array_equal(idx, [0, 1, 9])

    def test_left_edge_inclusive(self, unit_partition):
        assert unit_partition.locate([0.0])[0] == 0

    def test_boundary_goes_right(self, unit_partition):
        # Half-open intervals: 0.1 belongs to interval 1.
        assert unit_partition.locate([0.1])[0] == 1

    def test_right_edge_clipped_into_last(self, unit_partition):
        assert unit_partition.locate([1.0])[0] == 9

    def test_out_of_domain_clipped(self, unit_partition):
        idx = unit_partition.locate([-5.0, 5.0])
        np.testing.assert_array_equal(idx, [0, 9])

    def test_histogram_counts(self, unit_partition):
        values = [0.05, 0.06, 0.55, 2.0]
        counts = unit_partition.histogram(values)
        assert counts[0] == 2
        assert counts[5] == 1
        assert counts[9] == 1
        assert counts.sum() == 4

    def test_histogram_empty(self, unit_partition):
        counts = unit_partition.histogram([])
        assert counts.sum() == 0
        assert counts.shape == (10,)


class TestExpanded:
    def test_zero_margin_is_identity(self, unit_partition):
        assert unit_partition.expanded(0.0) is unit_partition

    def test_margin_covered(self, unit_partition):
        bigger = unit_partition.expanded(0.25)
        assert bigger.low <= -0.25
        assert bigger.high >= 1.25

    def test_widths_preserved(self, unit_partition):
        bigger = unit_partition.expanded(0.33)
        np.testing.assert_allclose(bigger.widths, 0.1)

    def test_original_edges_are_subset(self, unit_partition):
        bigger = unit_partition.expanded(0.2)
        for edge in unit_partition.edges:
            assert np.any(np.isclose(bigger.edges, edge))

    def test_negative_margin_rejected(self, unit_partition):
        with pytest.raises(ValidationError):
            unit_partition.expanded(-0.1)


class TestEquidepth:
    def test_equal_mass(self, rng):
        values = rng.exponential(1.0, size=10_000)
        part = Partition.equidepth(values, 10)
        counts = part.histogram(values)
        # each interval holds ~10% of the sample
        assert counts.min() > 0.08 * values.size
        assert counts.max() < 0.12 * values.size

    def test_covers_sample(self, rng):
        values = rng.normal(0, 3, size=500)
        part = Partition.equidepth(values, 8)
        assert part.low == pytest.approx(values.min())
        assert part.high == pytest.approx(values.max())

    def test_ties_collapse_intervals(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        part = Partition.equidepth(values, 10)
        assert part.n_intervals < 10  # duplicate quantiles were merged

    def test_all_identical_values(self):
        part = Partition.equidepth(np.full(50, 3.0), 5)
        assert part.n_intervals >= 1
        assert part.low < 3.0 < part.high

    def test_rejects_zero_intervals(self):
        with pytest.raises(ValidationError):
            Partition.equidepth([1.0, 2.0], 0)

    def test_narrow_where_dense(self, rng):
        # density concentrated near 0: early intervals must be narrower
        values = rng.beta(0.5, 5.0, size=20_000)
        part = Partition.equidepth(values, 10)
        assert part.widths[0] < part.widths[-1]


@given(
    low=st.floats(-1e6, 1e6),
    span=st.floats(1e-3, 1e6),
    m=st.integers(1, 200),
)
def test_property_uniform_partition_consistency(low, span, m):
    part = Partition.uniform(low, low + span, m)
    assert part.n_intervals == m
    assert part.widths.min() > 0
    # span is recomputed as high - low: allow float cancellation when
    # |low| >> span
    assert part.span == pytest.approx(span, rel=1e-6, abs=1e-9 * max(abs(low), 1.0))
    # midpoints are strictly inside their intervals
    assert np.all(part.midpoints > part.edges[:-1])
    assert np.all(part.midpoints < part.edges[1:])


@given(
    values=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
    m=st.integers(1, 30),
)
def test_property_locate_roundtrip(values, m):
    """Every located value lies inside (or is clipped to) its interval."""
    part = Partition.uniform(-100, 100, m)
    idx = part.locate(values)
    arr = np.asarray(values)
    assert np.all(idx >= 0)
    assert np.all(idx < m)
    inside = (arr >= part.edges[idx]) & (arr < part.edges[idx + 1])
    at_top = idx == m - 1
    assert np.all(inside | at_top)


@given(
    n=st.integers(1, 200),
    m=st.integers(1, 20),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_histogram_total(n, m, seed):
    rng = np.random.default_rng(seed)
    part = Partition.uniform(0, 1, m)
    values = rng.normal(0.5, 1.0, size=n)  # may fall outside on purpose
    assert part.histogram(values).sum() == n
