"""E12 — Extension: privacy-preserving association mining (paper's future work).

Randomized-response baskets with channel-inversion support recovery.
Shape: recovered supports approximate the true supports; the naive count
on randomized data is badly biased; the planted frequent itemsets are
re-identified at reasonable keep probabilities; estimation error grows as
keep_prob approaches 0.5 (full deniability).
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import format_table
from repro.experiments.config import scaled
from repro.mining import MaskMiner, RandomizedResponse, generate_baskets
from repro.mining.apriori import frequent_itemsets, support

KEEP_PROBS = (0.95, 0.9, 0.8, 0.7)
TARGETS = ({0}, {0, 1}, {2, 3, 4})


def _run():
    baskets = generate_baskets(scaled(20_000), 12, seed=1200)
    truth = {frozenset(t): support(baskets, t) for t in TARGETS}
    results = {}
    for keep in KEEP_PROBS:
        rr = RandomizedResponse(keep)
        disclosed = rr.randomize(baskets, seed=1201)
        miner = MaskMiner(rr)
        results[keep] = {
            frozenset(t): {
                "estimated": miner.estimate_support(disclosed, t),
                "naive": support(disclosed, t),
            }
            for t in TARGETS
        }
    mined = MaskMiner(RandomizedResponse(0.9)).frequent_itemsets(
        RandomizedResponse(0.9).randomize(baskets, seed=1202), 0.15
    )
    return truth, results, mined


def test_e12_association_mask(benchmark):
    truth, results, mined = once(benchmark, _run)

    rows = []
    for keep in KEEP_PROBS:
        for itemset, values in results[keep].items():
            label = "{" + ",".join(str(i) for i in sorted(itemset)) + "}"
            rows.append(
                (
                    f"{keep:g}",
                    label,
                    f"{truth[itemset]:.3f}",
                    f"{values['estimated']:.3f}",
                    f"{values['naive']:.3f}",
                )
            )
    table = format_table(
        ("keep_prob", "itemset", "true supp", "estimated", "naive"),
        rows,
        title="E12: support recovery from randomized-response baskets",
    )
    mined_line = "\nmined at keep=0.9, min_supp=0.15: " + ", ".join(
        "{" + ",".join(str(i) for i in sorted(s)) + "}" for s in sorted(mined, key=sorted)
    )
    report("e12_association_mask", table + mined_line)

    # estimates track truth; naive counting does not (for multi-item sets)
    for keep in KEEP_PROBS[:3]:
        for itemset in truth:
            est = results[keep][itemset]["estimated"]
            naive = results[keep][itemset]["naive"]
            assert abs(est - truth[itemset]) < 0.05
            if len(itemset) >= 2 and keep <= 0.9:
                assert abs(est - truth[itemset]) < abs(naive - truth[itemset])
    # planted itemsets are re-discovered
    assert frozenset({0, 1}) in mined
    assert frozenset({2, 3, 4}) in mined
    # error grows as deniability rises
    err = lambda keep: abs(
        results[keep][frozenset({2, 3, 4})]["estimated"] - truth[frozenset({2, 3, 4})]
    )
    assert err(0.7) >= err(0.95) - 0.01
