"""Known-bad fixture for the lock-discipline checker (L001/L002/L003).

Parsed by ``tests/test_analysis.py`` as a *library* module; never
imported.  Expected findings are pinned by line in the test, so keep
edits append-only or update the test alongside.
"""

import threading
import time


class Counter:
    def __init__(self):
        self.lock = threading.Lock()
        self.other_lock = threading.Lock()
        self.count = 0
        self.trace = []

    def guarded(self):
        # teaches the checker: 'count' and 'trace' are guarded by 'lock'
        with self.lock:
            self.count += 1
            self.trace.append(self.count)

    def racy(self):
        self.count = 0  # L001: guarded mutation outside the lock

    def slow(self):
        with self.lock:
            time.sleep(0.1)  # L002: blocking call under a lock

    def forward(self):
        with self.lock:
            with self.other_lock:  # L003 half: lock -> other_lock
                self.count += 1

    def backward(self):
        with self.other_lock:
            with self.lock:  # L003 half: other_lock -> lock
                self.count += 1
