"""E11 — Ablation: training-set size (paper methodology check).

The paper trains on 100 000 records; our default harness uses 10 000.
This bench sweeps the size and shows the shape conclusions are stable:
ByClass tracks Original at every size, with the gap narrowing as
reconstruction gets more data.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import (
    ClassificationConfig,
    format_table,
    run_training_size_sweep,
)
from repro.experiments.config import scaled

SIZES = (1_000, 3_000, 10_000, 30_000)

CONFIG = ClassificationConfig(
    functions=(3,),
    noise="uniform",
    privacy=1.0,
    n_test=scaled(3_000),
    seed=1100,
)


def test_e11_training_size(benchmark):
    sizes = tuple(scaled(s) for s in SIZES)
    rows = once(
        benchmark, lambda: run_training_size_sweep(CONFIG, sizes, strategy="byclass")
    )

    acc = {(r.n_train, r.strategy): r.accuracy for r in rows}
    table_rows = [
        (
            n,
            f"{100 * acc[(n, 'original')]:.1f}",
            f"{100 * acc[(n, 'byclass')]:.1f}",
        )
        for n in sizes
    ]
    table = format_table(
        ("n_train", "original %", "byclass %"),
        table_rows,
        title="E11: Fn3 accuracy vs training size (100% privacy, uniform)",
    )
    report("e11_training_size", table)

    # byclass benefits from data: largest size beats smallest clearly
    assert acc[(sizes[-1], "byclass")] > acc[(sizes[0], "byclass")]
    # original is roughly size-insensitive past a few thousand records
    assert abs(acc[(sizes[-1], "original")] - acc[(sizes[-2], "original")]) < 0.05
