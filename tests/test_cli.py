"""Tests for the ppdm command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reconstruct_defaults(self):
        args = build_parser().parse_args(["reconstruct"])
        assert args.shape == "plateau"
        assert args.noise == "uniform"

    def test_classify_args(self):
        args = build_parser().parse_args(
            ["classify", "--functions", "1", "3", "--privacy", "0.5"]
        )
        assert args.functions == [1, 3]
        assert args.privacy == 0.5

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "--strategies", "psychic"])

    def test_sweep_levels(self):
        args = build_parser().parse_args(["sweep", "--levels", "0.1", "0.9"])
        assert args.levels == [0.1, 0.9]


class TestCommands:
    def test_reconstruct_prints_table(self, capsys):
        code = main(
            ["reconstruct", "--n", "800", "--intervals", "8", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reconstructed" in out
        assert "L1(original, randomized)" in out

    def test_privacy_prints_attributes(self, capsys):
        code = main(["privacy", "--privacy", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "salary" in out
        assert "gaussian" in out

    def test_quest_info(self, capsys):
        code = main(["quest-info", "--n", "500", "--function", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Group A fraction" in out
        assert "zipcode" in out

    def test_classify_small(self, capsys):
        code = main(
            [
                "classify",
                "--functions", "1",
                "--strategies", "original", "byclass",
                "--train", "800",
                "--test", "300",
                "--privacy", "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "byclass" in out

    def test_breach_table(self, capsys):
        code = main(["breach", "--n", "2000", "--levels", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "amplification" in out
        assert "uniform" in out and "gaussian" in out

    def test_classify_valueclass_strategy(self, capsys):
        code = main(
            [
                "classify",
                "--functions", "1",
                "--strategies", "valueclass",
                "--train", "600",
                "--test", "200",
                "--privacy", "0.25",
            ]
        )
        assert code == 0
        assert "valueclass" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--function", "1",
                "--levels", "0.5",
                "--strategies", "byclass",
                "--train", "800",
                "--test", "300",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accuracy %" in out
