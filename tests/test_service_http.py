"""Tests for the HTTP front end (repro.service.httpd)."""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import numpy as np
import pytest

from repro.core import Partition, StreamingReconstructor, UniformRandomizer
from repro.service import AggregationService, AttributeSpec, ServiceHTTPServer
from repro.service.wire import (
    CONTENT_TYPE_BASKETS,
    CONTENT_TYPE_COLUMNS,
    CONTENT_TYPE_NDJSON,
    encode_baskets,
    encode_columns,
    encode_ndjson,
)


@pytest.fixture
def noise():
    return UniformRandomizer(half_width=0.2)


@pytest.fixture
def service(noise):
    return AggregationService(
        [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
        n_shards=2,
    )


@pytest.fixture
def server(service, tmp_path):
    srv = ServiceHTTPServer(
        service, port=0, snapshot_path=tmp_path / "snap.json"
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def _get(server, path):
    with urllib.request.urlopen(server.url + path) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _error_of(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    return excinfo.value.code, json.loads(excinfo.value.read())


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "records": 0}

    def test_attributes(self, server):
        _, payload = _get(server, "/attributes")
        (attr,) = payload["attributes"]
        assert attr["name"] == "opinion"
        assert attr["n_intervals"] == 10
        assert attr["noise"] == "uniform"
        assert attr["privacy"] == pytest.approx(0.38)

    def test_ingest_and_stats(self, server):
        status, payload = _post(
            server, "/ingest", {"batch": {"opinion": [0.5, 0.6, 0.7]}}
        )
        assert status == 200
        assert payload == {"ingested": 3, "records": 3}
        _, stats = _get(server, "/stats")
        assert stats["records"] == {"opinion": 3}
        assert stats["n_shards"] == 2
        assert stats["kernel_cache"]["misses"] == 1

    def test_ingest_with_shard_pin(self, server, service):
        _post(server, "/ingest", {"batch": {"opinion": [0.5]}, "shard": 1})
        assert service.shards.shard(1).n_seen("opinion") == 1

    def test_estimate_matches_single_stream(self, server, noise):
        rng = np.random.default_rng(0)
        w = noise.randomize(rng.uniform(0.3, 0.7, 2_000), seed=1)
        _post(server, "/ingest", {"batch": {"opinion": w.tolist()}})
        _, estimate = _get(server, "/estimate?attribute=opinion")

        stream = StreamingReconstructor(
            Partition.uniform(0, 1, 10), noise
        ).update(np.asarray(w.tolist()))
        expected = stream.estimate()
        assert estimate["n_seen"] == 2_000
        assert estimate["n_iterations"] == expected.n_iterations
        assert np.array_equal(
            np.asarray(estimate["probs"]), expected.distribution.probs
        )

    def test_snapshot_persists(self, server, service, tmp_path):
        _post(server, "/ingest", {"batch": {"opinion": [0.4, 0.5]}})
        status, payload = _post(server, "/snapshot", None)
        assert status == 200
        restored = AggregationService.load(payload["saved"])
        assert restored.n_seen("opinion") == 2


def _post_raw(server, path, body, content_type):
    request = urllib.request.Request(
        server.url + path, data=body, method="POST",
        headers={"Content-Type": content_type},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestColumnarIngest:
    def test_single_frame(self, server, service):
        body = encode_columns({"opinion": [0.4, 0.5, 0.6]})
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        assert status == 200
        assert payload == {"ingested": 3, "frames": 1, "records": 3}
        assert service.n_seen("opinion") == 3

    def test_multi_frame_body_with_shard_pins(self, server, service):
        body = encode_columns({"opinion": [0.4]}, shard=0) + encode_columns(
            {"opinion": [0.5, 0.6]}, shard=1
        )
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        assert status == 200
        assert payload["ingested"] == 3
        assert payload["frames"] == 2
        assert service.shards.shard(0).n_seen("opinion") == 1
        assert service.shards.shard(1).n_seen("opinion") == 2

    def test_content_type_parameters_tolerated(self, server, service):
        body = encode_columns({"opinion": [0.5]})
        status, _ = _post_raw(
            server, "/ingest", body, CONTENT_TYPE_COLUMNS + "; charset=binary"
        )
        assert status == 200
        assert service.n_seen("opinion") == 1

    def test_estimate_parity_with_json_wire(self, server, noise):
        """The two wires are interchangeable: same disclosures, bitwise
        the same estimate."""
        rng = np.random.default_rng(3)
        w = noise.randomize(rng.uniform(0.3, 0.7, 2_000), seed=4)
        half = w.size // 2
        _post(server, "/ingest", {"batch": {"opinion": w[:half].tolist()}})
        _post_raw(
            server, "/ingest", encode_columns({"opinion": w[half:]}),
            CONTENT_TYPE_COLUMNS,
        )
        _, estimate = _get(server, "/estimate?attribute=opinion")
        stream = StreamingReconstructor(Partition.uniform(0, 1, 10), noise)
        stream.update(np.asarray(w[:half].tolist()))
        stream.update(w[half:])
        expected = stream.estimate()
        assert np.array_equal(
            np.asarray(estimate["probs"]), expected.distribution.probs
        )
        assert estimate["n_iterations"] == expected.n_iterations

    def test_bad_magic_is_400(self, server):
        code, payload = _error_of(
            lambda: _post_raw(
                server, "/ingest", b"JUNKJUNKJUNKJUNK", CONTENT_TYPE_COLUMNS
            )
        )
        assert code == 400
        assert "magic" in payload["error"]

    def test_truncated_frame_is_400(self, server):
        body = encode_columns({"opinion": [0.5, 0.6]})[:-4]
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "truncated" in payload["error"]

    def test_unknown_attribute_is_400(self, server):
        body = encode_columns({"nope": [0.5]})
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "unknown attribute" in payload["error"]

    def test_failing_frame_aborts_whole_body(self, server, service):
        """All-or-nothing: a bad frame anywhere in the body means no
        frame of the body is absorbed (safe to re-send everything)."""
        body = encode_columns({"opinion": [0.4, 0.5]}) + encode_columns(
            {"opinion": [0.6, 0.7]}
        )[:-4]
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "truncated" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_bad_shard_pin_aborts_whole_body(self, server, service):
        body = encode_columns({"opinion": [0.4]}) + encode_columns(
            {"opinion": [0.5]}, shard=7
        )
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "shard index" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_columnar_only_negotiated_on_ingest(self, server):
        """Other routes ignore the columnar content type (body is JSON)."""
        code, _ = _error_of(
            lambda: _post_raw(
                server, "/nope", encode_columns({}), CONTENT_TYPE_COLUMNS
            )
        )
        assert code == 400  # body is not valid JSON -> 400, not a crash


class TestNDJSONIngest:
    def test_multi_line_body(self, server, service):
        body = encode_ndjson(
            [({"opinion": [0.4, 0.5]}, None), ({"opinion": [0.6]}, 1)]
        )
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_NDJSON)
        assert status == 200
        assert payload == {"ingested": 3, "frames": 2, "records": 3}
        assert service.shards.shard(1).n_seen("opinion") == 1

    def test_bad_line_is_400(self, server):
        body = b'{"batch": {"opinion": [0.5]}}\nnot json\n'
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_NDJSON)
        )
        assert code == 400
        assert "line 2" in payload["error"]

    def test_non_integer_shard_is_400(self, server, service):
        body = b'{"batch": {"opinion": [0.5]}, "shard": []}\n'
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_NDJSON)
        )
        assert code == 400
        assert "shard" in payload["error"]
        assert service.n_seen("opinion") == 0


class TestKeepAlive:
    def test_connection_survives_many_requests(self, server):
        """HTTP/1.1 keep-alive: one socket carries the whole batch run."""
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            sockets = set()
            for i in range(4):
                body = encode_columns({"opinion": [0.1 * (i + 1)]})
                conn.request(
                    "POST", "/ingest", body=body,
                    headers={"Content-Type": CONTENT_TYPE_COLUMNS},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                assert payload["records"] == i + 1
                sockets.add(id(conn.sock))
            assert len(sockets) == 1  # never re-dialed
        finally:
            conn.close()

    def test_mixed_wire_formats_on_one_connection(self, server, service):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for body, ctype in [
                (json.dumps({"batch": {"opinion": [0.4]}}).encode(),
                 "application/json"),
                (encode_columns({"opinion": [0.5]}), CONTENT_TYPE_COLUMNS),
                (encode_ndjson([({"opinion": [0.6]}, None)]),
                 CONTENT_TYPE_NDJSON),
            ]:
                conn.request(
                    "POST", "/ingest", body=body,
                    headers={"Content-Type": ctype},
                )
                assert json.loads(conn.getresponse().read())["ingested"] == 1
            assert service.n_seen("opinion") == 3
        finally:
            conn.close()


class TestLabeledIngest:
    """Class columns across every wire format feed the per-class stripes."""

    @pytest.fixture
    def class_server(self, noise, tmp_path):
        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
            n_shards=2,
            classes=2,
        )
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, service
        srv.shutdown()
        thread.join(timeout=5)

    def test_json_classes(self, class_server):
        server, service = class_server
        status, payload = _post(
            server, "/ingest",
            {"batch": {"opinion": [0.4, 0.6]}, "classes": [0, 1]},
        )
        assert status == 200
        assert payload["ingested"] == 2
        assert service.n_seen_by_class("opinion") == {
            "unlabeled": 0, "0": 1, "1": 1,
        }

    def test_columnar_v2_classes(self, class_server):
        server, service = class_server
        body = encode_columns({"opinion": [0.4, 0.5, 0.6]}, classes=[0, 0, 1])
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        assert status == 200
        assert payload["ingested"] == 3
        assert service.n_seen_by_class("opinion")["0"] == 2

    def test_mixed_v1_v2_body(self, class_server):
        server, service = class_server
        body = encode_columns({"opinion": [0.4]}) + encode_columns(
            {"opinion": [0.5, 0.6]}, classes=[1, 1]
        )
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        assert status == 200
        assert payload["frames"] == 2
        assert service.n_seen_by_class("opinion") == {
            "unlabeled": 1, "0": 0, "1": 2,
        }

    def test_ndjson_classes(self, class_server):
        server, service = class_server
        body = b'{"batch": {"opinion": [0.4]}, "classes": [1]}\n'
        status, _ = _post_raw(server, "/ingest", body, CONTENT_TYPE_NDJSON)
        assert status == 200
        assert service.n_seen_by_class("opinion")["1"] == 1

    def test_stats_reports_by_class(self, class_server):
        server, service = class_server
        _post(server, "/ingest",
              {"batch": {"opinion": [0.4, 0.6]}, "classes": [0, 1]})
        _post(server, "/ingest", {"batch": {"opinion": [0.5]}})
        _, stats = _get(server, "/stats")
        assert stats["classes"] == 2
        assert stats["records_by_class"]["opinion"] == {
            "unlabeled": 1, "0": 1, "1": 1,
        }

    def test_out_of_range_class_is_400_nothing_absorbed(self, class_server):
        server, service = class_server
        body = encode_columns({"opinion": [0.4]}, classes=[0]) + encode_columns(
            {"opinion": [0.5]}, classes=[9]
        )
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "class" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_class_column_on_class_unaware_service_is_400(self, server, service):
        body = encode_columns({"opinion": [0.4]}, classes=[0])
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert "class" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_labeled_estimate_still_single_stream(self, class_server, noise):
        """Class partitioning never changes the all-records estimate."""
        server, service = class_server
        rng = np.random.default_rng(5)
        w = noise.randomize(rng.uniform(0.3, 0.7, 1_500), seed=6)
        labels = (rng.random(1_500) < 0.4).astype(int)
        half = w.size // 2
        _post(server, "/ingest",
              {"batch": {"opinion": w[:half].tolist()},
               "classes": labels[:half].tolist()})
        _post_raw(
            server, "/ingest",
            encode_columns({"opinion": w[half:]}, classes=labels[half:]),
            CONTENT_TYPE_COLUMNS,
        )
        _, estimate = _get(server, "/estimate?attribute=opinion")
        stream = StreamingReconstructor(Partition.uniform(0, 1, 10), noise)
        stream.update(np.asarray(w[:half].tolist()))
        stream.update(w[half:])
        expected = stream.estimate()
        assert np.array_equal(
            np.asarray(estimate["probs"]), expected.distribution.probs
        )


class TestTrainEndpoints:
    @pytest.fixture
    def train_server(self, noise):
        from repro.service import TrainingService

        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
            classes=2,
        )
        training = TrainingService(service)
        srv = ServiceHTTPServer(service, port=0, training=training)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, service, training
        srv.shutdown()
        thread.join(timeout=5)

    def _feed(self, server, noise, n=600):
        rng = np.random.default_rng(7)
        x = np.concatenate(
            [rng.uniform(0, 0.45, n // 2), rng.uniform(0.55, 1, n // 2)]
        )
        labels = np.repeat([0, 1], n // 2)
        body = encode_columns(
            {"opinion": noise.randomize(x, seed=8)}, classes=labels
        )
        _post_raw(server, "/ingest", body, CONTENT_TYPE_COLUMNS)

    def test_train_then_model_roundtrip(self, train_server, noise):
        from repro import serialize
        from repro.service import TrainedModel

        server, service, training = train_server
        self._feed(server, noise)
        status, summary = _post(server, "/train", {"strategy": "byclass"})
        assert status == 200
        assert summary["strategy"] == "byclass"
        assert summary["n_train"] == 600
        assert summary["n_nodes"] >= 1
        _, payload = _get(server, "/model?strategy=byclass")
        model = serialize.from_jsonable(payload)
        assert isinstance(model, TrainedModel)
        assert model.tree.identical_to(training.model("byclass").tree)

    def test_train_default_strategy(self, train_server, noise):
        server, _, _ = train_server
        self._feed(server, noise)
        status, summary = _post(server, "/train", None)
        assert status == 200
        assert summary["strategy"] == "byclass"

    def test_model_before_training_is_404(self, train_server):
        server, _, _ = train_server
        code, payload = _error_of(lambda: _get(server, "/model"))
        assert code == 404
        assert "train" in payload["error"]

    def test_model_unknown_strategy_is_400(self, train_server):
        server, _, _ = train_server
        code, payload = _error_of(
            lambda: _get(server, "/model?strategy=byclas")
        )
        assert code == 400
        assert "byclas" in payload["error"]
        assert "byclass" in payload["error"]

    def test_train_without_data_is_400(self, train_server):
        server, _, _ = train_server
        code, payload = _error_of(
            lambda: _post(server, "/train", {"strategy": "byclass"})
        )
        assert code == 400
        assert "labeled" in payload["error"]

    def test_bad_strategy_is_400(self, train_server, noise):
        server, _, _ = train_server
        self._feed(server, noise)
        code, payload = _error_of(
            lambda: _post(server, "/train", {"strategy": "original"})
        )
        assert code == 400

    def test_training_ingest_is_all_or_nothing(self, train_server, noise):
        """A labeled body whose last frame is invalid absorbs nothing —
        neither shards nor the training buffer."""
        server, service, training = train_server
        good = encode_columns({"opinion": [0.4]}, classes=[0])
        bad = encode_columns({"opinion": [0.5]}, classes=[5])
        code, _ = _error_of(
            lambda: _post_raw(server, "/ingest", good + bad, CONTENT_TYPE_COLUMNS)
        )
        assert code == 400
        assert service.n_seen("opinion") == 0
        assert training.n_buffered == 0

    def test_train_endpoints_disabled_without_training(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/train", {"strategy": "byclass"})
        )
        assert code == 400
        assert "training" in payload["error"]
        code, payload = _error_of(lambda: _get(server, "/model"))
        assert code == 400


class TestMiningEndpoints:
    """Basket ingest negotiation, POST /mine, GET /rules."""

    KEEP_PROB = 0.9
    N_ITEMS = 6

    @pytest.fixture
    def mining_server(self, noise):
        from repro.mining import RandomizedResponse
        from repro.service import MiningService

        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
        )
        mining = MiningService(
            RandomizedResponse(keep_prob=self.KEEP_PROB),
            self.N_ITEMS,
            n_shards=2,
        )
        srv = ServiceHTTPServer(service, port=0, mining=mining)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, mining
        srv.shutdown()
        thread.join(timeout=5)

    def _disclosed(self, n=1_500):
        from repro.mining import RandomizedResponse, generate_baskets

        clean = generate_baskets(n, self.N_ITEMS, seed=21)
        response = RandomizedResponse(keep_prob=self.KEEP_PROB)
        return response.randomize(clean, seed=22)

    def test_basket_ingest_and_stats(self, mining_server):
        server, mining = mining_server
        disclosed = self._disclosed()
        body = encode_baskets(disclosed[:1000]) + encode_baskets(
            disclosed[1000:], shard=1
        )
        status, payload = _post_raw(server, "/ingest", body, CONTENT_TYPE_BASKETS)
        assert status == 200
        assert payload == {"ingested": 1500, "frames": 2, "baskets": 1500}
        assert mining.shards.shard(1).n_seen == 500
        _, stats = _get(server, "/stats")
        assert stats["mining"] == {
            "n_items": self.N_ITEMS,
            "keep_prob": self.KEEP_PROB,
            "max_size": 3,
            "n_shards": 2,
            "baskets": 1500,
        }

    def test_mine_then_rules_matches_offline(self, mining_server):
        from repro import serialize
        from repro.mining import MaskMiner, RandomizedResponse, association_rules

        server, mining = mining_server
        disclosed = self._disclosed()
        _post_raw(
            server, "/ingest", encode_baskets(disclosed), CONTENT_TYPE_BASKETS
        )
        status, summary = _post(
            server, "/mine", {"min_support": 0.15, "min_confidence": 0.4}
        )
        assert status == 200
        assert summary["n_baskets"] == 1500
        assert summary["min_support"] == 0.15
        assert summary["n_itemsets"] >= 1

        _, payload = _get(server, "/rules")
        result = serialize.from_jsonable(payload)
        response = RandomizedResponse(keep_prob=self.KEEP_PROB)
        expected_sets = MaskMiner(response).frequent_itemsets(disclosed, 0.15)
        assert result.itemsets == expected_sets  # bit-identical supports
        expected_rules = association_rules(expected_sets, 0.4)
        canonical = lambda r: (sorted(r.antecedent), sorted(r.consequent))  # noqa: E731
        assert sorted(result.rules, key=canonical) == sorted(
            expected_rules, key=canonical
        )
        assert len(result.rules) == summary["n_rules"]

    def test_rules_before_mine_is_404(self, mining_server):
        server, _ = mining_server
        code, payload = _error_of(lambda: _get(server, "/rules"))
        assert code == 404
        assert "mine" in payload["error"]

    def test_mine_before_ingest_is_400(self, mining_server):
        server, _ = mining_server
        code, payload = _error_of(
            lambda: _post(server, "/mine", {"min_support": 0.2, "min_confidence": 0.5})
        )
        assert code == 400
        assert "no baskets" in payload["error"]

    def test_bad_thresholds_are_400(self, mining_server):
        server, _ = mining_server
        for body in (
            {"min_support": "high", "min_confidence": 0.5},
            {"min_support": 0.2},
            {"min_confidence": 0.5},
            {"min_support": True, "min_confidence": 0.5},
            None,
        ):
            code, payload = _error_of(lambda: _post(server, "/mine", body))
            assert code == 400
            assert "min_" in payload["error"]

    def test_out_of_range_thresholds_are_400(self, mining_server):
        server, mining = mining_server
        _post_raw(
            server, "/ingest", encode_baskets(self._disclosed(50)),
            CONTENT_TYPE_BASKETS,
        )
        for support, confidence in ((0.0, 0.5), (1.5, 0.5), (0.2, -1.0)):
            code, _ = _error_of(
                lambda: _post(
                    server, "/mine",
                    {"min_support": support, "min_confidence": confidence},
                )
            )
            assert code == 400

    def test_mining_endpoints_disabled_without_mining(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/mine", {"min_support": 0.2, "min_confidence": 0.5})
        )
        assert code == 400
        assert "mining" in payload["error"]
        code, payload = _error_of(lambda: _get(server, "/rules"))
        assert code == 400
        assert "mining" in payload["error"]
        code, payload = _error_of(
            lambda: _post_raw(
                server, "/ingest",
                encode_baskets(np.eye(3, dtype=bool)), CONTENT_TYPE_BASKETS,
            )
        )
        assert code == 400
        assert "mining" in payload["error"]

    def test_failing_frame_aborts_whole_body(self, mining_server):
        """All-or-nothing, like the columnar wire: a bad frame anywhere
        means no basket of the body is counted."""
        server, mining = mining_server
        disclosed = self._disclosed(100)
        body = encode_baskets(disclosed) + encode_baskets(disclosed)[:-3]
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_BASKETS)
        )
        assert code == 400
        assert "truncated" in payload["error"]
        assert mining.n_seen == 0

    def test_bad_shard_pin_aborts_whole_body(self, mining_server):
        server, mining = mining_server
        disclosed = self._disclosed(40)
        body = encode_baskets(disclosed) + encode_baskets(disclosed, shard=7)
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_BASKETS)
        )
        assert code == 400
        assert "shard index" in payload["error"]
        assert mining.n_seen == 0

    def test_wrong_item_universe_is_400(self, mining_server):
        server, mining = mining_server
        body = encode_baskets(np.eye(4, dtype=bool))  # server mines 6 items
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", body, CONTENT_TYPE_BASKETS)
        )
        assert code == 400
        assert "universe" in payload["error"]
        assert mining.n_seen == 0

    def test_mixed_v1_and_v4_body_is_400_nothing_absorbed(self, mining_server):
        """A columnar record frame inside a basket body (and vice versa)
        is malformed — neither tier absorbs anything from it."""
        server, mining = mining_server
        mixed = encode_baskets(self._disclosed(20)) + encode_columns(
            {"opinion": [0.5]}
        )
        code, payload = _error_of(
            lambda: _post_raw(server, "/ingest", mixed, CONTENT_TYPE_BASKETS)
        )
        assert code == 400
        assert "version" in payload["error"]
        assert mining.n_seen == 0
        # the symmetric half: a v4 frame under the columnar content type
        code, payload = _error_of(
            lambda: _post_raw(
                server, "/ingest",
                encode_baskets(self._disclosed(5)), CONTENT_TYPE_COLUMNS,
            )
        )
        assert code == 400
        assert "version" in payload["error"]
        assert server.service.n_seen("opinion") == 0

    def test_basket_ingest_keeps_connection_alive(self, mining_server):
        server, mining = mining_server
        disclosed = self._disclosed(300)
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            sockets = set()
            for chunk in np.array_split(np.arange(300), 3):
                conn.request(
                    "POST", "/ingest", body=encode_baskets(disclosed[chunk]),
                    headers={"Content-Type": CONTENT_TYPE_BASKETS},
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                sockets.add(id(conn.sock))
            assert len(sockets) == 1  # never re-dialed
            conn.request(
                "POST", "/mine",
                body=json.dumps(
                    {"min_support": 0.15, "min_confidence": 0.4}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            assert json.loads(conn.getresponse().read())["n_baskets"] == 300
        finally:
            conn.close()


class TestBasketHTTPFuzz:
    """Fuzzed basket bodies over a keep-alive connection: always a clean
    4xx, nothing absorbed, the connection stays usable — the v4 twin of
    TestHTTPRobustnessFuzz."""

    BASE_SEED = 424_244

    def _bodies(self, rng):
        matrix = np.array(
            [[(r * c) % 3 == 0 for c in range(1, 7)] for r in range(1, 9)]
        )
        single = encode_baskets(matrix)
        multi = encode_baskets(matrix, shard=0) + encode_baskets(matrix, shard=1)
        mixed = single + encode_columns({"opinion": [0.5]})
        bodies = [mixed, b"", b"PPDM"]
        for _ in range(12):
            base = bytearray(rng.choice((single, multi)))
            action = rng.random()
            if action < 0.45:
                base = base[: rng.randrange(1, len(base))]
            elif action < 0.9:
                for _ in range(rng.randint(1, 3)):
                    base[rng.randrange(len(base))] = rng.randrange(256)
            else:
                base = base + bytes(rng.randrange(1, 9))
            bodies.append(bytes(base))
        return bodies

    def test_fuzzed_basket_bodies_leave_connection_usable(self, noise):
        import random

        from repro.mining import RandomizedResponse
        from repro.service import MiningService

        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
        )
        mining = MiningService(RandomizedResponse(keep_prob=0.9), 6, n_shards=2)
        srv = ServiceHTTPServer(service, port=0, mining=mining)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        rng = random.Random(self.BASE_SEED)
        host, port = srv.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for index, body in enumerate(self._bodies(rng)):
                before = mining.n_seen
                conn.request(
                    "POST", "/ingest", body=body,
                    headers={"Content-Type": CONTENT_TYPE_BASKETS},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status in (200, 400), (
                    f"body {index} (seed {self.BASE_SEED}) gave "
                    f"{response.status}"
                )
                if response.status != 200:
                    assert "error" in payload
                    # a rejected body absorbs nothing (all-or-nothing)
                    assert mining.n_seen == before
                # the record tier never sees basket bodies
                assert service.n_seen("opinion") == 0
                # same connection still serves the next request
                conn.request("GET", "/healthz")
                health = conn.getresponse()
                assert health.status == 200
                json.loads(health.read())
        finally:
            conn.close()
            srv.shutdown()
            thread.join(timeout=5)


class TestHTTPRobustnessFuzz:
    """Malformed/truncated/corrupted bodies: always a clean 4xx, the
    connection stays usable, and nothing is partially absorbed."""

    BASE_SEED = 424_242

    def _bodies(self, rng):
        valid = encode_columns({"opinion": [0.4, 0.5]}) + encode_columns(
            {"opinion": [0.6]}, shard=1
        )
        labeled = encode_columns({"opinion": [0.4, 0.5]}, classes=[0, 1])
        bodies = []
        for _ in range(12):
            base = bytearray(rng.choice((valid, labeled)))
            action = rng.random()
            if action < 0.45:
                base = base[: rng.randrange(1, len(base))]
            elif action < 0.9:
                for _ in range(rng.randint(1, 3)):
                    base[rng.randrange(len(base))] = rng.randrange(256)
            else:
                base = base + bytes(rng.randrange(1, 9))
            bodies.append(bytes(base))
        return bodies

    def test_fuzzed_columnar_bodies_leave_connection_usable(self, noise):
        import random

        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
            n_shards=2,
            classes=2,
        )
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        rng = random.Random(self.BASE_SEED)
        host, port = srv.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for index, body in enumerate(self._bodies(rng)):
                before = service.n_seen("opinion")
                conn.request(
                    "POST", "/ingest", body=body,
                    headers={"Content-Type": CONTENT_TYPE_COLUMNS},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status in (200, 400), (
                    f"body {index} (seed {self.BASE_SEED}) gave "
                    f"{response.status}"
                )
                if response.status != 200:
                    assert "error" in payload
                    # a rejected body absorbs nothing (all-or-nothing)
                    assert service.n_seen("opinion") == before
                # same connection still serves the next request
                conn.request("GET", "/healthz")
                health = conn.getresponse()
                assert health.status == 200
                json.loads(health.read())
        finally:
            conn.close()
            srv.shutdown()
            thread.join(timeout=5)

    def test_oversized_body_is_413_before_reading(self, service):
        srv = ServiceHTTPServer(service, port=0, max_body_bytes=1_000)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = encode_columns({"opinion": np.zeros(10_000)})
            conn.request(
                "POST", "/ingest", body=body,
                headers={"Content-Type": CONTENT_TYPE_COLUMNS},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 413
            assert "cap" in payload["error"]
            assert response.getheader("Connection") == "close"
            assert service.n_seen("opinion") == 0
        finally:
            conn.close()
            srv.shutdown()
            thread.join(timeout=5)

    def test_malformed_content_length_is_400_not_crash(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Content-Length", "banana")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "Content-Length" in payload["error"]
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_negative_content_length_is_400(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Content-Length", "-5")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()


class TestTransferEncoding:
    def test_chunked_request_rejected_and_connection_closed(self, server):
        """Only Content-Length bodies are read; chunked bytes left on a
        keep-alive socket would desync every later request."""
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 501
            assert "Transfer-Encoding" in payload["error"]
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()


class TestThreadReaping:
    def test_finished_handler_threads_are_reaped(self, server):
        for _ in range(5):
            _get(server, "/healthz")
        # every urllib request closed its connection, so the handler
        # threads are finished; the reaper must drop them from the
        # join-on-close list (only the in-flight ones may remain)
        server.reap_handler_threads()
        threads = getattr(server._httpd, "_threads", None)
        assert threads is not None
        assert sum(1 for t in threads if not t.is_alive()) == 0

    def test_reap_returns_zero_when_nothing_to_do(self, server):
        server.reap_handler_threads()
        assert server.reap_handler_threads() == 0


class TestErrors:
    def test_unknown_route_404(self, server):
        code, payload = _error_of(lambda: _get(server, "/nope"))
        assert code == 404
        assert "unknown route" in payload["error"]

    def test_estimate_needs_attribute(self, server):
        code, payload = _error_of(lambda: _get(server, "/estimate"))
        assert code == 400
        assert "attribute" in payload["error"]

    def test_estimate_unknown_attribute(self, server):
        code, payload = _error_of(
            lambda: _get(server, "/estimate?attribute=nope")
        )
        assert code == 400

    def test_estimate_before_data(self, server):
        code, payload = _error_of(
            lambda: _get(server, "/estimate?attribute=opinion")
        )
        assert code == 400
        assert "ingest" in payload["error"]

    def test_ingest_requires_batch_key(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/ingest", {"opinion": [0.5]})
        )
        assert code == 400

    def test_ingest_rejects_non_json(self, server):
        request = urllib.request.Request(
            server.url + "/ingest", data=b"not json{", method="POST"
        )
        code, payload = _error_of(lambda: urllib.request.urlopen(request))
        assert code == 400
        assert "JSON" in payload["error"]

    def test_ingest_unknown_attribute(self, server):
        code, payload = _error_of(
            lambda: _post(server, "/ingest", {"batch": {"nope": [0.5]}})
        )
        assert code == 400
        assert "unknown attribute" in payload["error"]

    def test_ingest_non_integer_shard(self, server):
        code, payload = _error_of(
            lambda: _post(
                server, "/ingest",
                {"batch": {"opinion": [0.5]}, "shard": {"i": 0}},
            )
        )
        assert code == 400
        assert "shard" in payload["error"]

    def test_snapshot_without_path_400(self, service):
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            code, payload = _error_of(lambda: _post(srv, "/snapshot", None))
            assert code == 400
        finally:
            srv.shutdown()
            thread.join(timeout=5)


class TestMaxRequests:
    def test_serves_exactly_n_requests(self, service):
        srv = ServiceHTTPServer(service, port=0)
        thread = threading.Thread(
            target=srv.serve_forever, kwargs={"max_requests": 2}, daemon=True
        )
        thread.start()
        assert _get(srv, "/healthz")[0] == 200
        assert _get(srv, "/healthz")[0] == 200
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert srv.requests_served == 2
