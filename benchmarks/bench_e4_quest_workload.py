"""E4 — The Quest workload tables (paper §5 setup).

Regenerates the paper's attribute-description table and the class balance
of each classification function, and times the generator itself (the
substrate every classification experiment rests on).
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.datasets import quest
from repro.experiments import format_table


@experiment(
    "e4",
    title="Quest workload: attribute domains and class balance",
    tags=("quest", "datasets", "smoke"),
    seed=400,
)
def run_e4(ctx):
    n = ctx.scaled(50_000)
    ctx.record(n=n, functions=len(quest.FUNCTION_IDS))
    tables = {
        fn: quest.generate(n, function=fn, seed=ctx.seed + fn)
        for fn in quest.FUNCTION_IDS
    }

    attr_rows = [
        (
            a.name,
            f"{a.low:g}",
            f"{a.high:g}",
            "discrete" if a.discrete else "continuous",
        )
        for a in quest.ATTRIBUTES
    ]
    attr_table = format_table(
        ("attribute", "low", "high", "kind"),
        attr_rows,
        title="E4a: Quest attribute domains",
    )

    balance_rows = [
        (
            f"Fn{fn}",
            ", ".join(quest.FUNCTION_INPUTS[fn]),
            f"{100 * tables[fn].labels.mean():.1f}",
        )
        for fn in quest.FUNCTION_IDS
    ]
    balance_table = format_table(
        ("function", "inputs", "Group A %"),
        balance_rows,
        title=f"E4b: class balance on {n} records",
    )
    ctx.report(attr_table + "\n\n" + balance_table, name="e4_quest_workload")

    metrics = {
        f"fn{fn}_group_a_fraction": float(tables[fn].labels.mean())
        for fn in quest.FUNCTION_IDS
    }
    # analytic check: Fn1's Group A is age<40 or age>=60 => 2/3
    assert abs(metrics["fn1_group_a_fraction"] - 2 / 3) < 0.02
    # every function is non-degenerate
    for fn in quest.FUNCTION_IDS:
        assert 0.2 < metrics[f"fn{fn}_group_a_fraction"] < 0.8
    return metrics


def test_e4_quest_workload(benchmark):
    run_experiment(benchmark, "e4")
