"""Experiment harness regenerating the paper's tables and figures.

Each experiment in DESIGN.md's index (E1–E12) is a thin benchmark wrapper
around a runner in this package:

* :mod:`repro.experiments.reconstruction` — E1–E3, E10 (distribution
  reconstruction quality),
* :mod:`repro.experiments.classification` — E5–E8, E11 (decision-tree
  accuracy across strategies, privacy levels, noise kinds, sizes),
* :mod:`repro.experiments.reporting` — ASCII rendering of result rows,
* :mod:`repro.experiments.config` — shared configuration dataclasses and
  the ``PPDM_BENCH_SCALE`` scaling hook.
"""

from repro.experiments.config import (
    ClassificationConfig,
    ReconstructionConfig,
    bench_scale,
)
from repro.experiments.classification import (
    run_privacy_sweep,
    run_strategy_comparison,
    run_training_size_sweep,
)
from repro.experiments.reconstruction import run_reconstruction
from repro.experiments.reporting import format_table

__all__ = [
    "ReconstructionConfig",
    "ClassificationConfig",
    "bench_scale",
    "run_reconstruction",
    "run_strategy_comparison",
    "run_privacy_sweep",
    "run_training_size_sweep",
    "format_table",
]
