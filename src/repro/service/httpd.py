"""A small JSON-over-HTTP front end for :class:`AggregationService`.

Standard-library only (``http.server``): one ``ppdm serve`` process is a
complete collection endpoint — providers POST randomized disclosures,
analysts GET reconstructed distributions — with the sharded service
behind it.  The threading server gives each request its own handler
thread; ingestion is shard-parallel by construction and estimation is
serialized by the service itself.

Endpoints (all JSON):

=========================  ==================================================
``GET /healthz``           liveness + total records absorbed
``GET /attributes``        the collected schema (domain, grid, noise)
``GET /stats``             per-attribute record counts, shard and cache stats
``GET /estimate?attribute=NAME``  reconstructed distribution for ``NAME``
``POST /ingest``           body ``{"batch": {name: [values...]}, "shard": i?}``
``POST /snapshot``         persist to the configured snapshot path
=========================  ==================================================

Errors return ``{"error": message}`` with status 400 (validation) or
404 (unknown route/attribute-less estimate).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.privacy import privacy_of_randomizer
from repro.exceptions import ValidationError

__all__ = ["ServiceHTTPServer"]


class ServiceHTTPServer:
    """Serve an :class:`~repro.service.AggregationService` over HTTP.

    Parameters
    ----------
    service:
        The aggregation service to expose.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address`).
    snapshot_path:
        Where ``POST /snapshot`` persists the service; ``None`` disables
        the endpoint (400).
    """

    def __init__(
        self, service, host: str = "127.0.0.1", port: int = 0, *,
        snapshot_path=None,
    ) -> None:
        self.service = service
        self.snapshot_path = snapshot_path
        self._requests_served = 0
        self._served_lock = threading.Lock()
        self._snapshot_lock = threading.Lock()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # Track handler threads (ThreadingHTTPServer defaults to
        # untracked daemons): server_close() then joins in-flight
        # requests, so max_requests mode and process exit can never kill
        # a response — or a snapshot write — midway.
        self._httpd.daemon_threads = False

    @property
    def address(self) -> tuple:
        """Actual ``(host, port)`` the server is bound to."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def requests_served(self) -> int:
        return self._requests_served

    def serve_forever(self, *, max_requests: int = None) -> None:
        """Handle requests until :meth:`shutdown` (or ``max_requests``).

        With ``max_requests`` the server accepts exactly that many
        connections (one request each — HTTP/1.0), then joins the
        handler threads and closes the socket itself; do not also call
        :meth:`shutdown` in that mode.
        """
        if max_requests is None:
            # a tight poll keeps shutdown() latency low (the default
            # 0.5 s poll makes every stop feel sluggish)
            self._httpd.serve_forever(poll_interval=0.05)
        else:
            for _ in range(max_requests):
                self._httpd.handle_request()
            # joins the per-request handler threads before returning
            self._httpd.server_close()

    def shutdown(self) -> None:
        """Stop a concurrent :meth:`serve_forever` and close the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()

    def persist(self) -> str:
        """Save the service to the configured snapshot path (serialized).

        The single snapshot-write entry point: ``POST /snapshot`` and the
        CLI's exit-time save both come through here, so two writers can
        never interleave on the same snapshot file.
        """
        if self.snapshot_path is None:
            raise ValidationError("server started without a snapshot path")
        with self._snapshot_lock:
            self.service.save(self.snapshot_path)
        return str(self.snapshot_path)

    # ------------------------------------------------------------------
    # Route implementations (handler threads call into these)
    # ------------------------------------------------------------------
    def handle_get(self, path: str, query: dict) -> tuple:
        service = self.service
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "records": sum(service.n_seen().values()),
            }
        if path == "/attributes":
            return 200, {
                "attributes": [
                    {
                        "name": name,
                        "low": service.spec(name).x_partition.low,
                        "high": service.spec(name).x_partition.high,
                        "n_intervals": service.spec(name).x_partition.n_intervals,
                        "noise": service.spec(name).randomizer.name,
                        "privacy": privacy_of_randomizer(
                            service.spec(name).randomizer,
                            service.spec(name).x_partition.span,
                        ),
                    }
                    for name in service.attributes
                ]
            }
        if path == "/stats":
            cache = service.engine.kernel_cache
            return 200, {
                "n_shards": service.n_shards,
                "records": service.n_seen(),
                "kernel_cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "size": len(cache),
                },
            }
        if path == "/estimate":
            names = query.get("attribute")
            if not names:
                return 400, {"error": "missing ?attribute=NAME"}
            name = names[0]
            # warn=False: the cap-hit is reported as converged=false in
            # the payload, and toggling the (process-global) warning
            # filter from handler threads would race other requests.
            result = service.estimate(name, warn=False)
            return 200, {
                "attribute": name,
                "edges": service.spec(name).x_partition.edges.tolist(),
                "probs": result.distribution.probs.tolist(),
                "n_iterations": result.n_iterations,
                "converged": result.converged,
                "chi2_statistic": _finite_or_none(result.chi2_statistic),
                "chi2_threshold": _finite_or_none(result.chi2_threshold),
                "n_seen": service.n_seen(name),
            }
        return 404, {"error": f"unknown route {path!r}"}

    def handle_post(self, path: str, payload) -> tuple:
        if path == "/ingest":
            if not isinstance(payload, dict) or "batch" not in payload:
                return 400, {"error": 'body must be {"batch": {name: [values]}}'}
            batch = payload["batch"]
            if not isinstance(batch, dict):
                return 400, {"error": "'batch' must map attribute -> values"}
            shard = payload.get("shard")
            ingested = self.service.ingest(
                batch, shard=None if shard is None else int(shard)
            )
            return 200, {
                "ingested": ingested,
                "records": sum(self.service.n_seen().values()),
            }
        if path == "/snapshot":
            return 200, {"saved": self.persist()}
        return 404, {"error": f"unknown route {path!r}"}


def _finite_or_none(value: float):
    """NaN has no JSON spelling; estimates without a chi2 pass send null."""
    return float(value) if value == value else None


def _make_handler(server: ServiceHTTPServer):
    class Handler(BaseHTTPRequestHandler):
        # one service request per TCP request keeps max_requests exact
        protocol_version = "HTTP/1.0"

        def log_message(self, *args) -> None:  # quiet by default
            pass

        def _reply(self, status: int, payload: dict) -> None:
            # Count before replying: a client that already holds its
            # response must observe requests_served as including it,
            # whatever the handler thread's scheduling after the socket
            # write (threads are only joined at server close).
            with server._served_lock:
                server._requests_served += 1
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            try:
                status, payload = server.handle_get(
                    parsed.path, parse_qs(parsed.query)
                )
            except ValidationError as exc:
                status, payload = 400, {"error": str(exc)}
            self._reply(status, payload)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._reply(400, {"error": "body is not valid JSON"})
                return
            try:
                status, out = server.handle_post(urlparse(self.path).path, payload)
            except (ValidationError, ValueError) as exc:
                status, out = 400, {"error": str(exc)}
            self._reply(status, out)

    return Handler
