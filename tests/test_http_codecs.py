"""HTTP codec negotiation and compressed-body robustness.

The wire v5 surface as seen from the socket: ``Content-Encoding``
negotiation (415 before a body byte is absorbed), bounded
decompression (bombs -> 413, truncation/corruption -> 400), the
canonical-digits ``Content-Length`` rule, and quantized v5 ingest
parity — all while keep-alive connections stay usable and rejected
bodies absorb nothing.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import zlib

import numpy as np
import pytest

from repro.core import Partition, UniformRandomizer
from repro.service import AggregationService, AttributeSpec, ServiceHTTPServer
from repro.service.wire import (
    CONTENT_TYPE_COLUMNS,
    encode_columns,
    encode_quantized,
    supported_codecs,
)


@pytest.fixture
def noise():
    return UniformRandomizer(half_width=0.2)


@pytest.fixture
def service(noise):
    return AggregationService(
        [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
        n_shards=2,
    )


@pytest.fixture
def server(service):
    srv = ServiceHTTPServer(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=5)


def _post_encoded(server, body, *, encoding=None, path="/ingest",
                  content_type=CONTENT_TYPE_COLUMNS):
    """POST over a dedicated connection; return (status, payload, headers)."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        headers = {"Content-Type": content_type}
        if encoding is not None:
            headers["Content-Encoding"] = encoding
        conn.request("POST", path, body=body, headers=headers)
        response = conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, dict(response.getheaders())
    finally:
        conn.close()


class TestCodecNegotiation:
    def test_zlib_body_ingests_and_matches_identity(self, server, service):
        body = encode_columns({"opinion": [0.4, 0.5, 0.6]})
        status, payload, _ = _post_encoded(
            server, zlib.compress(body), encoding="zlib"
        )
        assert status == 200
        assert payload == {"ingested": 3, "records": 3, "frames": 1}
        # the identity body lands in the same accumulators
        status, payload, _ = _post_encoded(server, body)
        assert status == 200
        assert payload["records"] == 6

    def test_deflate_alias_and_case_insensitivity(self, server):
        body = encode_columns({"opinion": [0.4]})
        for token in ("deflate", "ZLIB", " zlib "):
            status, _, _ = _post_encoded(
                server, zlib.compress(body), encoding=token
            )
            assert status == 200

    def test_explicit_identity_token_accepted(self, server):
        body = encode_columns({"opinion": [0.4]})
        status, _, _ = _post_encoded(server, body, encoding="identity")
        assert status == 200

    def test_unknown_encoding_is_415_with_supported_list(self, server, service):
        status, payload, headers = _post_encoded(
            server, b"anything", encoding="br"
        )
        assert status == 415
        assert "'br'" in payload["error"]
        for codec in supported_codecs():
            assert codec in payload["error"]
        assert headers.get("Connection") == "close"
        assert service.n_seen("opinion") == 0

    def test_415_answers_before_reading_the_body(self, server):
        """A huge declared body with an undecodable codec is refused from
        the headers alone — the server must not wait for (or read) the
        bytes it can never decode."""
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /ingest HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/x-ppdm-columns\r\n"
                b"Content-Encoding: br\r\n"
                b"Content-Length: 1000000000\r\n"
                b"\r\n"
            )  # no body follows; a server reading it would block
            sock.settimeout(10)
            head = sock.recv(4096)
        assert head.startswith(b"HTTP/1.1 415")

    def test_multiple_encodings_rejected(self, server):
        status, _, _ = _post_encoded(
            server, b"anything", encoding="zlib, br"
        )
        assert status == 415


class TestCompressedBodyFuzz:
    """Compressed-body failure modes: clean 4xx, keep-alive usable,
    nothing absorbed."""

    def _roundtrip_health(self, conn):
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.status == 200
        json.loads(response.read())

    def test_corrupt_zlib_is_400_and_connection_survives(self, server, service):
        wire = bytearray(zlib.compress(encode_columns({"opinion": [0.5]})))
        wire[len(wire) // 2] ^= 0xFF
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/ingest", body=bytes(wire),
                headers={"Content-Type": CONTENT_TYPE_COLUMNS,
                         "Content-Encoding": "zlib"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "zlib" in payload["error"]
            assert service.n_seen("opinion") == 0
            self._roundtrip_health(conn)
        finally:
            conn.close()

    def test_truncated_zlib_is_400_nothing_absorbed(self, server, service):
        wire = zlib.compress(encode_columns({"opinion": np.zeros(500)}))
        status, payload, _ = _post_encoded(server, wire[:-6], encoding="zlib")
        assert status == 400
        assert "truncated" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_zlib_bomb_is_413_and_connection_survives(self, noise):
        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
            n_shards=2,
        )
        srv = ServiceHTTPServer(service, port=0, max_body_bytes=65_536)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            bomb = zlib.compress(bytes(50_000_000))
            assert len(bomb) < 65_536  # fits the raw cap, explodes decoded
            conn.request(
                "POST", "/ingest", body=bomb,
                headers={"Content-Type": CONTENT_TYPE_COLUMNS,
                         "Content-Encoding": "zlib"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 413
            assert "cap" in payload["error"]
            assert service.n_seen("opinion") == 0
            # the wire body was fully read, so keep-alive stays in sync
            self._roundtrip_health(conn)
        finally:
            conn.close()
            srv.shutdown()
            thread.join(timeout=5)

    def test_corrupt_frame_inside_valid_zlib_is_all_or_nothing(
        self, server, service
    ):
        good = encode_columns({"opinion": [0.4, 0.5]})
        bad = bytearray(encode_columns({"opinion": [0.6]}))
        bad[4] = 0x7F  # unsupported version in the second frame
        wire = zlib.compress(good + bytes(bad))
        status, _, _ = _post_encoded(server, wire, encoding="zlib")
        assert status == 400
        assert service.n_seen("opinion") == 0

    def test_mixed_version_frames_in_one_compressed_body(self, server, service):
        body = encode_columns({"opinion": [0.4]}) + encode_quantized(
            {"opinion": np.linspace(0.1, 0.9, 5)}
        )
        status, payload, _ = _post_encoded(
            server, zlib.compress(body), encoding="zlib"
        )
        assert status == 200
        assert payload["frames"] == 2
        assert service.n_seen("opinion") == 6

    def test_compressed_corruption_fuzz(self, server, service):
        import random

        rng = random.Random(161_803)
        body = encode_columns({"opinion": np.linspace(0.1, 0.9, 64)})
        wire = zlib.compress(body)
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        absorbed = 0
        try:
            for case in range(25):
                mutated = bytearray(wire)
                for _ in range(rng.randint(1, 3)):
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
                before = service.n_seen("opinion")
                conn.request(
                    "POST", "/ingest", body=bytes(mutated),
                    headers={"Content-Type": CONTENT_TYPE_COLUMNS,
                             "Content-Encoding": "zlib"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status in (200, 400, 413), (
                    f"case {case} gave {response.status}"
                )
                if response.status == 200:
                    absorbed += payload["ingested"]
                else:
                    assert "error" in payload
                    assert service.n_seen("opinion") == before
                self._roundtrip_health(conn)
        finally:
            conn.close()
        assert service.n_seen("opinion") == absorbed


class TestContentLengthStrictness:
    """Content-Length must be canonical ASCII digits; anything Python's
    int() merely tolerates ("1_000", "+5", trailing space) is a 400."""

    BAD_VALUES = ["1_000", "+5", "5 ", "0x10", "2e3", "٥"]

    def _raw_request(self, server, content_length):
        host, port = server.address
        head = (
            "POST /ingest HTTP/1.1\r\n"
            "Host: test\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {content_length}\r\n"
            "\r\n"
        ).encode("utf-8")
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(head)
            sock.settimeout(10)
            chunks = []
            while True:
                try:
                    chunk = sock.recv(4096)
                except TimeoutError:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_noncanonical_content_length_is_400(self, server, service, value):
        reply = self._raw_request(server, value)
        assert reply.startswith(b"HTTP/1.1 400"), reply[:80]
        assert b"Content-Length" in reply
        assert service.n_seen("opinion") == 0

    def test_canonical_zero_still_accepted_on_post(self, server):
        reply = self._raw_request(server, "0")
        # an empty JSON body is a 400 from the handler, not a framing 400
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"batch" in reply
        assert b"canonical" not in reply


class TestQuantizedIngest:
    def test_quantized_estimate_matches_float_ingest(self, noise):
        """int8 bin indices land in the same accumulators as the raw
        float column — estimates are bit-identical."""
        rng = np.random.default_rng(11)
        disclosed = noise.randomize(rng.uniform(0.2, 0.8, 3_000), seed=3)

        def build():
            return AggregationService(
                [AttributeSpec("opinion", Partition.uniform(-1, 2, 30), noise)],
                n_shards=2,
            )

        float_service = build()
        float_service.ingest({"opinion": disclosed})
        expected = float_service.estimate("opinion")

        quant_service = build()
        srv = ServiceHTTPServer(quant_service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            indices = quant_service.quantize({"opinion": disclosed})
            assert indices["opinion"].dtype == np.dtype("int8")
            body = encode_quantized(indices)
            assert len(body) < disclosed.size * 8 // 4  # ~1/8th the bytes
            status, payload, _ = _post_encoded(srv, body)
            assert status == 200
            assert payload["ingested"] == 3_000
        finally:
            srv.shutdown()
            thread.join(timeout=5)
        got = quant_service.estimate("opinion")
        assert np.array_equal(
            got.distribution.probs, expected.distribution.probs
        )
        assert got.n_iterations == expected.n_iterations

    def test_out_of_grid_indices_rejected_all_or_nothing(self, server, service):
        # the layout grid is noise-expanded past the attribute's 10 bins,
        # but nowhere near 120 intervals
        body = encode_quantized({"opinion": np.array([0, 120], dtype=np.int8)})
        status, payload, _ = _post_encoded(server, body)
        assert status == 400
        assert "bin indices" in payload["error"]
        assert service.n_seen("opinion") == 0

    def test_quantized_rejected_when_training_is_enabled(self, noise):
        from repro.service import TrainingService

        service = AggregationService(
            [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
            classes=2,
        )
        srv = ServiceHTTPServer(
            service, port=0, training=TrainingService(service)
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            body = encode_quantized(
                {"opinion": np.array([1, 2], dtype=np.int8)}, classes=[0, 1]
            )
            status, payload, _ = _post_encoded(srv, body)
            assert status == 400
            assert "training" in payload["error"]
            assert service.n_seen("opinion") == 0
            # unlabeled quantized frames skip the training tier and pass
            body = encode_quantized({"opinion": np.array([1], dtype=np.int8)})
            status, _, _ = _post_encoded(srv, body)
            assert status == 200
        finally:
            srv.shutdown()
            thread.join(timeout=5)
