"""Gap-filling tests: small behaviours not covered elsewhere.

Each test here pins a contract a downstream user could reasonably rely
on but that the module-focused files did not exercise directly.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    HistogramDistribution,
    NullRandomizer,
    Partition,
    UniformRandomizer,
)
from repro.exceptions import ValidationError
from repro.experiments import ReconstructionConfig, run_reconstruction
from repro.serialize import FORMAT_VERSION, to_jsonable
from repro.tree import PrivacyPreservingClassifier

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


class TestSerializationFormat:
    def test_version_embedded(self, unit_partition):
        payload = to_jsonable(unit_partition)
        assert payload["version"] == FORMAT_VERSION

    def test_payload_survives_json_text_roundtrip(self, unit_partition):
        dist = HistogramDistribution.uniform(unit_partition)
        text = json.dumps(to_jsonable(dist))
        restored = json.loads(text)
        assert restored["kind"] == "histogram"
        assert len(restored["probs"]) == 10


class TestHistogramEdges:
    def test_sample_zero(self, unit_partition):
        dist = HistogramDistribution.uniform(unit_partition)
        assert dist.sample(0, seed=1).size == 0

    def test_integer_counts_zero(self, unit_partition):
        dist = HistogramDistribution.uniform(unit_partition)
        assert dist.integer_counts(0).sum() == 0

    def test_single_interval_distribution(self):
        part = Partition.uniform(0, 1, 1)
        dist = HistogramDistribution(part, [1.0])
        assert dist.mean() == pytest.approx(0.5)
        assert dist.cdf()[-1] == pytest.approx(1.0)


class TestCliErrors:
    def test_reconstruct_gaussian_path(self, capsys):
        code = main(
            ["reconstruct", "--noise", "gaussian", "--n", "600",
             "--intervals", "6", "--seed", "2"]
        )
        assert code == 0
        assert "reconstructed" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_bad_noise_choice_exits(self):
        with pytest.raises(SystemExit):
            main(["reconstruct", "--noise", "laplace"])


class TestReconstructionRunnerEdges:
    def test_small_sample_still_valid(self):
        outcome = run_reconstruction(
            ReconstructionConfig(n=50, n_intervals=8, seed=3)
        )
        assert outcome.reconstructed_probs.sum() == pytest.approx(1.0)

    def test_high_privacy_configuration(self):
        outcome = run_reconstruction(
            ReconstructionConfig(n=3_000, privacy=2.0, seed=4)
        )
        # extreme noise: reconstruction still improves on the raw series
        assert outcome.l1_reconstructed < outcome.l1_randomized


class TestPipelineEdges:
    def test_two_record_table(self):
        from repro.datasets.schema import Attribute, Table

        table = Table(
            {"a": [0.1, 0.9]},
            [0, 1],
            (Attribute("a", 0, 1),),
        )
        clf = PrivacyPreservingClassifier(
            "original", min_records_split=2
        ).fit(table)
        assert clf.predict(table).shape == (2,)

    def test_single_class_training(self):
        from repro.datasets.schema import Attribute, Table

        table = Table(
            {"a": np.linspace(0, 1, 50)},
            np.zeros(50, dtype=int),
            (Attribute("a", 0, 1),),
        )
        clf = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=5).fit(table)
        assert np.all(clf.predict(table) == 0)

    def test_null_randomizer_in_pipeline_path(self):
        """NullRandomizer behaves as a no-op disclosure."""
        x = np.linspace(0, 1, 20)
        np.testing.assert_array_equal(NullRandomizer().randomize(x), x)

    def test_min_records_split_below_two_rejected(self):
        from repro.tree import DecisionTreeClassifier

        with pytest.raises(ValidationError):
            DecisionTreeClassifier(
                [Partition.uniform(0, 1, 4)], min_records_split=0
            )


class TestPartitionNumericEdges:
    def test_locate_near_float_boundary(self):
        # use a grid whose edges are exactly representable (quarters)
        part = Partition.uniform(0, 1, 4)
        below = np.nextafter(0.25, 0)
        assert part.locate([below])[0] == 0
        assert part.locate([0.25])[0] == 1

    def test_expanded_partition_locates_original_values_consistently(self):
        part = Partition.uniform(0, 1, 10)
        expanded = part.expanded(0.25)
        values = np.linspace(0.001, 0.999, 97)
        offset = expanded.locate([part.low + 1e-12])[0]
        np.testing.assert_array_equal(
            expanded.locate(values) - offset, part.locate(values)
        )

    def test_reconstruction_with_noise_narrower_than_interval(self):
        """Noise much narrower than the grid degenerates gracefully."""
        from repro.core import BayesReconstructor

        part = Partition.uniform(0, 1, 5)
        noise = UniformRandomizer(half_width=0.001)
        x = np.full(400, 0.31)
        result = BayesReconstructor().reconstruct(
            noise.randomize(x, seed=6), part, noise
        )
        assert result.distribution.probs[1] > 0.9
