"""Tests for decision-tree training over the service (repro.service.training).

The load-bearing assertions are the parity tests: a tree grown from the
service's class-conditional aggregates must be **bit-identical** — same
splits, same thresholds, same leaf counts — to the offline
``PrivacyPreservingClassifier`` pipeline fed the same randomized rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Partition, UniformRandomizer
from repro.datasets import quest
from repro.exceptions import ValidationError
from repro.service import (
    AggregationService,
    AttributeSpec,
    TrainedModel,
    TrainingService,
)
from repro.tree.pipeline import PrivacyPreservingClassifier

N_INTERVALS = 25


@pytest.fixture(scope="module")
def workload():
    """A Quest training table, its randomization, and matching specs."""
    train = quest.generate(2_500, function=2, seed=17)
    randomized, randomizers = quest.randomize(
        train, kind="uniform", privacy=1.0, seed=18
    )
    specs = [
        AttributeSpec(
            name,
            train.attribute(name).partition(N_INTERVALS),
            randomizers[name],
        )
        for name in train.attribute_names
    ]
    return train, randomized, randomizers, specs


def _stream_in(training, train, randomized, *, batch_size=301, shards=False):
    """Ingest the randomized rows in table order (split into batches)."""
    names = train.attribute_names
    w = randomized.matrix()
    labels = train.labels
    for index, lo in enumerate(range(0, labels.size, batch_size)):
        sl = slice(lo, lo + batch_size)
        batch = {name: w[sl, j] for j, name in enumerate(names)}
        shard = index % training.service.n_shards if shards else None
        training.ingest(batch, labels[sl], shard=shard)


def _offline(strategy, train, randomized, randomizers):
    classifier = PrivacyPreservingClassifier(
        strategy, noise="uniform", privacy=1.0, n_intervals=N_INTERVALS, seed=3
    )
    classifier.fit(train, randomized_table=randomized, randomizers=randomizers)
    return classifier


class TestOfflinePipelineParity:
    """The tentpole acceptance criterion."""

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_byclass_bit_identical(self, workload, n_shards):
        train, randomized, randomizers, specs = workload
        service = AggregationService(specs, n_shards=n_shards, classes=2)
        training = TrainingService(service)
        _stream_in(training, train, randomized, shards=n_shards > 1)
        model = training.train("byclass")
        offline = _offline("byclass", train, randomized, randomizers)
        assert model.tree.identical_to(offline.tree_)
        assert model.n_train == train.n_records
        # identical trees classify identically
        test = quest.generate(800, function=2, seed=19)
        assert model.tree.score(test.matrix(), test.labels) == offline.score(test)

    @pytest.mark.parametrize("strategy", ["global", "local"])
    def test_other_strategies_bit_identical(self, workload, strategy):
        train, randomized, randomizers, specs = workload
        service = AggregationService(specs, n_shards=2, classes=2)
        training = TrainingService(service)
        _stream_in(training, train, randomized, shards=True)
        model = training.train(strategy)
        offline = _offline(strategy, train, randomized, randomizers)
        assert model.tree.identical_to(offline.tree_)

    def test_reconstructions_use_aggregates_not_rows(self, workload):
        """The per-class shard aggregates are exactly the per-class
        noise-grid histograms the offline pipeline buckets itself."""
        train, randomized, randomizers, specs = workload
        service = AggregationService(specs, classes=2)
        training = TrainingService(service)
        _stream_in(training, train, randomized)
        w = randomized.matrix()
        labels = train.labels
        for j, name in enumerate(train.attribute_names[:3]):
            spec = service.spec(name)
            y_partition, _ = service.engine.kernel_for(
                spec.x_partition, spec.randomizer
            )
            matrix = service.merged_by_class(name)
            for c in (0, 1):
                expected = y_partition.histogram(w[labels == c, j])
                assert np.array_equal(matrix[c + 1], expected)

    def test_unlabeled_records_do_not_skew_training(self, workload):
        """v1 (unlabeled) traffic lands in its own partition; the trained
        tree only sees the labeled stream."""
        train, randomized, randomizers, specs = workload
        service = AggregationService(specs, classes=2)
        training = TrainingService(service)
        _stream_in(training, train, randomized)
        # plain unlabeled ingest around the training service is fine
        service.ingest({"age": [30.0, 40.0, 50.0]})
        model = training.train("byclass")
        offline = _offline("byclass", train, randomized, randomizers)
        assert model.tree.identical_to(offline.tree_)


class TestTrainingServiceBasics:
    @pytest.fixture
    def small(self):
        noise = UniformRandomizer(half_width=0.25)
        service = AggregationService(
            [AttributeSpec("x", Partition.uniform(0, 1, 8), noise)],
            classes=2,
        )
        return service, TrainingService(service), noise

    def test_requires_class_aware_service(self):
        noise = UniformRandomizer(half_width=0.25)
        service = AggregationService(
            [AttributeSpec("x", Partition.uniform(0, 1, 8), noise)]
        )
        with pytest.raises(ValidationError, match="class-aware"):
            TrainingService(service)

    def test_train_requires_labeled_rows(self, small):
        _, training, _ = small
        with pytest.raises(ValidationError, match="no labeled records"):
            training.train("byclass")

    def test_rejects_unknown_strategy(self, small):
        _, training, _ = small
        with pytest.raises(ValidationError, match="strategy"):
            training.train("original")

    def test_rows_need_every_attribute(self):
        noise = UniformRandomizer(half_width=0.25)
        service = AggregationService(
            [
                AttributeSpec("a", Partition.uniform(0, 1, 8), noise),
                AttributeSpec("b", Partition.uniform(0, 1, 8), noise),
            ],
            classes=2,
        )
        training = TrainingService(service)
        with pytest.raises(ValidationError, match="missing"):
            training.ingest({"a": [0.5]}, [0])

    def test_rows_need_one_class_per_record(self, small):
        _, training, _ = small
        with pytest.raises(ValidationError, match="class"):
            training.ingest({"x": [0.5, 0.6]}, [0])

    def test_class_labels_validated(self, small):
        _, training, _ = small
        with pytest.raises(ValidationError):
            training.ingest({"x": [0.5]}, [7])
        with pytest.raises(ValidationError):
            training.ingest({"x": [0.5]}, [-1])
        with pytest.raises(ValidationError):
            training.ingest({"x": [0.5]}, [[0]])

    def test_n_buffered_counts_rows(self, small):
        _, training, noise = small
        assert training.n_buffered == 0
        training.ingest({"x": noise.randomize([0.5, 0.6], seed=0)}, [0, 1])
        assert training.n_buffered == 2

    def test_model_lookup(self, small):
        _, training, noise = small
        rng = np.random.default_rng(0)
        x = np.concatenate(
            [rng.uniform(0, 0.4, 200), rng.uniform(0.6, 1.0, 200)]
        )
        training.ingest(
            {"x": noise.randomize(x, seed=1)}, np.repeat([0, 1], 200)
        )
        assert training.model() is None
        model = training.train("byclass")
        assert training.model() is model
        assert training.model("byclass") is model
        assert training.model("global") is None
        assert isinstance(model, TrainedModel)
        assert model.classes == 2

    def test_aggregate_buffer_disagreement_is_loud(self, small):
        """Labeled records that bypass the training buffer (e.g. via
        service.ingest) fail train() with a clear error instead of
        silently skewing the reconstructions."""
        service, training, noise = small
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, 300)
        training.ingest(
            {"x": noise.randomize(x, seed=2)},
            (x > 0.5).astype(int),
        )
        service.ingest({"x": [0.5]}, classes=[0])  # around the buffer
        with pytest.raises(ValidationError, match="disagree"):
            training.train("byclass")

    def test_train_racing_labeled_ingest_is_consistent(self, small):
        """A /train concurrent with labeled ingest must never observe
        the shards and the buffer mid-update (spurious consistency
        error) — the sync lock holds the two halves together."""
        import threading

        _, training, noise = small
        rng = np.random.default_rng(9)
        x = rng.uniform(0, 1, 2_000)
        w = noise.randomize(x, seed=10)
        labels = (x > 0.5).astype(int)
        stop = threading.Event()
        errors = []

        def ingester():
            i = 0
            while not stop.is_set():
                sl = slice((i * 20) % 1_900, (i * 20) % 1_900 + 20)
                try:
                    training.ingest({"x": w[sl]}, labels[sl])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        training.ingest({"x": w[:100]}, labels[:100])  # seed the buffer
        thread = threading.Thread(target=ingester)
        thread.start()
        try:
            for _ in range(10):
                model = training.train("byclass")
                assert model.n_train >= 100
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not errors

    def test_restored_snapshot_history_becomes_baseline(self, small):
        """A --train server restarted from a snapshot keeps training:
        the pre-restore labeled history is excluded as baseline and
        train() runs on the rows ingested since."""
        service, training, noise = small
        rng = np.random.default_rng(11)
        x1 = rng.uniform(0, 1, 400)
        training.ingest(
            {"x": noise.randomize(x1, seed=12)}, (x1 > 0.5).astype(int)
        )
        restored = AggregationService.restore(service.snapshot())
        fresh = TrainingService(restored)  # buffer empty, aggregates full
        x2 = np.concatenate(
            [rng.uniform(0, 0.4, 300), rng.uniform(0.6, 1.0, 300)]
        )
        labels2 = np.repeat([0, 1], 300)
        fresh.ingest({"x": noise.randomize(x2, seed=13)}, labels2)
        model = fresh.train("byclass")
        assert model.n_train == 600  # only the post-restore rows
        # and it matches a service that never saw the old history
        clean_service = AggregationService(
            [AttributeSpec("x", Partition.uniform(0, 1, 8), noise)],
            classes=2,
        )
        clean = TrainingService(clean_service)
        clean.ingest({"x": noise.randomize(x2, seed=13)}, labels2)
        assert model.tree.identical_to(clean.train("byclass").tree)

    def test_class_aware_snapshot_internally_consistent(self, small):
        """Snapshot n_seen always equals the summed class blocks, so a
        restore can never reject a snapshot the server itself wrote."""
        service, training, noise = small
        training.ingest({"x": noise.randomize([0.2, 0.8], seed=4)}, [0, 1])
        payload = service.snapshot()
        state = payload["state"]["x"]
        assert state["n_seen"] == sum(sum(b) for b in state["y_counts"])
        AggregationService.restore(payload)  # must not raise

    def test_ingested_wire_views_are_materialized(self, small):
        """Zero-copy frombuffer views must not keep the request body
        alive (or mutate under the buffer) — prepare_rows copies."""
        from repro.service import decode_labeled, encode_columns

        _, training, noise = small
        w = noise.randomize(np.linspace(0.1, 0.9, 50), seed=3)
        frame = encode_columns({"x": w}, classes=[0, 1] * 25)
        batch, classes, _ = decode_labeled(frame)
        rows = training.prepare_rows(batch, classes)
        assert rows[0].flags.owndata or rows[0].base is None
        assert rows[0].flags.writeable
        training.absorb_rows(rows)
        assert training.n_buffered == 50
