"""Decision-tree training over the live aggregation service (paper §4).

The paper's headline result is not the reconstructed histogram but the
classifier trained on it: ByClass/Local reconstruction feeding ID3-style
tree induction recovers near-original accuracy from randomized data.
:class:`TrainingService` closes that loop for the serving tier — the
same server that ingests randomized streams at memory bandwidth can now
*mine* them.

Division of labour:

* the **class-conditional shard aggregates**
  (:meth:`~repro.service.AggregationService.merged_by_class`) drive every
  distribution reconstruction: one warm cache-shared
  :class:`~repro.core.engine.ReconstructionEngine` sweep per
  (attribute, class), at cost O(bins) regardless of stream length,
* a **training buffer** of the labeled randomized rows drives the
  per-record steps the histograms cannot carry — the paper's sort-based
  record correction (:func:`~repro.core.correction.correct_records`) and
  the tree's per-node record routing.  The buffer only ever holds
  *randomized* values; clean data never reaches the server.

Bit-identity contract
---------------------
Given the same labeled randomized rows (in the same order) and default
engine settings, :meth:`TrainingService.train` produces a tree
**bit-identical** — same splits, same thresholds, same leaf counts — to
the offline :class:`~repro.tree.pipeline.PrivacyPreservingClassifier`
fed the same pre-randomized table (the ``experiments/classification.py``
path), because every float operation is shared: the per-class noise-grid
histograms held by the shards equal ``y_partition.histogram`` of the
per-class values exactly (integer counts), the engine's batched sweeps
are bit-identical to the looped reference, and correction + tree growth
run the very same code.  ``tests/test_training.py`` and
``bench_e22_train_over_service`` pin this.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.correction import correct_records
from repro.exceptions import ValidationError
from repro.tree.tree import DecisionTreeClassifier
from repro.utils.validation import check_1d_array, check_label_column

#: strategies the service can train: the paper's §4.1 reconstruction
#: algorithms (the raw-data baselines need clean records a server never has)
TRAINING_STRATEGIES = ("global", "byclass", "local")


@dataclass(frozen=True)
class TrainedModel:
    """A decision tree grown by :class:`TrainingService`, plus provenance.

    Attributes
    ----------
    strategy:
        Training strategy (``"global"``, ``"byclass"``, or ``"local"``).
    tree:
        The fitted :class:`~repro.tree.tree.DecisionTreeClassifier`.
    n_train:
        Labeled records the tree was grown from.
    attributes:
        Attribute names, in training column order.
    classes:
        Class-label count of the service that trained it.
    fit_seconds:
        Wall-clock training time (reconstruction + correction + growth).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition
    >>> from repro.service import TrainedModel
    >>> from repro.tree.tree import DecisionTreeClassifier
    >>> tree = DecisionTreeClassifier([Partition.uniform(0, 1, 4)])
    >>> _ = tree.fit(np.array([[0.1], [0.9]]), np.array([0, 1]))
    >>> model = TrainedModel("byclass", tree, 2, ("x",), 2, 0.01)
    >>> model.strategy, model.n_train
    ('byclass', 2)
    """

    strategy: str
    tree: DecisionTreeClassifier
    n_train: int
    attributes: tuple
    classes: int
    fit_seconds: float

    def save(self, path) -> None:
        """Persist as a ``trained_tree`` snapshot (:mod:`repro.serialize`)."""
        from repro import serialize

        serialize.save(self, path)


class TrainingService:
    """Grow the paper's decision trees from a live, class-aware service.

    Parameters
    ----------
    service:
        A class-aware :class:`~repro.service.AggregationService`
        (``classes >= 1``).  Its class-conditional aggregates feed the
        reconstructions; its engine (and kernel cache) runs the sweeps.
    criterion / max_depth / min_records_split / min_gain / local_min_records:
        Tree-growth settings, with exactly the
        :class:`~repro.tree.pipeline.PrivacyPreservingClassifier`
        defaults and ``"auto"`` resolutions, so a service-trained tree is
        bit-identical to the offline pipeline on the same data.

    Labeled rows enter through :meth:`ingest` (or the HTTP front end's
    labeled wire frames): the batch lands in the service's per-class
    shard stripes *and* in the training buffer.  Training rows must
    carry every attribute — trees route records on full rows.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import (
    ...     AggregationService, AttributeSpec, TrainingService,
    ... )
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> service = AggregationService(
    ...     [AttributeSpec("x", Partition.uniform(0, 1, 8), noise)],
    ...     classes=2,
    ... )
    >>> training = TrainingService(service)
    >>> rng = np.random.default_rng(0)
    >>> x = np.concatenate(
    ...     [rng.uniform(0.0, 0.45, 400), rng.uniform(0.55, 1.0, 400)]
    ... )
    >>> labels = np.repeat([0, 1], 400)
    >>> training.ingest({"x": noise.randomize(x, seed=1)}, labels)
    800
    >>> model = training.train("byclass")
    >>> model.strategy, model.n_train
    ('byclass', 800)
    >>> bool(model.tree.n_nodes >= 1)
    True
    """

    def __init__(
        self,
        service,
        *,
        criterion: str = "gini",
        max_depth="auto",
        min_records_split="auto",
        min_gain: float = 0.0,
        local_min_records: int = 100,
    ) -> None:
        if service.classes < 1:
            raise ValidationError(
                "training needs a class-aware service: build the "
                "AggregationService with classes >= 1"
            )
        self.service = service
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_records_split = min_records_split
        self.min_gain = float(min_gain)
        self.local_min_records = int(local_min_records)
        self._rows: list = []  # (matrix (n, d), labels (n,)) blocks
        self._rows_lock = threading.Lock()
        # Aggregates already in the shards predate this training service
        # (a restored snapshot's labeled history, typically).  They are
        # subtracted from every aggregate read, so training always runs
        # on exactly the rows this instance buffered — a restarted
        # --train server keeps training on its new stream instead of
        # failing the aggregates-vs-buffer check forever.
        self._baseline = {
            name: service.merged_by_class(name) for name in service.attributes
        }
        # Holds the shard accumulate and the buffer append of one labeled
        # batch together, and train()'s aggregate reads against both, so
        # a train racing a labeled ingest can never observe shards and
        # buffer mid-update (the consistency check would misfire).
        # Unlabeled ingest never takes it.
        self.sync_lock = threading.RLock()
        self._models: dict = {}
        self._latest: str | None = None
        self._models_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Labeled ingestion
    # ------------------------------------------------------------------
    @property
    def n_buffered(self) -> int:
        """Labeled training rows currently buffered."""
        with self._rows_lock:
            return sum(labels.size for _, labels in self._rows)

    def prepare_rows(self, batch, classes) -> tuple:
        """Normalize a labeled batch into full training rows (pure).

        Validates that every service attribute is present with one value
        per class label and returns a ``(matrix, labels)`` pair of
        fresh arrays (wire-decoded zero-copy views are materialized here
        — the request body's buffer is not retained).
        """
        if not isinstance(batch, dict):
            raise ValidationError("batch must map attribute -> values")
        names = self.service.attributes
        missing = [name for name in names if name not in batch]
        if missing:
            raise ValidationError(
                f"training rows need every attribute; missing {missing} "
                f"(the service collects {list(names)})"
            )
        labels = check_label_column(
            classes, n_classes=self.service.classes
        ).astype(np.int64, copy=True)
        columns = []
        for name in names:
            arr = check_1d_array(
                batch[name], f"batch[{name!r}]", allow_empty=True
            )
            if arr.size != labels.size:
                raise ValidationError(
                    f"batch[{name!r}] has {arr.size} value(s) but the "
                    f"class column has {labels.size}"
                )
            columns.append(np.array(arr, dtype=float))
        matrix = (
            np.column_stack(columns)
            if labels.size
            else np.empty((0, len(names)))
        )
        return matrix, labels

    def absorb_rows(self, rows: tuple) -> int:
        """Append rows prepared by :meth:`prepare_rows`; return row count."""
        matrix, labels = rows
        if labels.size == 0:
            return 0
        with self._rows_lock:
            self._rows.append((matrix, labels))
        return int(labels.size)

    def export_rows(self) -> list:
        """Copies of the buffered ``(matrix, labels)`` blocks, in order.

        The worker side of cluster row sync: shipped (as labeled record
        frames after the partial frame) under :attr:`sync_lock` together
        with the aggregate export, so the coordinator always receives an
        aggregates/rows pair that passes the training consistency check.
        """
        with self._rows_lock:
            return [
                (matrix.copy(), labels.copy()) for matrix, labels in self._rows
            ]

    def replace_rows(self, blocks) -> int:
        """Swap the whole training buffer for ``blocks`` of prepared rows.

        The coordinator side of cluster row sync: ``blocks`` is a
        sequence of ``(matrix, labels)`` pairs (the shape
        :meth:`prepare_rows` produces), typically one worker's buffer
        after another in worker order.  Replacing — never appending —
        makes a re-synced buffer idempotent, mirroring
        :meth:`~repro.service.AggregationService.replace_partial`.
        Everything is validated before the swap; callers hold
        :attr:`sync_lock` around the replace and the aggregate updates
        it mirrors.  Returns the rows now buffered.
        """
        d = len(self.service.attributes)
        checked = []
        total = 0
        for block in blocks:
            try:
                matrix, labels = block
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    f"row blocks must be (matrix, labels) pairs: {exc}"
                ) from exc
            matrix = np.asarray(matrix, dtype=float)
            labels = check_label_column(labels, n_classes=self.service.classes)
            if matrix.ndim != 2 or matrix.shape != (labels.size, d):
                raise ValidationError(
                    f"row block matrix must have shape ({labels.size}, {d}) "
                    f"to match its labels, got {matrix.shape}"
                )
            if labels.size == 0:
                continue
            checked.append((matrix, labels.astype(np.int64, copy=False)))
            total += int(labels.size)
        with self._rows_lock:
            self._rows = checked
        return total

    def ingest(self, batch, classes, *, shard: int | None = None) -> int:
        """Absorb labeled rows into the shards *and* the training buffer.

        The convenience path for library users (the HTTP front end
        splits the two halves to keep request bodies all-or-nothing).
        Returns the records added to the shards.
        """
        rows = self.prepare_rows(batch, classes)
        with self.sync_lock:
            added = self.service.ingest(batch, shard=shard, classes=classes)
            self.absorb_rows(rows)
        return added

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def model(self, strategy: str | None = None):
        """The last :class:`TrainedModel` (of ``strategy``, or any), or None."""
        with self._models_lock:
            if strategy is None:
                strategy = self._latest
            return self._models.get(strategy)

    def train(self, strategy: str = "byclass") -> TrainedModel:
        """Grow a decision tree from the service's aggregates and buffer.

        Reconstructions come from the class-conditional shard partials
        (O(bins) per attribute x class, never re-reading the stream);
        record correction and tree growth run on the buffered randomized
        rows.  The result is bit-identical to the offline
        :class:`~repro.tree.pipeline.PrivacyPreservingClassifier` on the
        same data (see the module docstring).
        """
        if strategy not in TRAINING_STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {TRAINING_STRATEGIES}, "
                f"got {strategy!r}"
            )
        names = self.service.attributes
        start = time.perf_counter()
        # The buffer snapshot, the consistency check, and the aggregate
        # reads happen under the sync lock so a concurrent labeled
        # ingest cannot interleave between them; tree growth below only
        # touches the (already copied) buffered rows and runs unlocked.
        with self.sync_lock:
            with self._rows_lock:
                blocks = list(self._rows)
            if not blocks:
                raise ValidationError(
                    "no labeled records buffered: ingest labeled rows "
                    "before train()"
                )
            w_matrix = np.vstack([matrix for matrix, _ in blocks])
            labels = np.concatenate(
                [block_labels for _, block_labels in blocks]
            )
            # one stripe merge per attribute (minus the pre-existing
            # baseline), shared by the consistency check and the
            # reconstructions below
            matrices = {
                name: self.service.merged_by_class(name) - self._baseline[name]
                for name in names
            }
            self._check_consistency(labels, matrices)
        # everything below reads only private copies (w_matrix, labels,
        # matrices), so corrections and tree growth run unlocked and
        # never stall the labeled ingest path
        if strategy == "global":
            intervals = self._correct_global(w_matrix, names, matrices)
        else:  # byclass and local both root at the ByClass correction
            intervals = self._correct_byclass(w_matrix, labels, names, matrices)

        partitions = [self.service.spec(name).x_partition for name in names]
        n = labels.size
        max_depth = 8 if self.max_depth == "auto" else self.max_depth
        min_records_split = (
            max(10, round(0.01 * n))
            if self.min_records_split == "auto"
            else self.min_records_split
        )
        tree = DecisionTreeClassifier(
            partitions,
            criterion=self.criterion,
            max_depth=max_depth,
            min_records_split=min_records_split,
            min_gain=self.min_gain,
            attribute_names=list(names),
        )
        if strategy == "local":
            tree.fit_intervals(
                intervals,
                labels,
                raw_values=w_matrix,
                node_transformer=self._local_transformer(names, partitions),
            )
        else:
            tree.fit_intervals(intervals, labels)
        elapsed = time.perf_counter() - start

        model = TrainedModel(
            strategy=strategy,
            tree=tree,
            n_train=int(n),
            attributes=tuple(names),
            classes=self.service.classes,
            fit_seconds=elapsed,
        )
        with self._models_lock:
            self._models[strategy] = model
            self._latest = strategy
        return model

    # ------------------------------------------------------------------
    def _check_consistency(self, labels: np.ndarray, matrices: dict) -> None:
        """The (baseline-adjusted) aggregates must match the buffer.

        Cheap (O(classes) sums per attribute over the already-merged
        matrices): catches labeled records that reached the shards
        around the training buffer — e.g. via a direct
        ``service.ingest(..., classes=...)`` — before they silently
        skew the reconstructions away from the buffered rows.
        Aggregates predating this training service (a restored
        snapshot's history) are already subtracted by the caller.
        """
        per_class = np.bincount(labels, minlength=self.service.classes)
        for name, matrix in matrices.items():
            for c in range(self.service.classes):
                aggregated = int(matrix[c + 1].sum())
                if aggregated != int(per_class[c]):
                    raise ValidationError(
                        f"class-conditional aggregates disagree with the "
                        f"training buffer for attribute {name!r}, class "
                        f"{c}: shards hold {aggregated} record(s), the "
                        f"buffer {int(per_class[c])} — labeled records "
                        "must be ingested through the training service"
                    )

    def _reconstruct(self, name: str, count_rows) -> list:
        """Engine sweeps over pre-aggregated noise-grid histograms."""
        spec = self.service.spec(name)
        engine = self.service.engine
        _, kernel = engine.kernel_for(spec.x_partition, spec.randomizer)
        y_counts = np.stack([np.asarray(row, dtype=float) for row in count_rows])
        m = spec.x_partition.n_intervals
        theta0 = np.full((y_counts.shape[0], m), 1.0 / m)
        batch = engine.sweep_batch(y_counts, kernel, theta0)
        return [
            engine.result_from_sweep(batch, row, spec.x_partition, warn=False)
            for row in range(y_counts.shape[0])
        ]

    def _correct_byclass(self, w_matrix, labels, names, matrices) -> np.ndarray:
        """Per-class reconstruction from aggregates + per-record correction."""
        intervals = np.empty(w_matrix.shape, dtype=np.int64)
        class_masks = [(int(c), labels == c) for c in np.unique(labels)]
        for j, name in enumerate(names):
            matrix = matrices[name]
            results = self._reconstruct(
                name, [matrix[c + 1] for c, _ in class_masks]
            )
            for (c, mask), result in zip(class_masks, results):
                intervals[mask, j] = correct_records(
                    w_matrix[mask, j], result.distribution
                ).interval_indices
        return intervals

    def _correct_global(self, w_matrix, names, matrices) -> np.ndarray:
        """One all-labeled-classes reconstruction per attribute + correction."""
        intervals = np.empty(w_matrix.shape, dtype=np.int64)
        for j, name in enumerate(names):
            matrix = matrices[name]
            # the labeled blocks sum (exactly) to the histogram of every
            # buffered row; the unlabeled partition is not training data
            result = self._reconstruct(name, [matrix[1:].sum(axis=0)])[0]
            intervals[:, j] = correct_records(
                w_matrix[:, j], result.distribution
            ).interval_indices
        return intervals

    def _local_transformer(self, names, partitions):
        """The paper's Local per-node refit, on the service's engine.

        Matches :class:`~repro.tree.pipeline.PrivacyPreservingClassifier`
        exactly: attributes already split on along the path keep their
        inherited assignments, classes under ``local_min_records`` are
        skipped, and all of a node's (attribute x class) refits go out as
        one batched engine call (kernels cached across nodes).
        """
        randomizers = [self.service.spec(name).randomizer for name in names]
        engine = self.service.engine

        def transform(raw, node_labels, intervals, used):
            out = intervals.copy()
            class_masks = [
                (c, mask)
                for c in np.unique(node_labels)
                for mask in [node_labels == c]
                if int(mask.sum()) >= self.local_min_records
            ]
            jobs = []
            for j in range(len(names)):
                if j in used:
                    continue
                for _, mask in class_masks:
                    jobs.append((j, mask))
            if not jobs:
                return out
            results = engine.reconstruct_batch(
                [
                    (raw[mask, j], partitions[j], randomizers[j])
                    for j, mask in jobs
                ]
            )
            for (j, mask), result in zip(jobs, results):
                out[mask, j] = correct_records(
                    raw[mask, j], result.distribution
                ).interval_indices
            return out

        return transform

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrainingService(attributes={len(self.service.attributes)}, "
            f"classes={self.service.classes}, buffered={self.n_buffered})"
        )
