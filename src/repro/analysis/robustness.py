"""Failure-handling lint for the serving tier (rule R001).

The resilience work (fault injection, crash-safe snapshots, worker
supervision) is only trustworthy if the serving tier never *swallows* a
failure: an ``except`` clause whose body is just ``pass`` (or ``...``)
turns a dropped partial, a failed snapshot, or a dead worker into
silence — precisely the bug class PR 9's satellites fixed in
``PartialShipper.stop`` and ``ClusterSupervisor.shutdown``.

* **R001 — swallowed exception in the serving tier.**  An exception
  handler under ``src/repro/service`` whose body contains no statement
  other than ``pass``/``...`` discards the failure without logging,
  counting, or re-raising it.  Handle the error (log it, record it in a
  stats counter, convert it to a result) or, when discarding really is
  the intent, say so greppably with ``contextlib.suppress`` or an
  inline ``# ppdm: ignore[R001]``.

Examples
--------
>>> from repro.analysis.robustness import check_robustness
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source(
...     "try:\\n"
...     "    push()\\n"
...     "except OSError:\\n"
...     "    pass\\n",
...     "src/repro/service/demo.py", "library")
>>> [f.rule for f in check_robustness(Project([bad]))]
['R001']
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import RuleSpec, checker
from repro.analysis.walker import Project, iter_scoped

__all__ = ["check_robustness"]

#: path prefix of the tier the rule guards
_SERVICE_PREFIX = "src/repro/service/"


def _handler_label(handler: ast.ExceptHandler) -> str:
    """Human-readable ``except`` clause for the finding message."""
    if handler.type is None:
        return "except:"
    try:
        return f"except {ast.unparse(handler.type)}:"
    except ValueError:  # pragma: no cover - unparse edge case
        return "except ...:"


def _is_noop(statement: ast.stmt) -> bool:
    """Is this statement ``pass`` or a bare ``...`` expression?"""
    if isinstance(statement, ast.Pass):
        return True
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Constant)
        and statement.value.value is Ellipsis
    )


@checker(
    "robustness",
    title="Failure handling: the serving tier never swallows exceptions",
    rules=(
        RuleSpec(
            "R001",
            "exception handler in the serving tier is only pass/...",
            rationale=(
                "A silent 'except: pass' turns a dropped partial, failed "
                "snapshot, or dead worker into an invisible correctness "
                "bug; failures must be logged, counted, or re-raised."
            ),
        ),
    ),
)
def check_robustness(project: Project) -> Iterator[Finding]:
    """Flag swallowed exceptions in ``src/repro/service`` modules."""
    for module in project.iter_modules(("library",)):
        if module.tree is None:
            continue
        if not module.relpath.startswith(_SERVICE_PREFIX):
            continue
        for node, scope in iter_scoped(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not all(_is_noop(statement) for statement in node.body):
                continue
            yield Finding(
                rule="R001",
                path=module.relpath,
                line=node.lineno,
                scope=scope,
                message=(
                    f"serving-tier handler '{_handler_label(node)}' "
                    "swallows the exception (body is only pass/...)"
                ),
                hint=(
                    "log the failure, count it in stats(), or re-raise a "
                    "repro.exceptions type; use contextlib.suppress for "
                    "deliberate discards"
                ),
            )
