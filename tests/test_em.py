"""Tests for the EM reconstructor and its agreement with the Bayes iterate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.em import EMReconstructor
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import UniformRandomizer, transition_matrix
from repro.core.reconstruction import BayesReconstructor
from repro.datasets import shapes
from repro.exceptions import ConvergenceWarning, ValidationError


@pytest.fixture
def em_setup(rng):
    density = shapes.plateau()
    x = density.sample(5_000, seed=rng)
    part = density.partition(16)
    noise = UniformRandomizer.from_privacy(0.5, 1.0)
    w = noise.randomize(x, seed=rng)
    return x, w, part, noise


class TestConfiguration:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ValidationError):
            EMReconstructor(max_iterations=0)

    def test_rejects_bad_tol(self):
        with pytest.raises(ValidationError):
            EMReconstructor(tol=-1.0)


class TestLikelihood:
    def test_loglikelihood_monotone(self, em_setup):
        """EM's defining property: the likelihood never decreases."""
        x, w, part, noise = em_setup
        y_part = part.expanded(noise.support_half_width())
        kernel = transition_matrix(y_part, part, noise)
        counts = y_part.histogram(w).astype(float)

        theta = np.full(part.n_intervals, 1.0 / part.n_intervals)
        previous = -np.inf
        for _ in range(25):
            mixture = np.maximum(kernel @ theta, 1e-300)
            ll = float((counts * np.log(mixture)).sum())
            assert ll >= previous - 1e-6
            previous = ll
            weights = counts / counts.sum() / mixture
            theta = theta * (kernel.T @ weights)
            theta /= theta.sum()

    def test_em_converges(self, em_setup):
        x, w, part, noise = em_setup
        result = EMReconstructor(tol=1e-8).reconstruct(w, part, noise)
        assert result.converged
        assert result.distribution.probs.sum() == pytest.approx(1.0)

    def test_max_iterations_warns(self, em_setup):
        x, w, part, noise = em_setup
        with pytest.warns(ConvergenceWarning):
            result = EMReconstructor(max_iterations=2, tol=1e-15).reconstruct(
                w, part, noise
            )
        assert not result.converged


class TestAgreementWithBayes:
    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_em_equals_long_run_bayes(self, em_setup):
        """The binned Bayes iterate *is* EM: long runs must coincide."""
        x, w, part, noise = em_setup
        bayes = BayesReconstructor(
            stopping="delta", tol=1e-10, max_iterations=2000
        ).reconstruct(w, part, noise)
        em = EMReconstructor(tol=1e-12, max_iterations=2000).reconstruct(
            w, part, noise
        )
        assert bayes.distribution.l1_distance(em.distribution) < 0.02

    def test_em_recovers_distribution(self, em_setup):
        x, w, part, noise = em_setup
        original = HistogramDistribution.from_values(x, part)
        randomized = HistogramDistribution.from_values(w, part)
        result = EMReconstructor().reconstruct(w, part, noise)
        assert result.distribution.l1_distance(original) < randomized.l1_distance(
            original
        )

    def test_em_single_interval_domain(self):
        part = Partition.uniform(0, 1, 1)
        noise = UniformRandomizer(half_width=0.3)
        w = noise.randomize(np.full(100, 0.5), seed=0)
        result = EMReconstructor().reconstruct(w, part, noise)
        assert result.distribution.probs[0] == pytest.approx(1.0)
