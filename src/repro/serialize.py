"""JSON snapshots of fitted models and distributions.

A server that reconstructs distributions and trains models on randomized
data needs to persist them (the paper's deployment stores models in the
warehouse tier).  This module round-trips the library's artifacts through
plain JSON-able dicts:

* :class:`~repro.core.partition.Partition`
* :class:`~repro.core.histogram.HistogramDistribution`
* :class:`~repro.tree.tree.DecisionTreeClassifier` (fitted)
* :class:`~repro.bayes.naive.NaiveBayesClassifier` (fitted)

Use :func:`to_jsonable` / :func:`from_jsonable` for in-memory dicts and
:func:`save` / :func:`load` for files.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bayes.naive import NaiveBayesClassifier
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.exceptions import NotFittedError, ValidationError
from repro.tree.tree import DecisionTreeClassifier, TreeNode

#: schema version embedded in every snapshot
FORMAT_VERSION = 1


def _node_to_dict(node: TreeNode) -> dict:
    payload = {
        "class_counts": node.class_counts.tolist(),
        "depth": node.depth,
    }
    if not node.is_leaf:
        payload["attribute_index"] = node.attribute_index
        payload["threshold"] = node.threshold
        payload["left"] = _node_to_dict(node.left)
        payload["right"] = _node_to_dict(node.right)
    return payload


def _node_from_dict(payload: dict) -> TreeNode:
    node = TreeNode(
        class_counts=np.asarray(payload["class_counts"], dtype=float),
        depth=int(payload["depth"]),
    )
    if "left" in payload:
        node.attribute_index = int(payload["attribute_index"])
        node.threshold = float(payload["threshold"])
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


def to_jsonable(obj) -> dict:
    """Convert a supported object to a JSON-serializable dict."""
    if isinstance(obj, Partition):
        return {
            "kind": "partition",
            "version": FORMAT_VERSION,
            "edges": obj.edges.tolist(),
        }
    if isinstance(obj, HistogramDistribution):
        return {
            "kind": "histogram",
            "version": FORMAT_VERSION,
            "edges": obj.partition.edges.tolist(),
            "probs": obj.probs.tolist(),
        }
    if isinstance(obj, DecisionTreeClassifier):
        if obj.root_ is None:
            raise NotFittedError("cannot serialize an unfitted tree")
        return {
            "kind": "decision_tree",
            "version": FORMAT_VERSION,
            "partitions": [p.edges.tolist() for p in obj.partitions],
            "criterion": obj.criterion,
            "max_depth": obj.max_depth,
            "min_records_split": obj.min_records_split,
            "min_gain": obj.min_gain,
            "attribute_names": list(obj.attribute_names),
            "n_classes": obj.n_classes_,
            "root": _node_to_dict(obj.root_),
        }
    if isinstance(obj, NaiveBayesClassifier):
        if obj.log_priors_ is None:
            raise NotFittedError("cannot serialize an unfitted classifier")
        return {
            "kind": "naive_bayes",
            "version": FORMAT_VERSION,
            "partitions": [p.edges.tolist() for p in obj.partitions],
            "laplace": obj.laplace,
            "log_priors": obj.log_priors_.tolist(),
            "log_likelihoods": [lk.tolist() for lk in obj.log_likelihoods_],
        }
    raise ValidationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def from_jsonable(payload: dict):
    """Rebuild an object serialized by :func:`to_jsonable`."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ValidationError("payload is not a repro serialization dict")
    kind = payload["kind"]
    if kind == "partition":
        return Partition(np.asarray(payload["edges"], dtype=float))
    if kind == "histogram":
        partition = Partition(np.asarray(payload["edges"], dtype=float))
        return HistogramDistribution(
            partition, np.asarray(payload["probs"], dtype=float)
        )
    if kind == "decision_tree":
        partitions = [
            Partition(np.asarray(edges, dtype=float))
            for edges in payload["partitions"]
        ]
        tree = DecisionTreeClassifier(
            partitions,
            criterion=payload["criterion"],
            max_depth=payload["max_depth"],
            min_records_split=payload["min_records_split"],
            min_gain=payload["min_gain"],
            attribute_names=payload["attribute_names"],
        )
        tree.n_classes_ = int(payload["n_classes"])
        tree.root_ = _node_from_dict(payload["root"])
        return tree
    if kind == "naive_bayes":
        partitions = [
            Partition(np.asarray(edges, dtype=float))
            for edges in payload["partitions"]
        ]
        model = NaiveBayesClassifier(partitions, laplace=payload["laplace"])
        model.log_priors_ = np.asarray(payload["log_priors"], dtype=float)
        model.log_likelihoods_ = [
            np.asarray(lk, dtype=float) for lk in payload["log_likelihoods"]
        ]
        return model
    raise ValidationError(f"unknown serialization kind {kind!r}")


def save(obj, path) -> None:
    """Serialize ``obj`` to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(to_jsonable(obj)))


def load(path):
    """Load an object saved with :func:`save`."""
    path = Path(path)
    return from_jsonable(json.loads(path.read_text()))
