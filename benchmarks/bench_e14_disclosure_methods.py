"""E14 — Ablation: §2's two disclosure methods + tree pruning.

The paper's §2 weighs *value distortion* (additive noise, then
reconstruction) against *value-class membership* (disclose only a coarse
interval) and chooses distortion.  E14a regenerates that comparison at
matched privacy levels.  E14b measures the reduced-error-pruning option
(the SPRINT-lineage regularization the original system had and our
default configuration exposes via ``prune_fraction``).
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.datasets import quest
from repro.experiments import format_table
from repro.tree import PrivacyPreservingClassifier

LEVELS = (0.1, 0.25, 0.5, 1.0)
FUNCTION = 2


@experiment(
    "e14",
    title="Value distortion vs value-class membership; pruning ablation",
    tags=("classification", "ablation"),
    seed=1400,
)
def run_e14(ctx):
    n_train, n_test = ctx.scaled(10_000), ctx.scaled(3_000)
    ctx.record(
        function=FUNCTION,
        n_train=n_train,
        n_test=n_test,
        levels=",".join(f"{level:g}" for level in LEVELS),
    )
    train = quest.generate(n_train, function=FUNCTION, seed=ctx.seed)
    test = quest.generate(n_test, function=FUNCTION, seed=ctx.seed + 1)

    # Method comparison: both disclosure methods get the same stronger
    # tree (deeper growth + reduced-error pruning), so the measured gap is
    # the disclosure method's, not the default stopping heuristics'.
    tree_options = dict(max_depth=12, prune_fraction=0.15)
    methods = {}
    for level in LEVELS:
        byclass = PrivacyPreservingClassifier(
            "byclass", privacy=level, seed=ctx.seed + 2, **tree_options
        ).fit(train)
        valueclass = PrivacyPreservingClassifier(
            "valueclass", privacy=level, seed=ctx.seed + 2, **tree_options
        ).fit(train)
        methods[level] = {
            "byclass": byclass.score(test),
            "valueclass": valueclass.score(test),
        }

    pruning = {}
    for strategy in ("randomized", "byclass"):
        grown = PrivacyPreservingClassifier(
            strategy, privacy=1.0, seed=ctx.seed + 3
        ).fit(train)
        pruned = PrivacyPreservingClassifier(
            strategy, privacy=1.0, seed=ctx.seed + 3, prune_fraction=0.2
        ).fit(train)
        pruning[strategy] = {
            "grown_acc": grown.score(test),
            "grown_nodes": grown.tree_.n_nodes,
            "pruned_acc": pruned.score(test),
            "pruned_nodes": pruned.tree_.n_nodes,
        }

    method_rows = [
        (
            f"{level:g}",
            f"{100 * methods[level]['byclass']:.1f}",
            f"{100 * methods[level]['valueclass']:.1f}",
        )
        for level in LEVELS
    ]
    method_table = format_table(
        ("privacy", "distortion+byclass %", "value-class %"),
        method_rows,
        title=f"E14a: Fn{FUNCTION} — value distortion vs value-class membership",
    )
    prune_rows = [
        (
            strategy,
            f"{100 * cell['grown_acc']:.1f}",
            cell["grown_nodes"],
            f"{100 * cell['pruned_acc']:.1f}",
            cell["pruned_nodes"],
        )
        for strategy, cell in pruning.items()
    ]
    prune_table = format_table(
        ("strategy", "acc %", "nodes", "pruned acc %", "pruned nodes"),
        prune_rows,
        title="E14b: reduced-error pruning at 100% privacy",
    )
    ctx.report(
        method_table + "\n\n" + prune_table, name="e14_disclosure_methods"
    )

    metrics = {}
    for level in LEVELS:
        metrics[f"byclass_p{level:g}"] = float(methods[level]["byclass"])
        metrics[f"valueclass_p{level:g}"] = float(methods[level]["valueclass"])
    for strategy, cell in pruning.items():
        metrics[f"{strategy}_grown_acc"] = float(cell["grown_acc"])
        metrics[f"{strategy}_grown_nodes"] = int(cell["grown_nodes"])
        metrics[f"{strategy}_pruned_acc"] = float(cell["pruned_acc"])
        metrics[f"{strategy}_pruned_nodes"] = int(cell["pruned_nodes"])

    # the paper's §2 choice: distortion at least matches discretization
    for level in LEVELS:
        assert (
            methods[level]["byclass"] >= methods[level]["valueclass"] - 0.03
        ), level
    # and wins clearly somewhere in the sweep
    assert any(
        methods[level]["byclass"] > methods[level]["valueclass"] + 0.05
        for level in LEVELS
    )
    # pruning shrinks trees a lot without costing accuracy
    for strategy, cell in pruning.items():
        assert cell["pruned_nodes"] < cell["grown_nodes"], strategy
        assert cell["pruned_acc"] > cell["grown_acc"] - 0.05, strategy
    return metrics


def test_e14_disclosure_methods(benchmark):
    run_experiment(benchmark, "e14")
