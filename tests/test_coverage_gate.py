"""Tests for the CI coverage-floor gate (tools/check_coverage.py).

The gate itself runs in CI (the ``coverage`` job installs pytest-cov,
which the local toolchain may not have); these tests pin the tool's
parsing and pass/fail behaviour with synthetic reports so a refactor
cannot silently neuter the gate.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

REPORT = """<?xml version="1.0" ?>
<coverage line-rate="{rate}" branch-rate="0" version="7.0" timestamp="0">
  <packages/>
</coverage>
"""


def _run_gate(tmp_path, line_rate, floor):
    report = tmp_path / "coverage.xml"
    report.write_text(REPORT.format(rate=line_rate))
    floor_file = tmp_path / "floor.txt"
    floor_file.write_text(str(floor))
    return subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "check_coverage.py"),
            str(report),
            "--floor-file",
            str(floor_file),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )


def test_passes_at_or_above_floor(tmp_path):
    result = _run_gate(tmp_path, 0.913, 85.0)
    assert result.returncode == 0, result.stderr
    assert "91.30%" in result.stdout


def test_fails_below_floor(tmp_path):
    result = _run_gate(tmp_path, 0.70, 85.0)
    assert result.returncode == 1
    assert "fell below" in result.stderr


def test_headroom_nudges_ratchet(tmp_path):
    result = _run_gate(tmp_path, 0.99, 80.0)
    assert result.returncode == 0
    assert "ratchet" in result.stdout


def test_malformed_report_is_clean_error(tmp_path):
    report = tmp_path / "coverage.xml"
    report.write_text("<not xml")
    floor_file = tmp_path / "floor.txt"
    floor_file.write_text("80")
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "check_coverage.py"),
            str(report),
            "--floor-file",
            str(floor_file),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
    assert "error:" in result.stderr


def test_committed_floor_is_sane():
    floor = float((REPO_ROOT / "tools" / "coverage_floor.txt").read_text())
    assert 50.0 <= floor <= 100.0
