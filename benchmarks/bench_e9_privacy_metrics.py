"""E9 — The privacy metric table (paper §2.1).

Regenerates the paper's quantification examples: for each Quest attribute
and noise kind, the noise parameter that achieves a target privacy at
95 % confidence, plus the same randomizer's privacy at other confidence
levels, and the information-theoretic a-posteriori view (follow-on work).
"""

from __future__ import annotations

from _common import once, report

from repro.core import (
    HistogramDistribution,
    noise_for_privacy,
    posterior_privacy,
    privacy_of_randomizer,
)
from repro.datasets import quest
from repro.experiments import format_table
from repro.experiments.config import scaled

CONFIDENCES = (0.5, 0.95, 0.999)


def _build():
    rows = []
    for attribute in quest.ATTRIBUTES[:4]:  # salary, commission, age, elevel
        for kind in ("uniform", "gaussian"):
            randomizer = noise_for_privacy(kind, 1.0, attribute.span, 0.95)
            privacy_at = [
                privacy_of_randomizer(randomizer, attribute.span, c)
                for c in CONFIDENCES
            ]
            rows.append((attribute.name, kind, privacy_at))

    # a-posteriori (information-theoretic) privacy on real age data
    table = quest.generate(scaled(20_000), function=1, seed=900)
    age_attr = table.attribute("age")
    prior = HistogramDistribution.from_values(
        table.column("age"), age_attr.partition(24)
    )
    posterior = {
        level: posterior_privacy(
            prior, noise_for_privacy("uniform", level, age_attr.span)
        )
        for level in (0.25, 1.0, 2.0)
    }
    return rows, posterior


def test_e9_privacy_metrics(benchmark):
    rows, posterior = once(benchmark, _build)

    interval_rows = [
        (name, kind) + tuple(f"{100 * p:.1f}" for p in privacy_at)
        for name, kind, privacy_at in rows
    ]
    interval_table = format_table(
        ("attribute", "noise") + tuple(f"c={c:g}" for c in CONFIDENCES),
        interval_rows,
        title="E9a: privacy (% of range) of 100%-at-95% noise, by confidence",
    )

    posterior_rows = [
        (
            f"{level:g}",
            f"{p.mutual_information_bits:.2f}",
            f"{100 * p.privacy_fraction:.1f}",
            f"{100 * p.privacy_loss:.1f}",
        )
        for level, p in posterior.items()
    ]
    posterior_table = format_table(
        ("interval privacy", "I(X;Y) bits", "posterior privacy %", "loss %"),
        posterior_rows,
        title="E9b: information-theoretic view (age attribute, uniform noise)",
    )
    report("e9_privacy_metrics", interval_table + "\n\n" + posterior_table)

    # all randomizers hit the target exactly at the stated confidence
    for name, kind, privacy_at in rows:
        assert abs(privacy_at[1] - 1.0) < 1e-9, (name, kind)
    # uniform noise caps at 2*alpha: c=0.999 privacy < 1.06x the 95% level
    uniform_rows = [r for r in rows if r[1] == "uniform"]
    for name, kind, privacy_at in uniform_rows:
        assert privacy_at[2] < 1.06
    # gaussian keeps growing with confidence (heavier tails of uncertainty)
    gaussian_rows = [r for r in rows if r[1] == "gaussian"]
    for name, kind, privacy_at in gaussian_rows:
        assert privacy_at[2] > 1.5
    # posterior privacy grows with the interval privacy level
    fractions = [p.privacy_fraction for p in posterior.values()]
    assert fractions == sorted(fractions)
