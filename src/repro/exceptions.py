"""Exception hierarchy for the PPDM reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or dtype)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped on its iteration cap, not its tolerance."""


class SchemaError(ReproError, ValueError):
    """A dataset column does not match the declared attribute schema."""


class SerializationError(ValidationError):
    """A snapshot payload does not match the schema it claims to describe.

    Raised by :mod:`repro.serialize` and the service restore paths when a
    stored document is structurally valid JSON but semantically
    inconsistent — e.g. class-conditional counts whose block count
    disagrees with the snapshot's declared class count.  Subclasses
    :class:`ValidationError`, so existing ``except ValidationError``
    callers keep working.
    """


class WireFormatError(ValidationError):
    """A binary wire body is malformed, truncated, or absurdly large.

    Raised by :mod:`repro.service.wire` for frames whose bytes cannot be
    decoded as they claim — bad magic, truncated streams, corrupted
    codec payloads, or headers declaring more cells than the shared
    decode-bomb cap allows.  Subclasses :class:`ValidationError`, so the
    HTTP front end's existing 400 mapping (and every ``except
    ValidationError`` caller) keeps working.
    """


class DecodedSizeError(WireFormatError):
    """A compressed body's decoded size exceeds the configured cap.

    The decompression-bomb signal: the wire bytes were small, but the
    stream would expand past the decoder's explicit decompressed-size
    bound.  The HTTP front end maps it to 413 (the request *entity* is
    too large, just measured after decoding) while other
    :class:`WireFormatError` cases stay 400.
    """


class BenchmarkError(ReproError, RuntimeError):
    """The benchmark orchestration layer hit an unusable state.

    Raised by :mod:`repro.bench` for duplicate experiment ids, unknown
    ids/tags, malformed or version-incompatible ``BENCH_*.json``
    artifacts, and invalid comparator thresholds.
    """


class ClusterError(ReproError, RuntimeError):
    """The multi-worker cluster tier hit an unservable state.

    Raised by :mod:`repro.service.cluster` when a coordinator operation
    needs worker state it cannot get — e.g. ``/train`` while a
    registered worker is unreachable *and* has never synced a partial.
    The HTTP front end maps it to status 503 (the condition is
    operational, not a bad request: the same call succeeds once the
    worker syncs).
    """


class SnapshotError(ReproError, OSError):
    """The durability layer failed to persist or recover a snapshot.

    Raised by :mod:`repro.service.resilience` (and the HTTP front end's
    ``/snapshot`` route) when an atomic snapshot write fails — disk
    full, injected chaos fault, unwritable directory — or when recovery
    finds no loadable generation.  Subclasses :class:`OSError` because
    the proximate cause is an I/O failure, and :class:`ReproError` so a
    single ``except ReproError`` still catches every deliberate error.
    """


class AnalysisError(ReproError, RuntimeError):
    """The static-analysis layer (``ppdm lint``) hit an unusable state.

    Raised by :mod:`repro.analysis` for duplicate checker/rule ids,
    unknown rule selections, and malformed baseline files — *not* for
    findings in analyzed code (those are data, reported as
    :class:`~repro.analysis.Finding`).
    """
