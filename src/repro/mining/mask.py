"""Randomized-response basket disclosure and support recovery.

The classification pipeline randomizes *numeric* values; baskets are
boolean, so the natural randomization is Warner's randomized response:
every bit is kept with probability ``keep_prob`` and flipped otherwise.
Each provider's disclosed basket is then plausibly deniable, yet itemset
supports remain estimable because the distortion of joint bit-patterns is
a known linear map:

    observed_pattern_counts = (M ⊗ ... ⊗ M) @ true_pattern_counts

with the single-bit channel ``M = [[p, 1-p], [1-p, p]]``.  Inverting the
Kronecker power recovers unbiased estimates of the true pattern counts —
in particular the all-ones pattern, i.e. the itemset's support.  This is
the scheme the post-SIGMOD-2000 literature (MASK and successors) settled
on, implemented here as the paper's "future work" extension (E12).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.exceptions import ValidationError
from repro.mining.apriori import _check_matrix, candidate_itemsets
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class RandomizedResponse:
    """Bit-flipping disclosure: keep each bit with probability ``keep_prob``.

    ``keep_prob`` must differ from 0.5 (at exactly 0.5 the disclosure
    carries no information and the channel matrix is singular).
    """

    keep_prob: float

    def __post_init__(self) -> None:
        check_fraction(self.keep_prob, "keep_prob", inclusive_low=True)
        if abs(self.keep_prob - 0.5) < 1e-9:
            raise ValidationError("keep_prob must differ from 0.5")

    @property
    def channel(self) -> np.ndarray:
        """The 2x2 bit channel ``M[observed, true]``."""
        p = self.keep_prob
        return np.array([[p, 1.0 - p], [1.0 - p, p]])

    def randomize(self, baskets, seed=None) -> np.ndarray:
        """Flip each bit independently with probability ``1 - keep_prob``."""
        matrix = _check_matrix(baskets)
        rng = ensure_rng(seed)
        flips = rng.random(matrix.shape) >= self.keep_prob
        return matrix ^ flips

    def privacy_of_bit(self) -> float:
        """Posterior deniability of a disclosed bit.

        Probability that a disclosed 1 is actually a flipped 0 when the
        prior is uniform — 0.5 means full deniability, 0 means none.
        """
        return 1.0 - self.keep_prob


def support_from_pattern_counts(
    response: RandomizedResponse, observed, n_rows: int
) -> float:
    """Channel-invert observed bit-pattern counts into a support estimate.

    ``observed`` holds the ``2^k`` MSB-first pattern counts of an itemset
    over ``n_rows`` randomized baskets (what
    :meth:`MaskMiner.estimate_support` tallies, and what the service's
    :class:`~repro.service.SupportShardSet` accumulates shard by shard).
    The estimator solves ``(M ⊗ ... ⊗ M) t = observed`` and reads the
    all-ones pattern — identical arithmetic wherever the counts came
    from, so offline and service-side estimates agree bit for bit.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.mining.mask import RandomizedResponse, support_from_pattern_counts
    >>> rr = RandomizedResponse(keep_prob=1.0)  # identity channel
    >>> support_from_pattern_counts(rr, np.array([6.0, 2.0]), 8)
    0.25
    """
    counts = np.asarray(observed, dtype=float)
    if counts.ndim != 1 or counts.size < 2 or counts.size & (counts.size - 1):
        raise ValidationError(
            "observed pattern counts must be a 1-D vector of length 2^k "
            f"with k >= 1, got shape {counts.shape}"
        )
    if n_rows < 1:
        raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
    k = counts.size.bit_length() - 1
    channel = response.channel
    kron = np.array([[1.0]])
    for _ in range(k):
        kron = np.kron(kron, channel)
    true_counts = np.linalg.solve(kron, counts)
    # all-ones pattern is the last index (bit order is MSB-first)
    estimate = true_counts[-1] / n_rows
    return float(np.clip(estimate, 0.0, 1.0))


class MaskMiner:
    """Frequent-itemset mining over randomized-response baskets.

    Parameters
    ----------
    response:
        The :class:`RandomizedResponse` that produced the disclosed data.
    max_size:
        Largest itemset size to mine (inverting the channel costs
        ``O(4^k)`` per itemset, so keep this small — 3 or 4).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.mining import RandomizedResponse, MaskMiner, generate_baskets
    >>> baskets = generate_baskets(4000, 8, seed=0)
    >>> rr = RandomizedResponse(keep_prob=0.9)
    >>> disclosed = rr.randomize(baskets, seed=1)
    >>> miner = MaskMiner(rr)
    >>> est = miner.estimate_support(disclosed, {0})
    >>> bool(abs(est - baskets[:, 0].mean()) < 0.05)
    True
    """

    def __init__(self, response: RandomizedResponse, *, max_size: int = 3) -> None:
        if max_size < 1:
            raise ValidationError(f"max_size must be >= 1, got {max_size}")
        self.response = response
        self.max_size = int(max_size)

    def _pattern_counts(self, matrix: np.ndarray, items: list) -> np.ndarray:
        """Counts of the ``2^k`` observed bit patterns over ``items``."""
        k = len(items)
        codes = np.zeros(matrix.shape[0], dtype=np.int64)
        for bit, item in enumerate(items):
            codes |= matrix[:, item].astype(np.int64) << (k - 1 - bit)
        return np.bincount(codes, minlength=2**k).astype(float)

    def estimate_support(self, randomized_baskets, itemset) -> float:
        """Unbiased estimate of an itemset's true support.

        The estimate inverts the randomization channel, so it can fall
        slightly outside ``[0, 1]`` by sampling noise; it is clipped.
        """
        matrix = _check_matrix(randomized_baskets)
        items = sorted(itemset)
        if not items:
            return 1.0
        if max(items) >= matrix.shape[1] or min(items) < 0:
            raise ValidationError(
                f"itemset {items} out of range for {matrix.shape[1]} items"
            )
        if len(items) > self.max_size:
            raise ValidationError(
                f"itemset size {len(items)} exceeds max_size={self.max_size}"
            )
        observed = self._pattern_counts(matrix, items)
        return support_from_pattern_counts(self.response, observed, matrix.shape[0])

    def frequent_itemsets(self, randomized_baskets, min_support: float) -> dict:
        """Level-wise Apriori over *estimated* supports.

        Mirrors :func:`repro.mining.apriori.frequent_itemsets`, but all
        supports are channel-corrected estimates from randomized baskets.
        """
        matrix = _check_matrix(randomized_baskets)
        min_support = check_fraction(min_support, "min_support")
        n_items = matrix.shape[1]

        result: dict = {}
        current = {}
        for j in range(n_items):
            estimate = self.estimate_support(matrix, {j})
            if estimate >= min_support:
                current[frozenset({j})] = estimate
        size = 1
        while current and size <= self.max_size:
            result.update(current)
            size += 1
            if size > self.max_size:
                break
            next_level: dict = {}
            for candidate in candidate_itemsets(set(current), size):
                estimate = self.estimate_support(matrix, candidate)
                if estimate >= min_support:
                    next_level[candidate] = estimate
            current = next_level
        return result
