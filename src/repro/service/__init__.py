"""Sharded server-side aggregation of randomized disclosures.

The paper's deployment is a server reconstructing distributions from
millions of independently randomized disclosures.  This subpackage is
that server's aggregation tier:

* :mod:`repro.service.shards` — :class:`HistogramShard` /
  :class:`ShardSet`: mergeable noise-expanded histogram partials with a
  fused flat-offset bincount (:class:`ColumnLayout` /
  :class:`PreparedBatch`) and striped per-thread accumulators, so N
  ingestion workers accumulate without contention and a refresh merges
  in O(shards x bins),
* :mod:`repro.service.wire` — the ``application/x-ppdm-columns`` binary
  columnar wire format (:func:`encode_columns` / :func:`decode_columns`
  / :func:`iter_frames`): raw little-endian float64 columns decoded
  zero-copy via ``np.frombuffer``, quantized int8/int16 bin-index
  columns (:func:`encode_quantized`, wire v5), per-body compression
  negotiated over ``Content-Encoding`` (:func:`compress_payload` /
  :func:`decompress_payload`, bounded by an explicit decoded-size cap),
  plus an NDJSON fallback,
* :mod:`repro.service.service` — :class:`AggregationService`: the facade
  gluing the shard set to one shared
  :class:`~repro.core.engine.ReconstructionEngine` (one kernel cache
  across all attributes), with warm-started ``estimate()`` and
  snapshot/restore through :mod:`repro.serialize`,
* :mod:`repro.service.httpd` — a stdlib HTTP front end behind
  ``ppdm serve``, negotiating JSON / NDJSON / columnar ingest bodies
  per Content-Type over keep-alive connections,
* :mod:`repro.service.training` — :class:`TrainingService`: the
  training tier, growing the paper's Global/ByClass/Local decision
  trees directly from the service-held class-conditional aggregates
  (``POST /train`` / ``GET /model`` / ``ppdm train``),
* :mod:`repro.service.support` — :class:`SupportShard` /
  :class:`SupportShardSet`: the mining workload's accumulators — joint
  bit-pattern counts of MASK-randomized baskets with the same
  stripe/lock/merge machinery as the histogram shards, marginalizable
  to any itemset's observed pattern counts bit-identically at any
  shard count,
* :mod:`repro.service.mining` — :class:`MiningService`: level-wise
  MASK Apriori over the service-held pattern counts, bit-identical to
  the offline :class:`~repro.mining.MaskMiner` pipeline
  (``POST /mine`` / ``GET /rules`` / ``ppdm mine``), with rule sets
  snapshotting as ``mined_rules`` (:class:`MinedRules`),
* :mod:`repro.service.cluster` — the multi-node tier behind
  ``ppdm serve --workers N``: worker processes ingest independently and
  ship cumulative merged partials upstream as version 3 wire frames
  (:func:`encode_partial` / :class:`PartialShipper`), a
  :class:`ClusterCoordinator` replaces each worker's dedicated shard
  slot idempotently, and estimates/training over the union stay
  bit-identical to one process fed the same records,
* :mod:`repro.service.faults` — :class:`FaultPlan`: deterministic,
  seeded fault injection (drop/delay/5xx a response, truncate a wire
  frame, fail a snapshot write, SIGKILL a worker) threaded through the
  HTTP front end, the shipper, registration, and the supervisor so
  chaos runs replay bit-identically,
* :mod:`repro.service.resilience` — crash-safe durability (atomic
  fsynced snapshot writes with an integrity digest, one rotated
  generation, newest-valid-generation recovery, periodic
  auto-snapshots) plus the degradation primitives:
  :class:`CircuitBreaker` (closed/open/half-open pushes),
  :class:`AdmissionController` (bounded in-flight ingest, 429 +
  Retry-After), and :class:`RestartBudget` (supervised worker restarts
  under a sliding-window cap).

Estimates are bit-identical to a single-stream
:class:`~repro.core.streaming.StreamingReconstructor` fed the same
disclosures — sharding, striping, class partitioning, and wire format
change the ingestion topology, never the math — and service-trained
trees are bit-identical to the offline training pipeline fed the same
randomized rows.
"""

from repro.service.cluster import (
    ClusterCoordinator,
    PartialShipper,
    export_sync_body,
)
from repro.service.faults import FaultPlan
from repro.service.httpd import ServiceHTTPServer
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    RestartBudget,
)
from repro.service.mining import MinedRules, MiningService, mining_from_spec
from repro.service.service import AggregationService, service_from_spec
from repro.service.shards import (
    AttributeSpec,
    ColumnLayout,
    HistogramShard,
    PreparedBatch,
    ShardSet,
)
from repro.service.support import (
    PreparedBaskets,
    SupportShard,
    SupportShardSet,
)
from repro.service.training import TrainedModel, TrainingService
from repro.service.wire import (
    compress_payload,
    decode_baskets,
    decode_columns,
    decode_labeled,
    decode_partial,
    decompress_payload,
    encode_baskets,
    encode_columns,
    encode_partial,
    encode_quantized,
    iter_basket_frames,
    iter_frames,
    iter_labeled_frames,
    iter_labeled_ndjson,
    resolve_codec,
    split_partial,
    supported_codecs,
)

__all__ = [
    "AdmissionController",
    "AggregationService",
    "AttributeSpec",
    "CircuitBreaker",
    "ClusterCoordinator",
    "ColumnLayout",
    "FaultPlan",
    "HistogramShard",
    "MinedRules",
    "MiningService",
    "PartialShipper",
    "PreparedBaskets",
    "PreparedBatch",
    "RestartBudget",
    "ShardSet",
    "ServiceHTTPServer",
    "SupportShard",
    "SupportShardSet",
    "TrainedModel",
    "TrainingService",
    "export_sync_body",
    "mining_from_spec",
    "service_from_spec",
    "compress_payload",
    "decode_baskets",
    "decode_columns",
    "decode_labeled",
    "decode_partial",
    "decompress_payload",
    "encode_baskets",
    "encode_columns",
    "encode_partial",
    "encode_quantized",
    "iter_basket_frames",
    "iter_frames",
    "iter_labeled_frames",
    "iter_labeled_ndjson",
    "resolve_codec",
    "split_partial",
    "supported_codecs",
]
