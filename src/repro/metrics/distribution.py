"""Distances between discrete distributions on a shared interval grid.

These power the reconstruction-quality experiments (E1–E3, E10): how far
is the reconstructed distribution from the original, compared with how far
the raw randomized distribution is?
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.exceptions import ValidationError
from repro.utils.validation import check_probability_vector


def _as_probs(dist) -> np.ndarray:
    if isinstance(dist, HistogramDistribution):
        return dist.probs
    return check_probability_vector(dist, "distribution")


def _pair(p, q) -> tuple:
    p, q = _as_probs(p), _as_probs(q)
    if p.shape != q.shape:
        raise ValidationError(
            f"distributions must share a grid, got lengths {p.size} and {q.size}"
        )
    return p, q


def l1_distance(p, q) -> float:
    """Sum of absolute probability differences (in ``[0, 2]``)."""
    p, q = _pair(p, q)
    return float(np.abs(p - q).sum())


def l2_distance(p, q) -> float:
    """Euclidean distance between probability vectors."""
    p, q = _pair(p, q)
    return float(np.linalg.norm(p - q))


def total_variation(p, q) -> float:
    """Total-variation distance (half the L1, in ``[0, 1]``)."""
    return 0.5 * l1_distance(p, q)


def kolmogorov_distance(p, q) -> float:
    """Largest absolute CDF difference (Kolmogorov–Smirnov statistic)."""
    p, q = _pair(p, q)
    return float(np.abs(np.cumsum(p) - np.cumsum(q)).max())


def hellinger_distance(p, q) -> float:
    """Hellinger distance ``sqrt(1 - sum sqrt(p q))`` (in ``[0, 1]``)."""
    p, q = _pair(p, q)
    affinity = float(np.sqrt(p * q).sum())
    return float(np.sqrt(max(1.0 - affinity, 0.0)))
