"""Reproduction of "Privacy-Preserving Data Mining" (SIGMOD 2000).

The package implements the paper's full pipeline — value distortion,
confidence-interval privacy, Bayesian distribution reconstruction, and
decision-tree classification over randomized data (Global / ByClass /
Local) — plus the Quest synthetic workload it was evaluated on, a
sharded server-side aggregation tier (:mod:`repro.service`), and the
extensions documented on the docs site (``docs/``).

Quickstart
----------
>>> from repro import quest, PrivacyPreservingClassifier
>>> train = quest.generate(2_000, function=1, seed=0)
>>> test = quest.generate(500, function=1, seed=1)
>>> clf = PrivacyPreservingClassifier(strategy="byclass", privacy=1.0, seed=2)
>>> clf.fit(train)
PrivacyPreservingClassifier(strategy='byclass')
>>> float(clf.score(test)) > 0.8
True
"""

from repro.core import (
    BayesReconstructor,
    BreachAnalysis,
    EMReconstructor,
    EngineConfig,
    GaussianRandomizer,
    HistogramDistribution,
    KernelCache,
    NullRandomizer,
    Partition,
    ReconstructionEngine,
    ReconstructionProblem,
    ReconstructionResult,
    StreamingReconstructor,
    UniformRandomizer,
    ValueClassMembership,
    amplification_factor,
    breach_analysis,
    correct_records,
    noise_for_privacy,
    posterior_privacy,
    privacy_of_randomizer,
)

__version__ = "1.0.0"

__all__ = [
    "Partition",
    "HistogramDistribution",
    "UniformRandomizer",
    "GaussianRandomizer",
    "ValueClassMembership",
    "NullRandomizer",
    "BayesReconstructor",
    "EMReconstructor",
    "EngineConfig",
    "KernelCache",
    "ReconstructionEngine",
    "ReconstructionProblem",
    "StreamingReconstructor",
    "ReconstructionResult",
    "correct_records",
    "noise_for_privacy",
    "privacy_of_randomizer",
    "posterior_privacy",
    "breach_analysis",
    "amplification_factor",
    "BreachAnalysis",
    "PrivacyPreservingClassifier",
    "PrivacyPreservingNaiveBayes",
    "DecisionTreeClassifier",
    "NaiveBayesClassifier",
    "AggregationService",
    "AttributeSpec",
    "ShardSet",
    "quest",
    "shapes",
    "__version__",
]

#: lazily-imported attributes: keeps `import repro` light and avoids
#: circular imports while subpackages re-export through the package root
_LAZY = {
    "PrivacyPreservingClassifier": (
        "repro.tree.pipeline",
        "PrivacyPreservingClassifier",
    ),
    "DecisionTreeClassifier": ("repro.tree", "DecisionTreeClassifier"),
    "PrivacyPreservingNaiveBayes": ("repro.bayes", "PrivacyPreservingNaiveBayes"),
    "NaiveBayesClassifier": ("repro.bayes", "NaiveBayesClassifier"),
    "AggregationService": ("repro.service", "AggregationService"),
    "AttributeSpec": ("repro.service", "AttributeSpec"),
    "ShardSet": ("repro.service", "ShardSet"),
    "quest": ("repro.datasets", "quest"),
    "shapes": ("repro.datasets", "shapes"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        if attribute in ("quest", "shapes"):
            return importlib.import_module(f"repro.datasets.{attribute}")
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
