"""E6 — Classification accuracy at 100 % privacy, Gaussian noise (paper §5).

The Gaussian twin of E5.  At matched 95 %-confidence privacy, Gaussian
noise concentrates most of its mass near zero, so the Randomized baseline
is much less damaged than under uniform noise and the reconstruction gap
narrows — consistent with the paper's observation that Gaussian noise is
the gentler randomizer per unit of stated privacy.  The shape to hold:
ByClass at least matches Randomized overall and clearly wins on some
functions, while tracking Original on Fn1.
"""

from __future__ import annotations

from _common import once, report

from repro.experiments import ClassificationConfig, run_strategy_comparison
from repro.experiments.config import scaled
from repro.experiments.reporting import accuracy_matrix

CONFIG = ClassificationConfig(
    functions=(1, 2, 3, 4, 5),
    strategies=("original", "randomized", "global", "byclass"),
    noise="gaussian",
    privacy=1.0,
    n_train=scaled(10_000),
    n_test=scaled(3_000),
    seed=600,
)


def test_e6_accuracy_100privacy_gaussian(benchmark):
    rows = once(benchmark, lambda: run_strategy_comparison(CONFIG))
    report(
        "e6_accuracy_100privacy_gaussian",
        "E6: accuracy (%) at 100% privacy, gaussian noise, "
        f"n_train={CONFIG.n_train}\n" + accuracy_matrix(rows),
    )

    acc = {(r.function, r.strategy): r.accuracy for r in rows}
    wins = 0
    for fn in CONFIG.functions:
        # never materially worse than the randomized baseline ...
        assert acc[(fn, "byclass")] > acc[(fn, "randomized")] - 0.07, fn
        wins += acc[(fn, "byclass")] > acc[(fn, "randomized")]
    # ... and clearly better on several functions
    assert wins >= 2
    assert acc[(1, "byclass")] > acc[(1, "original")] - 0.08
