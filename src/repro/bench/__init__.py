"""Benchmark orchestration subsystem.

Turns the ``benchmarks/bench_e*.py`` scripts into a measurable system:

* :mod:`repro.bench.registry` — the ``@experiment`` decorator, the
  process-global registry, and deterministic discovery,
* :mod:`repro.bench.runner` — measured (wall clock, peak RSS) serial or
  process-pool execution with deterministic per-experiment seeding,
* :mod:`repro.bench.artifacts` — the schema-versioned ``BENCH_<id>.json``
  documents every run emits,
* :mod:`repro.bench.compare` — the regression gate diffing two artifact
  directories (``ppdm bench compare A/ B/ --fail-on-regression 1.3x``).

The CLI front-end is ``ppdm bench run|list|compare``.
"""

from repro.bench.artifacts import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    BenchArtifact,
    load_artifact,
    load_artifact_dir,
    write_artifact,
)
from repro.bench.compare import (
    ComparisonReport,
    Finding,
    compare_artifacts,
    compare_dirs,
    parse_wall_factor,
)
from repro.bench.registry import (
    REGISTRY,
    Experiment,
    ExperimentRegistry,
    discover,
    experiment,
)
from repro.bench.runner import ExperimentContext, derive_seed, run_experiments

__all__ = [
    "ARTIFACT_PREFIX",
    "SCHEMA_VERSION",
    "BenchArtifact",
    "ComparisonReport",
    "Experiment",
    "ExperimentContext",
    "ExperimentRegistry",
    "Finding",
    "REGISTRY",
    "compare_artifacts",
    "compare_dirs",
    "derive_seed",
    "discover",
    "experiment",
    "load_artifact",
    "load_artifact_dir",
    "parse_wall_factor",
    "run_experiments",
    "write_artifact",
]
