"""Deterministic, seeded fault injection for the serving stack.

Chaos engineering is only useful when a failing run can be replayed:
this module gives the serving tier named *injection points* (an HTTP
response about to be sent, a shipper push about to go on the wire, a
snapshot write, a live worker process) whose behaviour is driven by a
:class:`FaultPlan` — a seed plus per-point action probabilities.  Every
decision is a pure function of ``(seed, point key, attempt number)``
via SHA-256, so the *n*-th request at a point sees the same fault on
every run, on every machine, regardless of thread scheduling.  No
global RNG state is consulted and no RNG object is constructed, which
keeps the plan compatible with the project's determinism lints.

A plan is a JSON-able spec::

    {"seed": 7,
     "points": {"httpd.response:/partial": {"error": 0.5, "max": 6},
                "shipper.push": {"truncate": 0.25, "drop": 0.25},
                "snapshot.write": {"fail": 1.0, "max": 1}}}

Point names used by the stack:

``httpd.response``
    Consulted by :class:`~repro.service.httpd.ServiceHTTPServer`'s
    handler once the request body has been read, with the request path
    as qualifier (so ``httpd.response:/partial`` targets only partial
    syncs).  Actions: ``drop`` (close the connection without a
    response), ``error`` (reply 503 + ``Retry-After``), ``delay``.
``shipper.push``
    Consulted by :class:`~repro.service.cluster.PartialShipper` before
    each push attempt.  Actions: ``truncate`` (ship a cut-off frame),
    ``drop`` (fail the attempt without touching the wire), ``delay``.
``snapshot.write``
    Consulted by the durability layer inside the snapshot lock.
    Action: ``fail`` (raise before any byte is written).
``supervisor.kill``
    Consulted by :class:`~repro.service.cluster.ClusterSupervisor`'s
    monitor, with the worker index as qualifier.  Action: ``kill``
    (SIGKILL the live worker process).
``register.request``
    Consulted by :func:`~repro.service.cluster.register_worker` before
    each registration attempt.  Actions: ``drop``, ``delay``.

Examples
--------
>>> from repro.service.faults import FaultPlan
>>> plan = FaultPlan({"seed": 7, "points": {"demo": {"error": 1.0, "max": 2}}})
>>> [a.kind if a else None
...  for a in (plan.decide("demo"), plan.decide("demo"), plan.decide("demo"))]
['error', 'error', None]
>>> FaultPlan({"seed": 7, "points": {"demo": {"error": 0.5}}}).decide("other")
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

from repro.exceptions import ValidationError

__all__ = ["ACTION_KINDS", "FaultAction", "FaultPlan"]

#: action kinds in the (fixed) order probability mass is assigned
ACTION_KINDS = ("drop", "error", "delay", "truncate", "fail", "kill")

#: environment variable holding a plan spec (inline JSON or ``@path``)
PLAN_ENV_VAR = "PPDM_FAULT_PLAN"

_POINT_OPTIONS = ("max", "status", "delay_seconds", "fraction")


@dataclass(frozen=True)
class FaultAction:
    """One fault the plan decided to inject.

    Attributes
    ----------
    kind:
        One of :data:`ACTION_KINDS`.
    point:
        The spec key that matched (qualified form when one existed).
    index:
        0-based count of faults fired at this point so far.
    value:
        Action parameter — delay seconds for ``delay``, surviving
        fraction of the frame for ``truncate``, else ``0.0``.
    status:
        HTTP status for ``error`` actions (default 503).
    """

    kind: str
    point: str
    index: int
    value: float = 0.0
    status: int = 503


class _Point:
    """Mutable per-point state: configured rates plus fire counters."""

    __slots__ = ("rates", "max_fires", "status", "delay_seconds",
                 "fraction", "attempts", "fired")

    def __init__(self, key: str, options: Mapping[str, object]) -> None:
        if not isinstance(options, Mapping):
            raise ValidationError(
                f"fault point {key!r} must map actions to rates, "
                f"got {type(options).__name__}"
            )
        self.rates: dict[str, float] = {}
        self.max_fires: Optional[int] = None
        self.status = 503
        self.delay_seconds = 0.05
        self.fraction = 0.5
        self.attempts = 0
        self.fired = 0
        for name, raw in options.items():
            if name == "max":
                self.max_fires = int(raw)  # type: ignore[call-overload]
                if self.max_fires < 0:
                    raise ValidationError(
                        f"fault point {key!r}: max must be >= 0"
                    )
            elif name == "status":
                self.status = int(raw)  # type: ignore[call-overload]
            elif name == "delay_seconds":
                self.delay_seconds = float(raw)  # type: ignore[arg-type]
            elif name == "fraction":
                self.fraction = float(raw)  # type: ignore[arg-type]
                if not 0.0 <= self.fraction <= 1.0:
                    raise ValidationError(
                        f"fault point {key!r}: fraction must be in [0, 1]"
                    )
            elif name in ACTION_KINDS:
                rate = float(raw)  # type: ignore[arg-type]
                if not 0.0 <= rate <= 1.0:
                    raise ValidationError(
                        f"fault point {key!r}: rate for {name!r} must be "
                        f"in [0, 1], got {rate}"
                    )
                self.rates[str(name)] = rate
            else:
                raise ValidationError(
                    f"fault point {key!r}: unknown entry {name!r} "
                    f"(actions: {', '.join(ACTION_KINDS)}; "
                    f"options: {', '.join(_POINT_OPTIONS)})"
                )
        if sum(self.rates.values()) > 1.0 + 1e-12:
            raise ValidationError(
                f"fault point {key!r}: action rates sum past 1.0"
            )

    def value_for(self, kind: str) -> float:
        if kind == "delay":
            return self.delay_seconds
        if kind == "truncate":
            return self.fraction
        return 0.0


def _unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one attempt."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded schedule of faults over named injection points.

    Thread-safe: injection points are consulted from handler threads,
    shipper threads, and the supervisor's monitor concurrently; the
    per-point attempt counters are advanced under one lock.

    Examples
    --------
    >>> from repro.service.faults import FaultPlan
    >>> plan = FaultPlan(
    ...     {"seed": 7, "points": {"demo": {"drop": 1.0, "max": 1}}}
    ... )
    >>> plan.decide("demo").kind, plan.decide("demo")
    ('drop', None)
    >>> plan.stats()
    {'demo': {'attempts': 2, 'fired': 1}}
    """

    def __init__(self, spec: Mapping[str, object]) -> None:
        if not isinstance(spec, Mapping):
            raise ValidationError(
                f"fault plan spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = set(spec) - {"seed", "points"}
        if unknown:
            raise ValidationError(
                f"fault plan spec has unknown keys {sorted(unknown)}"
            )
        self.seed = int(spec.get("seed", 0))  # type: ignore[call-overload]
        points = spec.get("points", {})
        if not isinstance(points, Mapping):
            raise ValidationError("fault plan 'points' must be a mapping")
        self._points = {
            str(key): _Point(str(key), options)
            for key, options in points.items()
        }
        self._spec = copy.deepcopy(dict(spec))
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: Optional[Mapping[str, object]]) -> Optional["FaultPlan"]:
        """Build a plan from a spec dict; ``None``/empty spec -> ``None``."""
        if not spec:
            return None
        return cls(spec)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """Build a plan from ``PPDM_FAULT_PLAN`` if set, else ``None``.

        The variable holds either inline JSON or ``@/path/to/plan.json``.
        """
        env = os.environ if environ is None else environ
        raw = env.get(PLAN_ENV_VAR, "").strip()
        if not raw:
            return None
        if raw.startswith("@"):
            path = Path(raw[1:])
            try:
                raw = path.read_text()
            except OSError as exc:
                raise ValidationError(
                    f"cannot read fault plan file {str(path)!r}: {exc}"
                ) from exc
        try:
            spec = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{PLAN_ENV_VAR} is not valid JSON: {exc}"
            ) from exc
        return cls.from_spec(spec)

    def to_spec(self) -> dict:
        """The (immutable) spec this plan was built from.

        Ship this to spawned worker processes — each side rebuilds its
        own plan, so counters are per-process but the schedule each
        process walks is identical run to run.
        """
        return copy.deepcopy(self._spec)

    def decide(
        self, point: str, qualifier: Optional[str] = None
    ) -> Optional[FaultAction]:
        """Consult the plan at ``point``; return the fault to inject, if any.

        A qualified key (``f"{point}:{qualifier}"``) takes precedence
        over the bare point name; a point the spec never names costs
        nothing and returns ``None``.
        """
        key = None
        if qualifier is not None and f"{point}:{qualifier}" in self._points:
            key = f"{point}:{qualifier}"
        elif point in self._points:
            key = point
        if key is None:
            return None
        state = self._points[key]
        with self._lock:
            attempt = state.attempts
            state.attempts += 1
            if state.max_fires is not None and state.fired >= state.max_fires:
                return None
            u = _unit(self.seed, key, attempt)
            cumulative = 0.0
            for kind in ACTION_KINDS:
                rate = state.rates.get(kind)
                if not rate:
                    continue
                cumulative += rate
                if u < cumulative:
                    index = state.fired
                    state.fired += 1
                    return FaultAction(
                        kind=kind,
                        point=key,
                        index=index,
                        value=state.value_for(kind),
                        status=state.status,
                    )
        return None

    def stats(self) -> dict:
        """Per-point ``{"attempts": ..., "fired": ...}`` counters."""
        with self._lock:
            return {
                key: {"attempts": state.attempts, "fired": state.fired}
                for key, state in sorted(self._points.items())
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, "
            f"points={sorted(self._points)})"
        )
