"""Sharded pattern-count accumulators for association mining.

The mining analogue of :mod:`repro.service.shards`: where histogram
shards accumulate per-interval counts of randomized *numeric*
disclosures, a :class:`SupportShard` accumulates the joint bit-pattern
counts of randomized *baskets*.  Each ingested transaction is folded
into one counter — the count of its full ``n_items``-bit row pattern
(MSB-first, item 0 in the top bit) — so a shard holds ``2^n_items``
counters however long the stream runs.

That full pattern table is the exact sufficient statistic for MASK
support estimation over **any** itemset: the ``2^k`` observed pattern
counts of an itemset are marginal sums of the full table, and because
pattern counts are integers held in float64, marginalizing merged
shards is bit-identical to tallying the whole stream in one pass
(integer sums in float64 are exact in any order).  Level-wise Apriori
can therefore discover candidates *after* ingestion — the service never
needs to know the itemsets in advance — and estimates agree bit for bit
with the offline :class:`~repro.mining.MaskMiner` at any shard count.

Concurrency follows :class:`~repro.service.shards.HistogramShard`
exactly: locating a batch (packing rows into pattern codes) is pure and
happens outside every lock; the accumulate lands in the calling
thread's private *stripe* under its uncontended stripe lock; readers
merge the stripes.  Merges are associative and commutative — shards are
just partial sums.

The ``2^n_items`` table is why :data:`MAX_TRACKED_ITEMS` caps the item
universe at 16 (65536 float64 counters = 512 KiB per stripe); wider
catalogues need the offline miner or an item-bucketing front end.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "MAX_TRACKED_ITEMS",
    "PreparedBaskets",
    "SupportShard",
    "SupportShardSet",
    "marginal_pattern_counts",
]

#: widest item universe a pattern-complete shard will track (2^16 counters)
MAX_TRACKED_ITEMS = 16


def _check_n_items(n_items: int) -> int:
    if not isinstance(n_items, (int, np.integer)) or isinstance(n_items, bool):
        raise ValidationError(
            f"n_items must be an integer, got {type(n_items).__name__}"
        )
    if not 1 <= n_items <= MAX_TRACKED_ITEMS:
        raise ValidationError(
            f"a support shard tracks 1..{MAX_TRACKED_ITEMS} items "
            f"(2^n_items counters), got {n_items}"
        )
    return int(n_items)


def _check_basket_matrix(baskets: object, n_items: int) -> np.ndarray:
    matrix = np.asarray(baskets)
    if matrix.ndim != 2:
        raise ValidationError(
            f"baskets must be a 2-D boolean matrix, got shape {matrix.shape}"
        )
    if matrix.dtype != np.bool_:
        raise ValidationError(
            f"baskets must be a boolean matrix, got dtype {matrix.dtype}"
        )
    if matrix.shape[1] != n_items:
        raise ValidationError(
            f"baskets have {matrix.shape[1]} item column(s); this shard "
            f"tracks {n_items}"
        )
    return matrix


def marginal_pattern_counts(full, n_items: int, itemset) -> np.ndarray:
    """Marginalize a full ``2^n_items`` pattern table onto one itemset.

    Returns the itemset's ``2^k`` observed pattern counts, MSB-first
    (items sorted ascending, first item in the top bit) — exactly the
    tally :meth:`repro.mining.MaskMiner.estimate_support` computes from
    a basket matrix, because marginal sums of integer counts held in
    float64 are exact in any order.  Shared by
    :meth:`SupportShardSet.pattern_counts_for` and the
    :class:`~repro.service.MiningService`'s level-wise miner (which
    marginalizes one consistent snapshot of the merged table).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.support import marginal_pattern_counts
    >>> full = np.array([1.0, 0.0, 2.0, 3.0])  # patterns 00, 01, 10, 11
    >>> marginal_pattern_counts(full, 2, {0}).tolist()
    [1.0, 5.0]
    """
    n_items = _check_n_items(n_items)
    counts = np.asarray(full, dtype=float)
    if counts.shape != (1 << n_items,):
        raise ValidationError(
            f"full pattern table for {n_items} item(s) must have "
            f"{1 << n_items} entries, got shape {counts.shape}"
        )
    items = sorted(itemset)
    k = len(items)
    if k < 1:
        raise ValidationError("pattern counts need a non-empty itemset")
    if len(set(items)) != k:
        raise ValidationError(f"itemset {items} repeats an item")
    for item in items:
        if not isinstance(item, (int, np.integer)) or isinstance(item, bool):
            raise ValidationError(f"item ids must be integers, got {item!r}")
        if not 0 <= item < n_items:
            raise ValidationError(
                f"itemset {items} out of range for {n_items} items"
            )
    patterns = np.arange(counts.size, dtype=np.int64)
    projected = np.zeros_like(patterns)
    for bit, item in enumerate(items):
        projected |= ((patterns >> (n_items - 1 - item)) & 1) << (k - 1 - bit)
    return np.bincount(projected, weights=counts, minlength=1 << k)


class PreparedBaskets:
    """A basket batch located into full-row pattern codes (pure stage).

    The mining twin of :class:`~repro.service.shards.PreparedBatch`:
    ``codes`` holds one MSB-first ``n_items``-bit integer per
    transaction, ready for the fused ``np.bincount`` accumulate.  Built
    outside every lock by :meth:`SupportShard.prepare`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service import SupportShard
    >>> shard = SupportShard(2)
    >>> prepared = shard.prepare(np.array([[True, True], [False, True]]))
    >>> prepared.codes.tolist()  # MSB-first row patterns: 0b11, 0b01
    [3, 1]
    >>> shard.ingest_prepared(prepared)
    2
    """

    __slots__ = ("n_items", "codes", "total")

    def __init__(self, n_items: int, codes: np.ndarray, total: int) -> None:
        self.n_items = n_items
        self.codes = codes
        self.total = total


class _SupportStripe:
    """One writer thread's private pattern-count accumulator."""

    __slots__ = ("counts", "seen", "lock")

    def __init__(self, n_patterns: int) -> None:
        self.counts = np.zeros(n_patterns)
        self.seen = 0
        # owned by one writer thread, so acquiring it on the hot path
        # never contends; readers take it briefly while merging stripes
        self.lock = threading.Lock()


class SupportShard:
    """One worker's running pattern counts over randomized baskets.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.support import SupportShard
    >>> shard = SupportShard(2)
    >>> shard.ingest(np.array([[True, True], [True, False], [True, True]]))
    3
    >>> shard.pattern_counts().tolist()  # patterns 00, 01, 10, 11
    [0.0, 0.0, 1.0, 2.0]
    """

    def __init__(self, n_items: int) -> None:
        self._n_items = _check_n_items(n_items)
        self._stripes: dict = {}
        self._stripes_lock = threading.Lock()

    @property
    def n_items(self) -> int:
        """Size of the item universe this shard tracks patterns over."""
        return self._n_items

    def _stripe(self) -> _SupportStripe:
        """The calling thread's stripe, created on first use."""
        ident = threading.get_ident()
        stripe = self._stripes.get(ident)
        if stripe is None:
            with self._stripes_lock:
                stripe = self._stripes.get(ident)
                if stripe is None:
                    stripe = _SupportStripe(1 << self._n_items)
                    self._stripes[ident] = stripe
        return stripe

    def _stripes_snapshot(self) -> tuple:
        with self._stripes_lock:
            return tuple(self._stripes.values())

    def prepare(self, baskets: object) -> PreparedBaskets:
        """Pack a basket batch into pattern codes, outside any lock."""
        matrix = _check_basket_matrix(baskets, self._n_items)
        codes = np.zeros(matrix.shape[0], dtype=np.int64)
        for item in range(self._n_items):
            codes |= matrix[:, item].astype(np.int64) << (
                self._n_items - 1 - item
            )
        return PreparedBaskets(self._n_items, codes, matrix.shape[0])

    def ingest(self, baskets: object) -> int:
        """Absorb a boolean basket matrix; return transactions added."""
        return self.ingest_prepared(self.prepare(baskets))

    def ingest_prepared(self, prepared: PreparedBaskets) -> int:
        """Absorb a :class:`PreparedBaskets`; return transactions added.

        One fused ``np.bincount`` tallies the batch's patterns, then the
        calling thread's stripe absorbs them under its (uncontended)
        stripe lock, keeping each batch atomic with respect to readers.
        """
        if not isinstance(prepared, PreparedBaskets):
            raise ValidationError(
                "ingest_prepared() takes a PreparedBaskets (from prepare()); "
                f"got {type(prepared).__name__}"
            )
        if prepared.n_items != self._n_items:
            raise ValidationError(
                f"prepared baskets were packed over {prepared.n_items} "
                f"item(s); this shard tracks {self._n_items}"
            )
        if prepared.total == 0:
            return 0
        binned = np.bincount(prepared.codes, minlength=1 << self._n_items)
        stripe = self._stripe()
        with stripe.lock:
            stripe.counts += binned
            stripe.seen += prepared.total
        return prepared.total

    @property
    def n_seen(self) -> int:
        """Transactions absorbed so far."""
        total = 0
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                total += stripe.seen
        return total

    def pattern_counts(self) -> np.ndarray:
        """Merged ``2^n_items`` pattern counts (a copy) over the stripes."""
        counts = np.zeros(1 << self._n_items)
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                counts += stripe.counts
        return counts

    def merge_from(self, other: "SupportShard") -> "SupportShard":
        """Fold another shard's pattern counts into this one.

        The merge is a vector sum, so it is associative, commutative,
        and has the fresh shard as identity — shards are partial sums.
        """
        if not isinstance(other, SupportShard):
            raise ValidationError(
                f"can only merge SupportShard, got {type(other).__name__}"
            )
        if other._n_items != self._n_items:
            raise ValidationError(
                f"cannot merge shards over different item universes "
                f"({other._n_items} vs {self._n_items})"
            )
        counts = other.pattern_counts()
        seen = other.n_seen
        stripe = self._stripe()
        with stripe.lock:
            stripe.counts += counts
            stripe.seen += seen
        return self

    def clear(self) -> None:
        """Zero all pattern counts."""
        for stripe in self._stripes_snapshot():
            with stripe.lock:
                stripe.counts[:] = 0.0
                stripe.seen = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SupportShard(n_items={self._n_items}, records={self.n_seen})"


class SupportShardSet:
    """A fixed number of :class:`SupportShard` over one item universe.

    Writers either address a shard explicitly (``shard=i``) or let the
    set route round-robin; either way the accumulate is contention-free
    (striped per writer thread).  :meth:`merged_patterns` sums the
    per-shard tables in O(shards x 2^n_items), and
    :meth:`pattern_counts_for` marginalizes the merged table down to one
    itemset's ``2^k`` observed counts — **bit-identical**, at any shard
    count and batch interleaving, to tallying the whole stream at once,
    because integer counts in float64 sum exactly in any order.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service.support import SupportShardSet
    >>> shards = SupportShardSet(3, n_shards=2)
    >>> shards.ingest(np.array([[True, True, False]]), shard=0)
    1
    >>> shards.ingest(np.array([[True, False, False]]), shard=1)
    1
    >>> shards.pattern_counts_for((0,)).tolist()  # item 0: never, always
    [0.0, 2.0]
    >>> shards.n_seen
    2
    """

    def __init__(self, n_items: int, n_shards: int = 1) -> None:
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._n_items = _check_n_items(n_items)
        self._shards = tuple(
            SupportShard(self._n_items) for _ in range(int(n_shards))
        )
        self._route = 0
        self._route_lock = threading.Lock()

    @property
    def n_items(self) -> int:
        """Size of the shared item universe."""
        return self._n_items

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> SupportShard:
        """The ``index``-th shard (for one-worker-per-shard deployments)."""
        if not 0 <= index < len(self._shards):
            raise ValidationError(
                f"shard index {index} out of range [0, {len(self._shards)})"
            )
        return self._shards[index]

    def __iter__(self):
        return iter(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def prepare(self, baskets: object) -> PreparedBaskets:
        """Pack a basket batch into pattern codes, outside any lock."""
        return self._shards[0].prepare(baskets)

    def ingest(self, baskets: object, *, shard: int | None = None) -> int:
        """Route a basket batch to a shard (round-robin unless pinned)."""
        return self.ingest_prepared(self.prepare(baskets), shard=shard)

    def ingest_prepared(
        self, prepared: PreparedBaskets, *, shard: int | None = None
    ) -> int:
        """Route a :class:`PreparedBaskets` to a shard and accumulate it."""
        if shard is None:
            with self._route_lock:
                shard = self._route
                self._route = (self._route + 1) % len(self._shards)
        return self.shard(shard).ingest_prepared(prepared)

    @property
    def n_seen(self) -> int:
        """Transactions absorbed across all shards."""
        return sum(shard.n_seen for shard in self._shards)

    def merged_patterns(self) -> np.ndarray:
        """Merged full-pattern counts over every shard (a copy)."""
        counts = np.zeros(1 << self._n_items)
        for shard in self._shards:
            counts += shard.pattern_counts()
        return counts

    def pattern_counts_for(self, itemset) -> np.ndarray:
        """An itemset's ``2^k`` observed pattern counts, MSB-first.

        Marginalizes the merged full-pattern table onto ``itemset`` via
        :func:`marginal_pattern_counts` — exactly the tally
        :meth:`repro.mining.MaskMiner.estimate_support` computes from a
        basket matrix, ready for
        :func:`repro.mining.support_from_pattern_counts`.
        """
        return marginal_pattern_counts(
            self.merged_patterns(), self._n_items, itemset
        )

    def clear(self) -> None:
        """Zero every shard."""
        for shard in self._shards:
            shard.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SupportShardSet(n_items={self._n_items}, "
            f"n_shards={len(self._shards)}, records={self.n_seen})"
        )
