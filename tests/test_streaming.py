"""Tests for incremental (streaming) reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BayesReconstructor, KernelCache, UniformRandomizer
from repro.core.streaming import StreamingReconstructor
from repro.datasets import shapes
from repro.exceptions import ConvergenceWarning, ValidationError


@pytest.fixture
def setup():
    density = shapes.plateau()
    part = density.partition(16)
    noise = UniformRandomizer.from_privacy(0.5, 1.0)
    return density, part, noise


class TestBasics:
    def test_requires_data_before_estimate(self, setup):
        density, part, noise = setup
        stream = StreamingReconstructor(part, noise)
        with pytest.raises(ValidationError):
            stream.estimate()

    def test_rejects_bad_stopping(self, setup):
        density, part, noise = setup
        with pytest.raises(ValidationError):
            StreamingReconstructor(part, noise, stopping="sometimes")

    def test_rejects_bad_max_iterations(self, setup):
        density, part, noise = setup
        with pytest.raises(ValidationError):
            StreamingReconstructor(part, noise, max_iterations=0)

    def test_rejects_bad_tol(self, setup):
        density, part, noise = setup
        with pytest.raises(ValidationError):
            StreamingReconstructor(part, noise, tol=0.0)

    def test_rejects_bad_coverage(self, setup):
        density, part, noise = setup
        with pytest.raises(ValidationError):
            StreamingReconstructor(part, noise, coverage=2.0)

    def test_max_iterations_warns(self, setup):
        """Hitting the sweep cap warns exactly like BayesReconstructor."""
        density, part, noise = setup
        stream = StreamingReconstructor(
            part, noise, stopping="delta", tol=1e-15, max_iterations=3
        )
        stream.update(noise.randomize(density.sample(2_000, seed=1), seed=2))
        with pytest.warns(ConvergenceWarning):
            result = stream.estimate()
        assert not result.converged
        assert result.n_iterations == 3

    def test_n_seen_accumulates(self, setup):
        density, part, noise = setup
        stream = StreamingReconstructor(part, noise)
        stream.update(np.zeros(10))
        stream.update(np.zeros(7))
        stream.update([])  # empty batches are fine
        assert stream.n_seen == 17

    def test_reset(self, setup):
        density, part, noise = setup
        stream = StreamingReconstructor(part, noise)
        stream.update(np.full(100, 0.5))
        stream.estimate()
        stream.reset()
        assert stream.n_seen == 0
        with pytest.raises(ValidationError):
            stream.estimate()

    def test_update_returns_self_for_chaining(self, setup):
        density, part, noise = setup
        stream = StreamingReconstructor(part, noise)
        assert stream.update([0.5]) is stream


class TestEquivalence:
    def test_single_batch_is_bit_identical_to_batch_reconstruction(self, setup):
        """A stream fed one batch reproduces BayesReconstructor exactly."""
        density, part, noise = setup
        w = noise.randomize(density.sample(5_000, seed=10), seed=11)

        batch_result = BayesReconstructor().reconstruct(w, part, noise)
        stream_result = StreamingReconstructor(part, noise).update(w).estimate()

        assert np.array_equal(
            batch_result.distribution.probs, stream_result.distribution.probs
        )
        assert batch_result.n_iterations == stream_result.n_iterations
        assert batch_result.converged == stream_result.converged
        assert batch_result.delta_history == stream_result.delta_history
        assert batch_result.chi2_statistic == stream_result.chi2_statistic

    def test_chunked_stream_is_bit_identical_to_batch(self, setup):
        """Histogram accumulation is exact: chunking cannot change bits."""
        density, part, noise = setup
        w = noise.randomize(density.sample(5_000, seed=12), seed=13)

        batch_result = BayesReconstructor().reconstruct(w, part, noise)
        stream = StreamingReconstructor(part, noise)
        for chunk in np.array_split(w, 13):
            stream.update(chunk)
        stream_result = stream.estimate()

        assert np.array_equal(
            batch_result.distribution.probs, stream_result.distribution.probs
        )
        assert batch_result.n_iterations == stream_result.n_iterations

    def test_streams_share_kernel_cache(self, setup):
        density, part, noise = setup
        cache = KernelCache()
        StreamingReconstructor(part, noise, kernel_cache=cache)
        StreamingReconstructor(part, noise, kernel_cache=cache)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_matches_batch_reconstruction(self, setup):
        """Stream-fed reconstruction equals one-shot batch reconstruction."""
        density, part, noise = setup
        x = density.sample(6_000, seed=1)
        w = noise.randomize(x, seed=2)

        batch_result = BayesReconstructor(
            stopping="delta", tol=1e-6, max_iterations=2000
        ).reconstruct(w, part, noise)

        stream = StreamingReconstructor(
            part, noise, stopping="delta", tol=1e-6, max_iterations=2000
        )
        for chunk in np.array_split(w, 7):
            stream.update(chunk)
        stream_result = stream.estimate()

        assert batch_result.distribution.l1_distance(stream_result.distribution) < 1e-3

    def test_estimate_improves_with_data(self, setup):
        density, part, noise = setup
        true = density.true_distribution(part)
        stream = StreamingReconstructor(part, noise)
        rng = np.random.default_rng(3)

        stream.update(noise.randomize(density.sample(200, seed=rng), seed=rng))
        early_error = stream.estimate().distribution.l1_distance(true)
        stream.update(noise.randomize(density.sample(20_000, seed=rng), seed=rng))
        late_error = stream.estimate().distribution.l1_distance(true)
        assert late_error < early_error

    def test_warm_start_converges_fast(self, setup):
        """Refreshing on a stable stream needs far fewer sweeps."""
        density, part, noise = setup
        rng = np.random.default_rng(4)
        stream = StreamingReconstructor(part, noise, stopping="delta", tol=1e-4)
        stream.update(noise.randomize(density.sample(10_000, seed=rng), seed=rng))
        first = stream.estimate()
        stream.update(noise.randomize(density.sample(500, seed=rng), seed=rng))
        second = stream.estimate()
        assert second.n_iterations <= first.n_iterations

    def test_simplex_maintained(self, setup):
        density, part, noise = setup
        stream = StreamingReconstructor(part, noise)
        rng = np.random.default_rng(5)
        for _ in range(4):
            stream.update(noise.randomize(density.sample(300, seed=rng), seed=rng))
            result = stream.estimate()
            probs = result.distribution.probs
            assert probs.min() >= 0
            assert probs.sum() == pytest.approx(1.0)
