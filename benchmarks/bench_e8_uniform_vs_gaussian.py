"""E8 — Uniform vs Gaussian noise tradeoff (paper §5 observation).

At matched *95 %-confidence* privacy levels, Gaussian noise concentrates
more mass near zero than uniform noise, so reconstruction-based training
retains more accuracy per unit privacy at the higher privacy levels —
the paper's stated reason for preferring Gaussian when privacy demands
are strict.  We sweep Fn3 with ByClass under both kinds.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ClassificationConfig, format_table, run_privacy_sweep

LEVELS = (0.5, 1.0, 2.0, 4.0)


@experiment(
    "e8",
    title="Uniform vs Gaussian noise, Fn3 ByClass privacy sweep",
    tags=("classification", "sweep"),
    seed=800,
)
def run_e8(ctx):
    n_train, n_test = ctx.scaled(10_000), ctx.scaled(3_000)
    ctx.record(
        function=3,
        n_train=n_train,
        n_test=n_test,
        levels=",".join(f"{level:g}" for level in LEVELS),
    )
    results = {}
    for noise in ("uniform", "gaussian"):
        config = ClassificationConfig(
            functions=(3,),
            strategies=("byclass",),
            noise=noise,
            n_train=n_train,
            n_test=n_test,
            seed=ctx.seed,
        )
        rows = run_privacy_sweep(config, LEVELS)
        results[noise] = {r.privacy: r.accuracy for r in rows}

    table_rows = [
        (noise,) + tuple(f"{100 * results[noise][level]:.1f}" for level in LEVELS)
        for noise in ("uniform", "gaussian")
    ]
    table = format_table(
        ("noise",) + tuple(f"p={level:g}" for level in LEVELS),
        table_rows,
        title="E8: Fn3 ByClass accuracy (%), uniform vs gaussian noise",
    )
    ctx.report(table, name="e8_uniform_vs_gaussian")

    metrics = {
        f"{noise}_p{level:g}": float(results[noise][level])
        for noise in ("uniform", "gaussian")
        for level in LEVELS
    }
    # both kinds must be usable at moderate privacy
    assert results["uniform"][0.5] > 0.8
    assert results["gaussian"][0.5] > 0.8
    # in the paper's regime (up to 100% privacy) Gaussian retains at
    # least comparable accuracy per unit of stated privacy
    assert results["gaussian"][1.0] > results["uniform"][1.0] - 0.03
    # at the extreme levels both decay toward the majority-class floor
    assert results["gaussian"][4.0] > 0.5
    assert results["uniform"][4.0] > 0.5
    return metrics


def test_e8_uniform_vs_gaussian(benchmark):
    run_experiment(benchmark, "e8")
