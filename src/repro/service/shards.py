"""Mergeable histogram partials for sharded disclosure ingestion.

The reconstruction algorithm never needs raw disclosures — only the
histogram of randomized values on the noise-expanded grid.  Histograms
are *mergeable*: the histogram of a union of batches is the elementwise
sum of the batches' histograms, exactly (counts are integers, and float64
addition of integers is exact far beyond any realistic record count).

That makes server-side aggregation embarrassingly shardable:

* each ingestion worker owns (or is routed to) a :class:`HistogramShard`
  and accumulates its batches in O(batch) work with no cross-worker
  coordination,
* a refresh merges the shard partials in O(shards x bins) — independent
  of how many records have ever been seen — and hands the merged counts
  to the reconstruction engine.

:class:`ShardSet` is the fixed-size collection of shards over one
attribute schema, with round-robin routing and the O(bins) merge.  The
control plane (engine, warm-started estimates, persistence) lives in
:class:`repro.service.AggregationService`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer
from repro.exceptions import ValidationError
from repro.utils.validation import check_1d_array


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute the aggregation service collects disclosures for.

    Attributes
    ----------
    name:
        Unique attribute name; the routing key of every ingested batch.
    x_partition:
        Grid over the original domain on which estimates are expressed.
    randomizer:
        The (public) additive noise process providers disclose through.

    Examples
    --------
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AttributeSpec
    >>> spec = AttributeSpec("age", Partition.uniform(20, 80, 12),
    ...                      UniformRandomizer(half_width=15.0))
    >>> spec.name, spec.x_partition.n_intervals
    ('age', 12)
    """

    name: str
    x_partition: Partition
    randomizer: AdditiveRandomizer

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("attribute name must be a non-empty string")
        if not isinstance(self.x_partition, Partition):
            raise ValidationError(
                f"x_partition must be a Partition, got "
                f"{type(self.x_partition).__name__}"
            )
        if not isinstance(self.randomizer, AdditiveRandomizer):
            raise ValidationError(
                "randomizer must be an AdditiveRandomizer (the service "
                f"aggregates additive disclosures), got "
                f"{type(self.randomizer).__name__}"
            )


class HistogramShard:
    """One worker's running histogram partials, one per attribute.

    ``ingest`` buckets a batch of randomized values into the attribute's
    noise-expanded histogram — O(batch) work.  Bucketing happens outside
    the shard lock (it is pure); only the elementwise accumulate is
    guarded, so concurrent ingestion into the *same* shard is safe and
    ingestion into different shards never contends at all.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service.shards import HistogramShard
    >>> part = Partition.uniform(0, 1, 4)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> y_part = part.expanded(noise.support_half_width())
    >>> shard = HistogramShard({"x": y_part})
    >>> shard.ingest({"x": [0.1, 0.4, 0.9]})
    3
    >>> shard.n_seen("x")
    3
    """

    def __init__(self, y_partitions) -> None:
        if not y_partitions:
            raise ValidationError("a shard needs at least one attribute")
        self._y_partitions = dict(y_partitions)
        self._counts = {
            name: np.zeros(partition.n_intervals)
            for name, partition in self._y_partitions.items()
        }
        self._n_seen = dict.fromkeys(self._y_partitions, 0)
        self._lock = threading.Lock()

    @property
    def attributes(self) -> tuple:
        """Attribute names this shard accumulates, in schema order."""
        return tuple(self._y_partitions)

    def ingest(self, batch) -> int:
        """Absorb ``{attribute: randomized values}``; return records added."""
        prepared = []
        for name, values in batch.items():
            partition = self._y_partitions.get(name)
            if partition is None:
                raise ValidationError(
                    f"unknown attribute {name!r}; shard holds "
                    f"{list(self._y_partitions)}"
                )
            arr = check_1d_array(values, f"batch[{name!r}]", allow_empty=True)
            if arr.size:
                prepared.append((name, partition.histogram(arr), arr.size))
        total = 0
        with self._lock:
            for name, counts, size in prepared:
                self._counts[name] += counts
                self._n_seen[name] += size
                total += size
        return total

    def n_seen(self, name: str) -> int:
        """Records absorbed so far for ``name``."""
        self._require(name)
        return self._n_seen[name]

    def partial(self, name: str) -> tuple:
        """Consistent ``(counts copy, n_seen)`` snapshot for one attribute."""
        self._require(name)
        with self._lock:
            return self._counts[name].copy(), self._n_seen[name]

    def merge_from(self, other: "HistogramShard") -> "HistogramShard":
        """Fold another shard's partials into this one (same schema)."""
        if tuple(other._y_partitions) != tuple(self._y_partitions):
            raise ValidationError("cannot merge shards with different schemas")
        for name, counts in other._counts.items():
            mine = self._y_partitions[name]
            theirs = other._y_partitions[name]
            if not np.array_equal(mine.edges, theirs.edges):
                raise ValidationError(
                    f"cannot merge shards: attribute {name!r} is bucketed "
                    "on different grids"
                )
        with other._lock:
            partials = {
                name: (counts.copy(), other._n_seen[name])
                for name, counts in other._counts.items()
            }
        with self._lock:
            for name, (counts, seen) in partials.items():
                self._counts[name] += counts
                self._n_seen[name] += seen
        return self

    def clear(self) -> None:
        """Zero all partials."""
        with self._lock:
            for counts in self._counts.values():
                counts[:] = 0.0
            for name in self._n_seen:
                self._n_seen[name] = 0

    def _require(self, name: str) -> None:
        if name not in self._y_partitions:
            raise ValidationError(
                f"unknown attribute {name!r}; shard holds "
                f"{list(self._y_partitions)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        total = sum(self._n_seen.values())
        return (
            f"HistogramShard(attributes={len(self._y_partitions)}, "
            f"records={total})"
        )


class ShardSet:
    """A fixed number of :class:`HistogramShard` over one schema.

    Workers either address a shard explicitly (``shard=i`` — the
    one-worker-per-shard deployment, no lock contention) or let the set
    route round-robin.  ``merged`` sums the per-shard partials in
    O(shards x bins): because histogram counts are exact integers in
    float64, the merged counts are bit-identical to bucketing the whole
    stream into a single histogram, at any shard count and any batch
    interleaving.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service.shards import ShardSet
    >>> part = Partition.uniform(0, 1, 4)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> y_part = part.expanded(noise.support_half_width())
    >>> shards = ShardSet({"x": y_part}, n_shards=2)
    >>> shards.ingest({"x": [0.1, 0.2]}, shard=0)
    2
    >>> shards.ingest({"x": [0.8]}, shard=1)
    1
    >>> counts, seen = shards.merged("x")
    >>> seen, float(counts.sum())
    (3, 3.0)
    """

    def __init__(self, y_partitions, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self._y_partitions = dict(y_partitions)
        self._shards = tuple(
            HistogramShard(self._y_partitions) for _ in range(int(n_shards))
        )
        self._route = 0
        self._route_lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def attributes(self) -> tuple:
        """Attribute names, in schema order."""
        return tuple(self._y_partitions)

    def shard(self, index: int) -> HistogramShard:
        """The ``index``-th shard (for one-worker-per-shard deployments)."""
        if not 0 <= index < len(self._shards):
            raise ValidationError(
                f"shard index {index} out of range [0, {len(self._shards)})"
            )
        return self._shards[index]

    def __iter__(self):
        return iter(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def ingest(self, batch, *, shard: int = None) -> int:
        """Route a batch to a shard (round-robin unless ``shard`` given)."""
        if shard is None:
            with self._route_lock:
                shard = self._route
                self._route = (self._route + 1) % len(self._shards)
        return self.shard(shard).ingest(batch)

    def merged(self, name: str) -> tuple:
        """Merged ``(counts, n_seen)`` for one attribute — O(shards x bins)."""
        if name not in self._y_partitions:
            raise ValidationError(
                f"unknown attribute {name!r}; schema holds "
                f"{list(self._y_partitions)}"
            )
        counts = np.zeros(self._y_partitions[name].n_intervals)
        seen = 0
        for shard in self._shards:
            partial, partial_seen = shard.partial(name)
            counts += partial
            seen += partial_seen
        return counts, seen

    def merge(self) -> dict:
        """Merged partials for every attribute: ``{name: (counts, n_seen)}``."""
        return {name: self.merged(name) for name in self._y_partitions}

    def n_seen(self, name: str = None):
        """Records absorbed for one attribute, or ``{name: n}`` for all.

        Sums the shards' integer counters directly — no histogram copies
        — so the ingest/health hot paths never pay the O(bins) merge.
        """
        if name is not None:
            if name not in self._y_partitions:
                raise ValidationError(
                    f"unknown attribute {name!r}; schema holds "
                    f"{list(self._y_partitions)}"
                )
            return sum(shard.n_seen(name) for shard in self._shards)
        return {attr: self.n_seen(attr) for attr in self._y_partitions}

    def clear(self) -> None:
        """Zero every shard."""
        for shard in self._shards:
            shard.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSet(n_shards={len(self._shards)}, "
            f"attributes={len(self._y_partitions)})"
        )
