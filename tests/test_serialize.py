"""Tests for JSON serialization of models and distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes import NaiveBayesClassifier
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import (
    GaussianRandomizer,
    NullRandomizer,
    UniformRandomizer,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.serialize import from_jsonable, load, save, to_jsonable
from repro.tree import DecisionTreeClassifier


@pytest.fixture
def fitted_tree(rng):
    x = rng.random((500, 2))
    y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(int)
    tree = DecisionTreeClassifier(
        [Partition.uniform(0, 1, 10), Partition.uniform(0, 1, 10)],
        attribute_names=["a", "b"],
    )
    return tree.fit(x, y), x, y


@pytest.fixture
def fitted_nb(rng):
    x = rng.random((500, 1))
    y = (x[:, 0] > 0.5).astype(int)
    model = NaiveBayesClassifier([Partition.uniform(0, 1, 10)]).fit(x, y)
    return model, x, y


class TestPartitionRoundtrip:
    def test_roundtrip(self, unit_partition):
        clone = from_jsonable(to_jsonable(unit_partition))
        np.testing.assert_allclose(clone.edges, unit_partition.edges)

    def test_json_safe(self, unit_partition):
        import json

        json.dumps(to_jsonable(unit_partition))  # must not raise


class TestHistogramRoundtrip:
    def test_roundtrip(self, unit_partition):
        dist = HistogramDistribution(unit_partition, np.full(10, 0.1))
        clone = from_jsonable(to_jsonable(dist))
        np.testing.assert_allclose(clone.probs, dist.probs)
        np.testing.assert_allclose(clone.partition.edges, unit_partition.edges)


class TestTreeRoundtrip:
    def test_predictions_identical(self, fitted_tree):
        tree, x, y = fitted_tree
        clone = from_jsonable(to_jsonable(tree))
        np.testing.assert_array_equal(clone.predict(x), tree.predict(x))

    def test_structure_preserved(self, fitted_tree):
        tree, _, _ = fitted_tree
        clone = from_jsonable(to_jsonable(tree))
        assert clone.n_nodes == tree.n_nodes
        assert clone.depth == tree.depth
        assert clone.attribute_names == tree.attribute_names

    def test_unfitted_rejected(self):
        tree = DecisionTreeClassifier([Partition.uniform(0, 1, 4)])
        with pytest.raises(NotFittedError):
            to_jsonable(tree)

    def test_file_roundtrip(self, fitted_tree, tmp_path):
        tree, x, _ = fitted_tree
        path = tmp_path / "tree.json"
        save(tree, path)
        clone = load(path)
        np.testing.assert_array_equal(clone.predict(x), tree.predict(x))


class TestNaiveBayesRoundtrip:
    def test_predictions_identical(self, fitted_nb):
        model, x, _ = fitted_nb
        clone = from_jsonable(to_jsonable(model))
        np.testing.assert_array_equal(clone.predict(x), model.predict(x))

    def test_unfitted_rejected(self):
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 4)])
        with pytest.raises(NotFittedError):
            to_jsonable(model)

    def test_file_roundtrip(self, fitted_nb, tmp_path):
        model, x, _ = fitted_nb
        path = tmp_path / "nb.json"
        save(model, path)
        clone = load(path)
        np.testing.assert_array_equal(clone.predict(x), model.predict(x))


class TestRandomizerRoundtrip:
    @pytest.mark.parametrize(
        "randomizer",
        [
            UniformRandomizer(half_width=0.37),
            GaussianRandomizer(sigma=1.25),
            NullRandomizer(),
        ],
        ids=lambda r: r.name,
    )
    def test_roundtrip(self, randomizer):
        payload = to_jsonable(randomizer)
        assert payload["kind"] == "randomizer"
        restored = from_jsonable(payload)
        assert type(restored) is type(randomizer)
        assert restored == randomizer or isinstance(restored, NullRandomizer)

    def test_parameters_preserved_exactly(self):
        restored = from_jsonable(to_jsonable(UniformRandomizer(half_width=0.37)))
        assert restored.half_width == 0.37

    def test_unknown_noise_kind_rejected(self):
        with pytest.raises(ValidationError):
            from_jsonable({"kind": "randomizer", "noise": "laplace"})

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValidationError):
            from_jsonable({"kind": "randomizer", "noise": "uniform"})


class TestAggregationServiceRoundtrip:
    def test_dispatch_through_serialize(self, tmp_path):
        from repro.service import AggregationService, AttributeSpec

        noise = UniformRandomizer(half_width=0.2)
        service = AggregationService(
            [AttributeSpec("x", Partition.uniform(0, 1, 8), noise)],
            n_shards=2,
        )
        service.ingest({"x": noise.randomize(np.linspace(0.2, 0.8, 200), seed=0)})
        path = tmp_path / "service.json"
        save(service, path)
        restored = load(path)
        assert isinstance(restored, AggregationService)
        assert restored.n_seen("x") == 200
        a = service.estimate("x")
        b = restored.estimate("x")
        assert np.array_equal(a.distribution.probs, b.distribution.probs)


class TestTrainedTreeRoundtrip:
    @pytest.fixture
    def trained_model(self, fitted_tree):
        from repro.service import TrainedModel

        tree, _, _ = fitted_tree
        return TrainedModel(
            strategy="byclass",
            tree=tree,
            n_train=500,
            attributes=("a", "b"),
            classes=2,
            fit_seconds=0.25,
        )

    def test_roundtrip_preserves_tree_and_provenance(self, trained_model):
        from repro.service import TrainedModel

        payload = to_jsonable(trained_model)
        assert payload["kind"] == "trained_tree"
        restored = from_jsonable(payload)
        assert isinstance(restored, TrainedModel)
        assert restored.strategy == "byclass"
        assert restored.n_train == 500
        assert restored.attributes == ("a", "b")
        assert restored.classes == 2
        assert restored.tree.identical_to(trained_model.tree)

    def test_file_roundtrip(self, trained_model, tmp_path):
        path = tmp_path / "model.json"
        trained_model.save(path)
        restored = load(path)
        assert restored.tree.identical_to(trained_model.tree)

    def test_missing_fields_are_serialization_error(self, trained_model):
        from repro.exceptions import SerializationError

        payload = to_jsonable(trained_model)
        del payload["strategy"]
        with pytest.raises(SerializationError):
            from_jsonable(payload)

    def test_non_numeric_fields_are_serialization_error(self, trained_model):
        from repro.exceptions import SerializationError

        payload = to_jsonable(trained_model)
        payload["n_train"] = "lots"
        with pytest.raises(SerializationError, match="trained_tree"):
            from_jsonable(payload)

    def test_non_tree_embed_rejected(self, trained_model):
        from repro.exceptions import SerializationError

        payload = to_jsonable(trained_model)
        payload["tree"] = to_jsonable(Partition.uniform(0, 1, 4))
        with pytest.raises(SerializationError, match="decision_tree"):
            from_jsonable(payload)

    def test_attribute_count_mismatch_rejected(self, trained_model):
        from repro.exceptions import SerializationError

        payload = to_jsonable(trained_model)
        payload["attributes"] = ["a"]
        with pytest.raises(SerializationError, match="disagrees"):
            from_jsonable(payload)


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            to_jsonable(object())

    def test_garbage_payload_rejected(self):
        with pytest.raises(ValidationError):
            from_jsonable({"not": "a snapshot"})
        with pytest.raises(ValidationError):
            from_jsonable({"kind": "hologram"})
        with pytest.raises(ValidationError):
            from_jsonable("not even a dict")
