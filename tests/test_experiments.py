"""Tests for the experiment harness (runners + reporting + config)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    ClassificationConfig,
    ReconstructionConfig,
    bench_scale,
    format_table,
    run_privacy_sweep,
    run_reconstruction,
    run_strategy_comparison,
    run_training_size_sweep,
)
from repro.experiments.config import SCALE_ENV_VAR, scaled
from repro.experiments.reporting import accuracy_matrix


@pytest.fixture
def tiny_classification():
    return ClassificationConfig(
        functions=(1,),
        strategies=("original", "byclass"),
        n_train=1_200,
        n_test=400,
        privacy=0.5,
        seed=3,
    )


class TestBenchScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert bench_scale() == 1.0
        assert scaled(100) == 100

    def test_scaling(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "2.5")
        assert scaled(100) == 250

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "lots")
        with pytest.raises(ValidationError):
            bench_scale()

    def test_rejects_non_positive(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0")
        with pytest.raises(ValidationError):
            bench_scale()


class TestReconstructionRunner:
    def test_outcome_fields(self):
        config = ReconstructionConfig(n=2_000, n_intervals=12, seed=1)
        outcome = run_reconstruction(config)
        assert outcome.midpoints.shape == (12,)
        for series in (
            outcome.true_probs,
            outcome.original_probs,
            outcome.randomized_probs,
            outcome.reconstructed_probs,
        ):
            assert series.shape == (12,)
            assert series.sum() == pytest.approx(1.0, abs=1e-6)

    def test_reconstruction_beats_randomized(self):
        config = ReconstructionConfig(n=4_000, privacy=0.5, seed=2)
        outcome = run_reconstruction(config)
        assert outcome.l1_reconstructed < outcome.l1_randomized

    def test_triangles_shape(self):
        config = ReconstructionConfig(shape="triangles", n=2_000, seed=3)
        outcome = run_reconstruction(config)
        assert outcome.l1_reconstructed < outcome.l1_randomized

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValidationError):
            run_reconstruction(ReconstructionConfig(shape="sawtooth"))

    def test_rows_render(self):
        outcome = run_reconstruction(ReconstructionConfig(n=1_000, seed=4))
        rows = outcome.rows()
        assert len(rows) == outcome.midpoints.size
        assert all(len(row) == 5 for row in rows)

    def test_gaussian_noise(self):
        config = ReconstructionConfig(noise="gaussian", n=2_000, seed=5)
        outcome = run_reconstruction(config)
        assert outcome.l1_reconstructed < outcome.l1_randomized


class TestClassificationRunners:
    def test_strategy_comparison_rows(self, tiny_classification):
        rows = run_strategy_comparison(tiny_classification)
        assert len(rows) == 2  # one function x two strategies
        by_strategy = {r.strategy: r for r in rows}
        assert by_strategy["original"].privacy == 0.0
        assert by_strategy["byclass"].privacy == 0.5
        for row in rows:
            assert 0.0 <= row.accuracy <= 1.0
            assert row.n_train == 1_200
            assert row.fit_seconds > 0

    def test_rows_reproducible(self, tiny_classification):
        rows_a = run_strategy_comparison(tiny_classification)
        rows_b = run_strategy_comparison(tiny_classification)
        assert [r.accuracy for r in rows_a] == [r.accuracy for r in rows_b]

    def test_privacy_sweep(self, tiny_classification):
        rows = run_privacy_sweep(
            tiny_classification, [0.25, 1.0], strategies=("byclass",)
        )
        assert len(rows) == 2
        assert {r.privacy for r in rows} == {0.25, 1.0}

    def test_training_size_sweep(self, tiny_classification):
        rows = run_training_size_sweep(
            tiny_classification, [500, 1_000], strategy="byclass"
        )
        sizes = {r.n_train for r in rows}
        assert sizes == {500, 1_000}
        strategies = {r.strategy for r in rows}
        assert strategies == {"byclass", "original"}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_table_title(self):
        text = format_table(("x",), [("1",)], title="caption")
        assert text.splitlines()[0] == "caption"

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_table(("a", "b"), [("only",)])

    def test_format_table_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text

    def test_accuracy_matrix_pivot(self, tiny_classification):
        rows = run_strategy_comparison(tiny_classification)
        text = accuracy_matrix(rows)
        assert "original" in text
        assert "byclass" in text
        assert "1" in text  # the function id row


class TestConfigs:
    def test_frozen(self, tiny_classification):
        with pytest.raises(dataclasses.FrozenInstanceError):
            tiny_classification.privacy = 2.0

    def test_defaults_sane(self):
        config = ClassificationConfig()
        assert config.functions == (1, 2, 3, 4, 5)
        assert "byclass" in config.strategies
