"""The paper's training algorithms behind one estimator (paper §4.1).

Six ways to train a decision tree when providers disclose private data:

* ``original`` — train on the unperturbed data (upper baseline; no privacy),
* ``randomized`` — train directly on the perturbed values (lower baseline),
* ``global`` — reconstruct each attribute's distribution once over all
  classes, correct records, train on corrected records,
* ``byclass`` — reconstruct each attribute separately per class before
  correcting (the paper's recommended accuracy/cost tradeoff),
* ``local`` — ByClass, but reconstruction is repeated at every tree node
  on the records reaching that node (most accurate, most expensive),
* ``valueclass`` — the paper's §2 *value-class membership* alternative:
  providers disclose only the coarse interval containing each value (one
  interval per ``privacy * span`` of the domain) and the tree trains
  directly on the disclosed midpoints — no reconstruction involved.

:class:`PrivacyPreservingClassifier` wires the randomizers, reconstructor,
record correction, and the interval tree into that menu.
"""

from __future__ import annotations

import numpy as np

from repro.core.correction import correct_records
from repro.core.engine import reconstruct_problems
from repro.core.privacy import noise_for_privacy
from repro.core.randomizers import ValueClassMembership
from repro.core.reconstruction import BayesReconstructor
from repro.datasets.schema import Table
from repro.exceptions import NotFittedError, ValidationError
from repro.tree.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive

#: training strategies: paper §4.1 algorithms, the §5 baselines, and the
#: §2 value-class-membership alternative
STRATEGIES = ("original", "randomized", "global", "byclass", "local", "valueclass")


class PrivacyPreservingClassifier:
    """Decision-tree classification over randomized data.

    Parameters
    ----------
    strategy:
        One of :data:`STRATEGIES`.
    noise:
        ``"uniform"`` or ``"gaussian"`` additive noise (ignored by
        ``original``).
    privacy:
        Privacy level as a fraction of each attribute's domain range at
        ``confidence`` (paper convention: ``1.0`` = "100 % privacy").
    confidence:
        Confidence level at which privacy is stated (paper: 0.95).
    n_intervals:
        Intervals per attribute for reconstruction grids and candidate
        split points (discrete attributes cap at one per value).
    reconstructor:
        Distribution reconstructor; defaults to the paper's
        :class:`~repro.core.reconstruction.BayesReconstructor`.
    criterion / max_depth / min_records_split / min_gain:
        Passed to the underlying tree.  ``max_depth="auto"`` resolves to 8
        and ``min_records_split="auto"`` to 1 % of the training set (at
        least 10): randomization leaves record-level noise in corrected
        values, and unbounded trees overfit it badly (the accuracy
        ablations sweep these).  Pass ``None`` for unbounded depth.
    local_min_records:
        ``local`` only: nodes whose per-class record count falls below this
        keep their inherited interval assignments instead of
        re-reconstructing (the paper's practical cutoff).
    prune_fraction:
        If positive, this fraction of the training records is held out of
        tree growth and used for reduced-error pruning (the server never
        sees clean data, so for randomized strategies the held-out slice
        consists of the same corrected records).  0 disables pruning.
    attributes:
        Attribute names to perturb; defaults to all attributes.
    seed:
        Seed / generator driving the randomization step.

    Examples
    --------
    >>> from repro import PrivacyPreservingClassifier, quest
    >>> train = quest.generate(1_500, function=1, seed=0)
    >>> test = quest.generate(500, function=1, seed=1)
    >>> clf = PrivacyPreservingClassifier(strategy="byclass", privacy=0.5, seed=2)
    >>> bool(clf.fit(train).score(test) > 0.8)
    True

    Attributes (after :meth:`fit`)
    ------------------------------
    tree_:
        The fitted :class:`~repro.tree.tree.DecisionTreeClassifier`.
    randomized_table_ / randomizers_:
        The perturbed training table and the per-attribute randomizers.
    reconstructions_:
        For ``global``: ``{attribute: ReconstructionResult}``; for
        ``byclass``/``local`` roots: ``{attribute: {class: result}}``.
    intervals_:
        For the reconstruction strategies: the corrected ``(n, d)``
        interval-index matrix produced before tree growth (diagnostics
        and equivalence testing).  For ``global``/``byclass`` this is
        exactly what the tree trained on; for ``local`` it is the root
        ByClass correction — per-node refits during growth are applied
        on top of it and are not recorded here.

    Notes
    -----
    When the reconstructor exposes ``reconstruct_batch`` (the default
    :class:`~repro.core.reconstruction.BayesReconstructor` does, via its
    :class:`~repro.core.engine.ReconstructionEngine`), the ByClass and
    Local strategies issue one batched call per attribute (respectively
    per tree node) instead of looping attribute × class, and identical
    noise kernels are built once per fit instead of once per problem.
    The results are bit-identical to the looped path.
    """

    def __init__(
        self,
        strategy: str = "byclass",
        *,
        noise: str = "uniform",
        privacy: float = 1.0,
        confidence: float = 0.95,
        n_intervals: int = 25,
        reconstructor=None,
        criterion: str = "gini",
        max_depth="auto",
        min_records_split="auto",
        min_gain: float = 0.0,
        local_min_records: int = 100,
        prune_fraction: float = 0.0,
        attributes=None,
        seed=None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        check_positive(privacy, "privacy")
        check_fraction(confidence, "confidence")
        if n_intervals < 2:
            raise ValidationError(f"n_intervals must be >= 2, got {n_intervals}")
        self.strategy = strategy
        self.noise = noise
        self.privacy = float(privacy)
        self.confidence = float(confidence)
        self.n_intervals = int(n_intervals)
        self.reconstructor = reconstructor or BayesReconstructor()
        # With the chi-squared stopping rule reconstruction is cheap enough
        # that Local's per-node refits can reuse the same reconstructor.
        self._local_reconstructor = self.reconstructor
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_records_split = min_records_split
        self.min_gain = float(min_gain)
        self.local_min_records = int(local_min_records)
        if not 0.0 <= prune_fraction < 0.5:
            raise ValidationError(
                f"prune_fraction must lie in [0, 0.5), got {prune_fraction}"
            )
        self.prune_fraction = float(prune_fraction)
        self.attributes = tuple(attributes) if attributes is not None else None
        self.seed = seed

        self.tree_: DecisionTreeClassifier | None = None
        self.randomized_table_: Table | None = None
        self.randomizers_: dict = {}
        self.reconstructions_: dict = {}
        self.intervals_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self, table: Table, *, randomized_table: Table = None, randomizers: dict = None
    ) -> "PrivacyPreservingClassifier":
        """Fit on a labelled table.

        Parameters
        ----------
        table:
            Training table with original values and class labels.
        randomized_table / randomizers:
            Optionally supply a pre-randomized copy of ``table`` plus the
            randomizers that produced it (both or neither).  The experiment
            harness uses this to compare strategies on *identical*
            randomized data.
        """
        if (randomized_table is None) != (randomizers is None):
            raise ValidationError(
                "randomized_table and randomizers must be supplied together"
            )
        if randomizers is not None:
            unknown = set(randomizers) - set(table.attribute_names)
            if unknown:
                raise ValidationError(
                    f"randomizers reference unknown attributes: {sorted(unknown)}"
                )
        names = self.attributes or table.attribute_names
        self._names = tuple(table.attribute_names)
        partitions = [
            table.attribute(n).partition(self.n_intervals) for n in self._names
        ]
        self._partitions = partitions
        max_depth = 8 if self.max_depth == "auto" else self.max_depth
        min_records_split = (
            max(10, round(0.01 * table.n_records))
            if self.min_records_split == "auto"
            else self.min_records_split
        )
        tree = DecisionTreeClassifier(
            partitions,
            criterion=self.criterion,
            max_depth=max_depth,
            min_records_split=min_records_split,
            min_gain=self.min_gain,
            attribute_names=list(self._names),
        )
        labels = table.labels
        self._fit_rng = ensure_rng(self.seed)

        if self.strategy == "original":
            self._fit_raw(tree, table.matrix(), labels)
            self.tree_ = tree
            return self

        if randomized_table is None:
            randomized_table, randomizers = self._randomize(table, names)
        self.randomized_table_ = randomized_table
        self.randomizers_ = dict(randomizers)
        w_matrix = randomized_table.matrix()

        if self.strategy in ("randomized", "valueclass"):
            self._fit_raw(tree, w_matrix, labels)
        elif self.strategy == "global":
            intervals = self._correct_global(w_matrix, tree)
            self.intervals_ = intervals
            self._fit_corrected(tree, intervals, labels)
        elif self.strategy == "byclass":
            intervals = self._correct_byclass(w_matrix, labels, tree)
            self.intervals_ = intervals
            self._fit_corrected(tree, intervals, labels)
        else:  # local
            intervals = self._correct_byclass(w_matrix, labels, tree)
            self.intervals_ = intervals
            self._fit_corrected(
                tree, intervals, labels, raw_values=w_matrix
            )
        self.tree_ = tree
        return self

    def _split_for_prune(self, n: int):
        """Shuffle indices into (grow, hold) per ``prune_fraction``."""
        if self.prune_fraction == 0.0:
            return np.arange(n), None
        order = self._fit_rng.permutation(n)
        n_hold = int(round(self.prune_fraction * n))
        if n_hold == 0 or n_hold >= n:
            return np.arange(n), None
        return order[n_hold:], order[:n_hold]

    def _fit_raw(self, tree: DecisionTreeClassifier, matrix, labels) -> None:
        """Fit (and optionally prune) on raw value rows."""
        grow, hold = self._split_for_prune(labels.size)
        tree.fit(matrix[grow], labels[grow])
        if hold is not None:
            tree.prune(matrix[hold], labels[hold])

    def _fit_corrected(
        self, tree: DecisionTreeClassifier, intervals, labels, *, raw_values=None
    ) -> None:
        """Fit (and optionally prune) on corrected interval rows.

        Correction ran on the full record set (reconstruction wants all
        the data); only tree growth holds out the pruning slice.
        """
        grow, hold = self._split_for_prune(labels.size)
        kwargs = {}
        if raw_values is not None and self.strategy == "local":
            kwargs = dict(
                raw_values=raw_values[grow],
                node_transformer=self._local_transformer,
            )
        tree.fit_intervals(intervals[grow], labels[grow], **kwargs)
        if hold is not None:
            midpoint_columns = [
                partition.midpoints[intervals[hold, j]]
                for j, partition in enumerate(self._partitions)
            ]
            tree.prune(np.column_stack(midpoint_columns), labels[hold])

    def _randomize(self, table: Table, names) -> tuple:
        rng = self._fit_rng
        randomizers: dict = {}
        new_columns: dict = {}
        for name in names:
            attribute = table.attribute(name)
            if self.strategy == "valueclass":
                # §2's discretization: interval width = privacy * span, so
                # membership disclosure gives exactly the target privacy.
                n_coarse = max(1, int(round(1.0 / self.privacy)))
                randomizer = ValueClassMembership(attribute.partition(n_coarse))
            else:
                randomizer = noise_for_privacy(
                    self.noise, self.privacy, attribute.span, self.confidence
                )
            randomizers[name] = randomizer
            new_columns[name] = randomizer.randomize(table.column(name), seed=rng)
        return table.with_columns(new_columns), randomizers

    def _column_randomizer(self, j: int):
        """Randomizer for column ``j``, or None when it was not perturbed."""
        return self.randomizers_.get(self._names[j])

    def _correct_global(self, w_matrix: np.ndarray, tree: DecisionTreeClassifier):
        """Reconstruct each attribute once over all classes and correct."""
        intervals = np.empty(w_matrix.shape, dtype=np.int64)
        self.reconstructions_ = {}
        jobs = []  # attribute column indices with a randomizer
        for j, partition in enumerate(self._partitions):
            randomizer = self._column_randomizer(j)
            if randomizer is None:
                intervals[:, j] = partition.locate(w_matrix[:, j])
                continue
            jobs.append(j)
        results = reconstruct_problems(
            self.reconstructor,
            [
                (w_matrix[:, j], self._partitions[j], self._column_randomizer(j))
                for j in jobs
            ],
        )
        for j, result in zip(jobs, results):
            self.reconstructions_[self._names[j]] = result
            intervals[:, j] = correct_records(
                w_matrix[:, j], result.distribution
            ).interval_indices
        return intervals

    def _correct_byclass(
        self, w_matrix: np.ndarray, labels: np.ndarray, tree: DecisionTreeClassifier
    ):
        """Reconstruct each attribute per class (all classes batched) and correct."""
        intervals = np.empty(w_matrix.shape, dtype=np.int64)
        self.reconstructions_ = {}
        class_masks = [(c, labels == c) for c in np.unique(labels)]
        for j, partition in enumerate(self._partitions):
            randomizer = self._column_randomizer(j)
            if randomizer is None:
                intervals[:, j] = partition.locate(w_matrix[:, j])
                continue
            # One batched call per attribute: every class shares this
            # attribute's noise kernel, so the sweeps stack into one run.
            results = reconstruct_problems(
                self.reconstructor,
                [(w_matrix[mask, j], partition, randomizer) for _, mask in class_masks],
            )
            per_class: dict = {}
            for (c, mask), result in zip(class_masks, results):
                per_class[int(c)] = result
                intervals[mask, j] = correct_records(
                    w_matrix[mask, j], result.distribution
                ).interval_indices
            self.reconstructions_[self._names[j]] = per_class
        return intervals

    def _local_transformer(self, raw, labels, intervals, used):
        """Per-node ByClass re-correction used by the Local strategy.

        Attributes already split on along the path are skipped: routing
        truncated their randomized values at a disclosed-value threshold,
        and a convolution with wide noise cannot reproduce that cliff, so
        re-reconstructing them over-sharpens pathologically.  Their
        inherited assignments are kept instead.

        All of a node's (attribute × class) refits go out as one batched
        call: per attribute the classes share a kernel, and across nodes
        the engine's kernel cache means each attribute's kernel is built
        once per fit, not once per node.
        """
        out = intervals.copy()
        class_masks = [
            (c, mask)
            for c in np.unique(labels)
            for mask in [labels == c]
            if int(mask.sum()) >= self.local_min_records
        ]
        jobs = []  # (column index, class mask)
        for j, partition in enumerate(self._partitions):
            if j in used:
                continue
            randomizer = self._column_randomizer(j)
            if randomizer is None:
                continue
            for _, mask in class_masks:
                jobs.append((j, mask))
        if not jobs:
            return out
        results = reconstruct_problems(
            self._local_reconstructor,
            [
                (raw[mask, j], self._partitions[j], self._column_randomizer(j))
                for j, mask in jobs
            ],
        )
        for (j, mask), result in zip(jobs, results):
            out[mask, j] = correct_records(
                raw[mask, j], result.distribution
            ).interval_indices
        return out

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> DecisionTreeClassifier:
        if self.tree_ is None:
            raise NotFittedError("fit must be called before predict/score")
        return self.tree_

    def predict(self, table: Table) -> np.ndarray:
        """Predict class labels for an (unperturbed) test table."""
        tree = self._check_fitted()
        matrix = np.column_stack([table.column(n) for n in self._names])
        return tree.predict(matrix)

    def score(self, table: Table) -> float:
        """Classification accuracy against the table's labels."""
        return float((self.predict(table) == table.labels).mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivacyPreservingClassifier(strategy={self.strategy!r})"
