"""Tests for the batched reconstruction engine and kernel cache.

The central property: the batched sweep is **bit-identical** to the
looped reference path (`_prepare` + `_run_bayes`) per problem — same
estimates, same iteration counts, same stopping decisions — across noise
kinds, stopping rules, and ragged problem sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BayesReconstructor,
    GaussianRandomizer,
    Partition,
    UniformRandomizer,
)
from repro.core.engine import (
    EngineConfig,
    KernelCache,
    ReconstructionEngine,
    ReconstructionProblem,
    _run_bayes_batch,
)
from repro.core.reconstruction import _prepare, _run_bayes
from repro.exceptions import ConvergenceWarning, ValidationError


def _reference(values, partition, randomizer, config: EngineConfig):
    """The pre-engine looped path, problem by problem."""
    y_counts, kernel = _prepare(
        values,
        partition,
        randomizer,
        transition_method=config.transition_method,
        coverage=config.coverage,
    )
    m = partition.n_intervals
    theta0 = np.full(m, 1.0 / m)
    return _run_bayes(
        y_counts,
        kernel,
        theta0,
        max_iterations=config.max_iterations,
        tol=config.tol,
        stopping=config.stopping,
    )


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.max_iterations == 500
        assert config.stopping == "chi2"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tol": 0.0},
            {"tol": -1e-3},
            {"stopping": "psychic"},
            {"transition_method": "midpoint"},
            {"coverage": 0.0},
            {"coverage": 2.0},
            {"coverage": -0.5},
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValidationError):
            EngineConfig(**kwargs)

    def test_coerces_types(self):
        config = EngineConfig(max_iterations=10.0, tol=1, coverage=1)
        assert config.max_iterations == 10 and isinstance(config.max_iterations, int)
        assert config.tol == 1.0 and isinstance(config.tol, float)


class TestKernelCache:
    def setup_method(self):
        self.part = Partition.uniform(0.0, 1.0, 12)
        self.noise = UniformRandomizer(half_width=0.2)

    def test_hit_returns_same_objects(self):
        cache = KernelCache()
        first = cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        second = cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        assert first[0] is second[0] and first[1] is second[1]
        assert cache.hits == 1 and cache.misses == 1

    def test_equal_parameters_share_an_entry(self):
        """Distinct but equal partitions/randomizers hit the same kernel."""
        cache = KernelCache()
        cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        other_part = Partition.uniform(0.0, 1.0, 12)
        other_noise = UniformRandomizer(half_width=0.2)
        cache.get(other_part, other_noise, method="integrated", coverage=0.999)
        assert cache.hits == 1 and len(cache) == 1

    def test_different_parameters_miss(self):
        cache = KernelCache()
        cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        cache.get(
            self.part, UniformRandomizer(0.3), method="integrated", coverage=0.999
        )
        cache.get(self.part, self.noise, method="density", coverage=0.999)
        cache.get(
            Partition.uniform(0, 2, 12),
            self.noise,
            method="integrated",
            coverage=0.999,
        )
        assert cache.misses == 4 and cache.hits == 0

    def test_lru_eviction(self):
        cache = KernelCache(maxsize=2)
        cache.get(
            self.part, UniformRandomizer(0.1), method="integrated", coverage=0.999
        )
        cache.get(
            self.part, UniformRandomizer(0.2), method="integrated", coverage=0.999
        )
        # Touch the first so the second becomes least-recently-used.
        cache.get(
            self.part, UniformRandomizer(0.1), method="integrated", coverage=0.999
        )
        cache.get(
            self.part, UniformRandomizer(0.3), method="integrated", coverage=0.999
        )
        assert len(cache) == 2
        cache.get(
            self.part, UniformRandomizer(0.1), method="integrated", coverage=0.999
        )
        assert cache.hits == 2  # 0.1 survived; 0.2 was evicted

    def test_zero_maxsize_disables_storage(self):
        cache = KernelCache(maxsize=0)
        cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        assert cache.hits == 0 and cache.misses == 2 and len(cache) == 0

    def test_unhashable_randomizer_bypasses_cache(self):
        class MutableNoise(UniformRandomizer):
            __hash__ = None

        noise = MutableNoise(half_width=0.2)
        cache = KernelCache()
        a = cache.get(self.part, noise, method="integrated", coverage=0.999)
        b = cache.get(self.part, noise, method="integrated", coverage=0.999)
        assert a[1] is not b[1]
        assert np.array_equal(a[1], b[1])
        assert len(cache) == 0

    def test_identity_equality_randomizer_bypasses_cache(self):
        """Plain classes hash by identity; caching them would go stale
        after an in-place parameter mutation, so they are never cached."""

        class PlainNoise:
            def __init__(self, half_width):
                self.half_width = half_width

            def support_half_width(self, coverage=1.0 - 1e-9):
                return self.half_width

            def noise_cdf(self, delta):
                return UniformRandomizer(self.half_width).noise_cdf(delta)

        noise = PlainNoise(0.2)
        cache = KernelCache()
        _, before = cache.get(self.part, noise, method="integrated", coverage=0.999)
        assert len(cache) == 0
        noise.half_width = 0.4  # mutate in place — must NOT serve stale kernel
        _, after = cache.get(self.part, noise, method="integrated", coverage=0.999)
        assert not np.array_equal(before, after)

    def test_cached_kernel_is_readonly(self):
        cache = KernelCache()
        _, kernel = cache.get(
            self.part, self.noise, method="integrated", coverage=0.999
        )
        with pytest.raises(ValueError):
            kernel[0, 0] = 1.0

    def test_clear(self):
        cache = KernelCache()
        cache.get(self.part, self.noise, method="integrated", coverage=0.999)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_negative_maxsize(self):
        with pytest.raises(ValidationError):
            KernelCache(maxsize=-1)


class TestBatchedIdentity:
    """Batched sweeps are bitwise equal to the looped reference path."""

    @pytest.mark.parametrize("noise_kind", ["uniform", "gaussian"])
    @pytest.mark.parametrize("stopping", ["chi2", "delta"])
    def test_ragged_batch_matches_looped(self, noise_kind, stopping):
        rng = np.random.default_rng(42)
        part = Partition.uniform(0.0, 1.0, 18)
        noise = (
            UniformRandomizer(half_width=0.25)
            if noise_kind == "uniform"
            else GaussianRandomizer(sigma=0.15)
        )
        config = EngineConfig(stopping=stopping, tol=1e-4, max_iterations=300)
        # Ragged class sizes, different underlying shapes per problem.
        sizes = (3000, 750, 120, 4800)
        problems = []
        for i, size in enumerate(sizes):
            x = np.clip(rng.normal(0.25 + 0.15 * i, 0.1, size), 0.0, 1.0)
            problems.append((noise.randomize(x, seed=rng), part, noise))

        engine = ReconstructionEngine(config)
        results = engine.reconstruct_batch(problems)
        assert engine.kernel_cache.misses == 1
        assert engine.kernel_cache.hits == len(sizes) - 1

        for (values, _, _), result in zip(problems, results):
            theta, iters, converged, deltas, chi2_stat, chi2_thresh = _reference(
                values, part, noise, config
            )
            # check_probability_vector re-normalizes on construction, so
            # compare through the same constructor the looped path used
            from repro.core.histogram import HistogramDistribution

            ref = HistogramDistribution(part, theta)
            assert np.array_equal(result.distribution.probs, ref.probs)
            assert result.n_iterations == iters
            assert result.converged == converged
            assert result.delta_history == tuple(deltas)
            if np.isfinite(chi2_stat):
                assert result.chi2_statistic == chi2_stat
                assert result.chi2_threshold == chi2_thresh

    def test_single_problem_equals_bayes_reconstructor(self):
        rng = np.random.default_rng(1)
        part = Partition.uniform(0.0, 1.0, 15)
        noise = UniformRandomizer(half_width=0.2)
        w = noise.randomize(rng.uniform(0.3, 0.7, 2500), seed=2)
        single = BayesReconstructor().reconstruct(w, part, noise)
        [via_batch] = BayesReconstructor().reconstruct_batch([(w, part, noise)])
        assert np.array_equal(single.distribution.probs, via_batch.distribution.probs)
        assert single.n_iterations == via_batch.n_iterations

    def test_mixed_kernels_grouped_and_ordered(self):
        """Heterogeneous problems come back in input order, grouped internally."""
        rng = np.random.default_rng(3)
        part_a = Partition.uniform(0.0, 1.0, 10)
        part_b = Partition.uniform(-1.0, 1.0, 14)
        noise_a = UniformRandomizer(half_width=0.2)
        noise_b = GaussianRandomizer(sigma=0.3)
        problems = [
            (noise_a.randomize(rng.uniform(0.2, 0.8, 1000), seed=1), part_a, noise_a),
            (noise_b.randomize(rng.uniform(-0.5, 0.5, 900), seed=2), part_b, noise_b),
            (noise_a.randomize(rng.uniform(0.1, 0.5, 800), seed=3), part_a, noise_a),
        ]
        engine = ReconstructionEngine()
        results = engine.reconstruct_batch(problems)
        assert engine.kernel_cache.misses == 2  # two distinct kernels
        for problem, result in zip(problems, results):
            expected = engine.reconstruct(*problem)
            assert np.array_equal(
                result.distribution.probs, expected.distribution.probs
            )
            assert result.distribution.partition is problem[1]

    def test_accepts_reconstruction_problem_namedtuples(self):
        rng = np.random.default_rng(4)
        part = Partition.uniform(0.0, 1.0, 10)
        noise = UniformRandomizer(half_width=0.2)
        problem = ReconstructionProblem(
            noise.randomize(rng.uniform(0, 1, 500), seed=5), part, noise
        )
        [result] = ReconstructionEngine().reconstruct_batch([problem])
        assert result.distribution.n_intervals == 10


class TestBatchBehaviour:
    def test_convergence_warning_per_problem(self):
        rng = np.random.default_rng(6)
        part = Partition.uniform(0.0, 1.0, 12)
        noise = UniformRandomizer(half_width=0.25)
        config = EngineConfig(stopping="delta", tol=1e-15, max_iterations=3)
        problems = [
            (noise.randomize(rng.uniform(0.2, 0.8, 1000), seed=s), part, noise)
            for s in (1, 2)
        ]
        engine = ReconstructionEngine(config)
        with pytest.warns(ConvergenceWarning) as record:
            results = engine.reconstruct_batch(problems)
        assert len(record) == 2
        assert all(not r.converged for r in results)
        assert all(r.n_iterations == 3 for r in results)

    def test_empty_problem_rejected(self):
        part = Partition.uniform(0.0, 1.0, 10)
        noise = UniformRandomizer(half_width=0.2)
        with pytest.raises(ValidationError):
            ReconstructionEngine().reconstruct_batch([(np.array([]), part, noise)])

    def test_empty_batch_is_noop(self):
        assert ReconstructionEngine().reconstruct_batch([]) == []

    def test_run_bayes_batch_validates_shapes(self):
        kernel = np.eye(4)
        with pytest.raises(ValidationError):
            _run_bayes_batch(
                np.ones(4),  # not 2-D
                kernel,
                np.full((1, 4), 0.25),
                max_iterations=5,
                tol=1e-3,
                stopping="delta",
            )
        with pytest.raises(ValidationError):
            _run_bayes_batch(
                np.ones((1, 3)),  # S mismatch
                kernel,
                np.full((1, 4), 0.25),
                max_iterations=5,
                tol=1e-3,
                stopping="delta",
            )
        with pytest.raises(ValidationError):
            _run_bayes_batch(
                np.ones((2, 4)),
                kernel,
                np.full((1, 4), 0.25),  # B mismatch
                max_iterations=5,
                tol=1e-3,
                stopping="delta",
            )
        with pytest.raises(ValidationError):
            _run_bayes_batch(
                np.zeros((1, 4)),  # empty problem
                kernel,
                np.full((1, 4), 0.25),
                max_iterations=5,
                tol=1e-3,
                stopping="delta",
            )

    def test_problems_converge_at_different_sweeps(self):
        """Per-problem masking: a tight and a loose problem stop independently."""
        rng = np.random.default_rng(8)
        part = Partition.uniform(0.0, 1.0, 16)
        noise = UniformRandomizer(half_width=0.25)
        config = EngineConfig(stopping="delta", tol=1e-3, max_iterations=1000)
        narrow = np.clip(rng.normal(0.5, 0.02, 4000), 0, 1)
        broad = rng.uniform(0.0, 1.0, 4000)
        engine = ReconstructionEngine(config)
        results = engine.reconstruct_batch(
            [
                (noise.randomize(narrow, seed=1), part, noise),
                (noise.randomize(broad, seed=2), part, noise),
            ]
        )
        assert results[0].n_iterations != results[1].n_iterations
        assert all(r.converged for r in results)

    def test_reconstructor_shares_kernel_across_calls(self):
        """The Local strategy's repeated refits reuse one cached kernel."""
        rng = np.random.default_rng(9)
        part = Partition.uniform(0.0, 1.0, 10)
        noise = UniformRandomizer(half_width=0.2)
        rec = BayesReconstructor()
        for s in range(4):
            rec.reconstruct(
                noise.randomize(rng.uniform(0, 1, 400), seed=s), part, noise
            )
        assert rec.engine.kernel_cache.misses == 1
        assert rec.engine.kernel_cache.hits == 3

    def test_rejects_non_config(self):
        with pytest.raises(ValidationError):
            ReconstructionEngine(config={"max_iterations": 5})
