"""Unit tests for the service-side mining tier.

Covers the two modules behind ``POST /mine``:

* :mod:`repro.service.support` — :class:`SupportShard` /
  :class:`SupportShardSet`, the sharded joint bit-pattern counters, and
  :func:`marginal_pattern_counts`, the exact marginalization that turns
  the full table into any itemset's observed pattern counts,
* :mod:`repro.service.mining` — :class:`MiningService` (level-wise MASK
  Apriori over the service-held counts), :func:`mining_from_spec`, and
  the ``mined_rules`` snapshot round-trip through :mod:`repro.serialize`.

The randomized differential sweep against the offline pipeline lives in
``tests/test_properties.py`` (``test_differential_mining_parity_fuzz``);
these are the deterministic, known-answer complements.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import serialize
from repro.exceptions import SerializationError, ValidationError
from repro.mining import (
    MaskMiner,
    RandomizedResponse,
    association_rules,
    generate_baskets,
)
from repro.service import (
    MinedRules,
    MiningService,
    SupportShard,
    SupportShardSet,
    mining_from_spec,
)
from repro.service.support import MAX_TRACKED_ITEMS, marginal_pattern_counts


def _canonical(rule):
    return (sorted(rule.antecedent), sorted(rule.consequent))


@pytest.fixture(scope="module")
def disclosed():
    clean = generate_baskets(3_000, 8, seed=81)
    return RandomizedResponse(keep_prob=0.9).randomize(clean, seed=82)


class TestSupportShard:
    def test_pattern_counts_known_answer(self):
        # rows encode MSB-first: [1,1] -> 3, [1,0] -> 2, [0,0] -> 0
        shard = SupportShard(2)
        shard.ingest(np.array([[1, 1], [1, 0], [0, 0], [1, 1]], dtype=bool))
        assert shard.pattern_counts().tolist() == [1.0, 0.0, 1.0, 2.0]
        assert shard.n_seen == 4

    def test_accumulates_across_batches(self, rng):
        shard = SupportShard(5)
        reference = SupportShard(5)
        batches = [rng.random((n, 5)) < 0.5 for n in (7, 0, 13, 1)]
        for batch in batches:
            shard.ingest(batch)
        reference.ingest(np.vstack(batches))
        assert np.array_equal(shard.pattern_counts(), reference.pattern_counts())
        assert shard.n_seen == 21

    def test_prepared_path_matches_direct(self, rng):
        direct, prepared = SupportShard(4), SupportShard(4)
        batch = rng.random((50, 4)) < 0.3
        direct.ingest(batch)
        prepared.ingest_prepared(prepared.prepare(batch))
        assert np.array_equal(direct.pattern_counts(), prepared.pattern_counts())

    def test_merge_from_adds_and_chains(self, rng):
        a, b = SupportShard(3), SupportShard(3)
        a.ingest(rng.random((10, 3)) < 0.5)
        b.ingest(rng.random((20, 3)) < 0.5)
        expected = a.pattern_counts() + b.pattern_counts()
        assert a.merge_from(b) is a
        assert np.array_equal(a.pattern_counts(), expected)
        assert a.n_seen == 30

    def test_merge_rejects_mismatched_universe(self):
        with pytest.raises(ValidationError):
            SupportShard(3).merge_from(SupportShard(4))

    def test_clear(self, rng):
        shard = SupportShard(3)
        shard.ingest(rng.random((10, 3)) < 0.5)
        shard.clear()
        assert shard.n_seen == 0
        assert shard.pattern_counts().sum() == 0.0

    def test_rejects_bad_matrices(self):
        shard = SupportShard(3)
        with pytest.raises(ValidationError):
            shard.ingest(np.zeros((2, 4), dtype=bool))  # wrong width
        with pytest.raises(ValidationError):
            shard.ingest(np.zeros(3, dtype=bool))  # 1-D
        with pytest.raises(ValidationError):
            shard.ingest(np.zeros((2, 3)))  # float, not boolean

    def test_rejects_untrackable_universes(self):
        with pytest.raises(ValidationError):
            SupportShard(0)
        with pytest.raises(ValidationError):
            SupportShard(MAX_TRACKED_ITEMS + 1)
        SupportShard(MAX_TRACKED_ITEMS)  # the boundary itself is fine


class TestMarginalPatternCounts:
    def test_matches_direct_tally(self, rng):
        matrix = rng.random((200, 6)) < 0.4
        shard = SupportShard(6)
        shard.ingest(matrix)
        full = shard.pattern_counts()
        miner = MaskMiner(RandomizedResponse(0.9), max_size=6)
        for itemset in ([0], [5], [1, 3], [0, 2, 4], list(range(6))):
            expected = miner._pattern_counts(matrix, itemset)
            got = marginal_pattern_counts(full, 6, itemset)
            assert np.array_equal(got, expected), itemset

    def test_marginal_sums_preserve_total(self, rng):
        matrix = rng.random((100, 4)) < 0.5
        shard = SupportShard(4)
        shard.ingest(matrix)
        marginal = marginal_pattern_counts(shard.pattern_counts(), 4, [1, 2])
        assert marginal.sum() == 100.0

    def test_rejects_bad_itemsets(self):
        full = np.zeros(8)
        with pytest.raises(ValidationError):
            marginal_pattern_counts(full, 3, [])
        with pytest.raises(ValidationError):
            marginal_pattern_counts(full, 3, [3])
        with pytest.raises(ValidationError):
            marginal_pattern_counts(full, 3, [-1])


class TestSupportShardSet:
    def test_round_robin_distribution(self, rng):
        shards = SupportShardSet(3, n_shards=4)
        for _ in range(6):
            shards.ingest(rng.random((10, 3)) < 0.5)
        assert [s.n_seen for s in shards] == [20, 20, 10, 10]
        assert shards.n_seen == 60

    def test_shard_pinning(self, rng):
        shards = SupportShardSet(3, n_shards=4)
        shards.ingest(rng.random((10, 3)) < 0.5, shard=2)
        assert [s.n_seen for s in shards] == [0, 0, 10, 0]
        with pytest.raises(ValidationError):
            shards.ingest(np.zeros((1, 3), dtype=bool), shard=4)
        with pytest.raises(ValidationError):
            shards.ingest(np.zeros((1, 3), dtype=bool), shard=-1)

    def test_merged_patterns_bit_identical_across_shard_counts(self, rng):
        batches = [rng.random((n, 4)) < 0.4 for n in (17, 3, 25, 9)]
        tables = []
        for n_shards in (1, 2, 5):
            shards = SupportShardSet(4, n_shards=n_shards)
            for batch in batches:
                shards.ingest(batch)
            tables.append(shards.merged_patterns())
        assert np.array_equal(tables[0], tables[1])
        assert np.array_equal(tables[0], tables[2])

    def test_pattern_counts_for_matches_offline_tally(self, rng):
        matrix = rng.random((300, 5)) < 0.35
        shards = SupportShardSet(5, n_shards=3)
        for chunk in np.array_split(matrix, 4):
            shards.ingest(chunk)
        miner = MaskMiner(RandomizedResponse(0.9), max_size=5)
        for itemset in ({0}, {1, 4}, {0, 2, 3}):
            expected = miner._pattern_counts(matrix, sorted(itemset))
            assert np.array_equal(shards.pattern_counts_for(itemset), expected)

    def test_clear_resets_every_shard(self, rng):
        shards = SupportShardSet(3, n_shards=2)
        shards.ingest(rng.random((10, 3)) < 0.5)
        shards.clear()
        assert shards.n_seen == 0
        assert shards.merged_patterns().sum() == 0.0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValidationError):
            SupportShardSet(3, n_shards=0)


class TestMiningService:
    def _loaded(self, disclosed, n_shards=3):
        service = MiningService(
            RandomizedResponse(keep_prob=0.9), 8, n_shards=n_shards
        )
        for chunk in np.array_split(disclosed, 5):
            service.ingest(chunk)
        return service

    def test_estimate_support_bit_identical_to_offline(self, disclosed):
        service = self._loaded(disclosed)
        miner = MaskMiner(RandomizedResponse(keep_prob=0.9))
        for itemset in ({0}, {0, 1}, {2, 3, 4}):
            assert service.estimate_support(itemset) == miner.estimate_support(
                disclosed, itemset
            ), itemset

    def test_frequent_itemsets_bit_identical_to_offline(self, disclosed):
        service = self._loaded(disclosed)
        offline = MaskMiner(RandomizedResponse(keep_prob=0.9))
        assert service.frequent_itemsets(0.15) == offline.frequent_itemsets(
            disclosed, 0.15
        )

    def test_mine_matches_offline_rules_and_caches_latest(self, disclosed):
        service = self._loaded(disclosed)
        assert service.latest() is None
        result = service.mine(0.15, 0.4)
        assert service.latest() is result
        offline_sets = MaskMiner(
            RandomizedResponse(keep_prob=0.9)
        ).frequent_itemsets(disclosed, 0.15)
        assert result.itemsets == offline_sets
        assert sorted(result.rules, key=_canonical) == sorted(
            association_rules(offline_sets, 0.4), key=_canonical
        )
        assert result.n_baskets == disclosed.shape[0]
        assert frozenset({0, 1}) in result.itemsets  # planted pattern found

    def test_mine_before_ingest_rejected(self):
        service = MiningService(RandomizedResponse(0.9), 4)
        with pytest.raises(ValidationError, match="no baskets"):
            service.mine(0.2, 0.5)
        with pytest.raises(ValidationError, match="no baskets"):
            service.estimate_support({0})
        with pytest.raises(ValidationError, match="no baskets"):
            service.frequent_itemsets(0.2)

    def test_thresholds_validated(self, disclosed):
        service = self._loaded(disclosed)
        for support, confidence in ((0.0, 0.5), (1.5, 0.5), (0.2, 0.0)):
            with pytest.raises(ValidationError):
                service.mine(support, confidence)

    def test_empty_itemset_and_max_size(self, disclosed):
        service = self._loaded(disclosed)
        assert service.estimate_support(set()) == 1.0
        with pytest.raises(ValidationError, match="max_size"):
            service.estimate_support({0, 1, 2, 3})

    def test_prepared_ingest_matches_direct(self, disclosed):
        direct = self._loaded(disclosed, n_shards=2)
        prepared = MiningService(RandomizedResponse(0.9), 8, n_shards=2)
        for chunk in np.array_split(disclosed, 5):
            prepared.ingest_prepared(prepared.prepare(chunk))
        assert np.array_equal(
            direct.shards.merged_patterns(), prepared.shards.merged_patterns()
        )


class TestMiningFromSpec:
    def test_builds_service(self):
        service = mining_from_spec(
            {"items": 8, "keep_prob": 0.85, "shards": 2, "max_size": 4}
        )
        assert service.n_items == 8
        assert service.response.keep_prob == 0.85
        assert len(service.shards) == 2
        assert service.max_size == 4

    def test_defaults(self):
        service = mining_from_spec({"items": 5, "keep_prob": 0.9})
        assert len(service.shards) == 1
        assert service.max_size == 3

    def test_rejects_bad_sections(self):
        with pytest.raises(ValidationError, match="must be a dict"):
            mining_from_spec(["items"])
        with pytest.raises(ValidationError, match="items"):
            mining_from_spec({"keep_prob": 0.9})
        with pytest.raises(ValidationError, match="keep_prob"):
            mining_from_spec({"items": 5})
        with pytest.raises(ValidationError):
            mining_from_spec({"items": 5, "keep_prob": 0.5})


class TestMinedRulesSnapshot:
    def _mined(self, disclosed) -> MinedRules:
        service = MiningService(RandomizedResponse(keep_prob=0.9), 8)
        service.ingest(disclosed)
        return service.mine(0.15, 0.4)

    def test_round_trip_is_lossless(self, disclosed):
        result = self._mined(disclosed)
        back = serialize.from_jsonable(
            json.loads(json.dumps(serialize.to_jsonable(result)))
        )
        assert isinstance(back, MinedRules)
        assert back.itemsets == result.itemsets  # exact floats
        assert back.rules == result.rules
        assert (back.min_support, back.min_confidence) == (0.15, 0.4)
        assert back.n_baskets == result.n_baskets
        assert back.keep_prob == 0.9

    def test_save_writes_snapshot_file(self, disclosed, tmp_path):
        result = self._mined(disclosed)
        path = tmp_path / "rules.json"
        result.save(path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "mined_rules"
        back = serialize.from_jsonable(payload)
        assert back.itemsets == result.itemsets

    def test_rejects_itemset_outside_universe(self, disclosed):
        payload = serialize.to_jsonable(self._mined(disclosed))
        payload["n_items"] = 2  # now every itemset over items >= 2 is invalid
        with pytest.raises(SerializationError, match="universe"):
            serialize.from_jsonable(payload)
