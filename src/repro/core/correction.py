"""Per-record correction of randomized values (paper §4).

Reconstruction recovers an attribute's *distribution*, but decision-tree
induction needs per-record values so that a split at one node partitions
the records reaching its children.  The paper bridges the gap by
re-assigning the randomized records to intervals so that interval occupancy
matches the reconstructed distribution: sort the randomized values and hand
them out to intervals in order — the smallest ``counts[0]`` values go to
interval 0, the next ``counts[1]`` to interval 1, and so on.  Because
additive noise is independent of the value, order statistics of the
randomized sample are the best available proxy for order statistics of the
original sample.

:func:`correct_records` implements that assignment; it is the only code
path shared by the Global, ByClass, and Local training algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.utils.validation import check_1d_array


@dataclass(frozen=True)
class CorrectedRecords:
    """Result of correcting a batch of randomized records.

    Attributes
    ----------
    values:
        Corrected value per input record (interval midpoints), aligned with
        the input order.
    interval_indices:
        Interval assigned to each input record, aligned with input order.
    counts:
        Records assigned to each interval (sums to the number of records).
    """

    values: np.ndarray
    interval_indices: np.ndarray
    counts: np.ndarray


def correct_records(
    randomized_values, distribution: HistogramDistribution
) -> CorrectedRecords:
    """Re-assign randomized records to intervals of a reconstructed distribution.

    Parameters
    ----------
    randomized_values:
        Disclosed values ``x_i + r_i`` of the records being corrected.
    distribution:
        Reconstructed distribution of the originals for this record set
        (e.g. one class's records for the ByClass algorithm).

    Returns
    -------
    CorrectedRecords
        Input-aligned corrected values and interval assignments.  Interval
        occupancy equals ``distribution.integer_counts(n)`` exactly.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import HistogramDistribution, Partition, correct_records
    >>> part = Partition.uniform(0.0, 1.0, 2)
    >>> dist = HistogramDistribution(part, np.array([0.5, 0.5]))
    >>> corrected = correct_records([0.9, 0.1, 0.4, 0.6], dist)
    >>> corrected.counts.tolist()
    [2, 2]
    >>> corrected.values.tolist()  # interval midpoints, input order kept
    [0.75, 0.25, 0.25, 0.75]
    """
    w = check_1d_array(randomized_values, "randomized_values", allow_empty=True)
    n = w.size
    counts = distribution.integer_counts(n)
    if n == 0:
        empty = np.empty(0)
        return CorrectedRecords(empty, np.empty(0, dtype=np.int64), counts)

    # Hand sorted records to intervals left to right per the target counts.
    order = np.argsort(w, kind="stable")
    assignment_sorted = np.repeat(
        np.arange(distribution.n_intervals, dtype=np.int64), counts
    )
    interval_indices = np.empty(n, dtype=np.int64)
    interval_indices[order] = assignment_sorted

    values = distribution.partition.midpoints[interval_indices]
    return CorrectedRecords(
        values=values, interval_indices=interval_indices, counts=counts
    )
