"""Tests for the association-mining extension (Apriori + randomized response)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.mining import (
    MaskMiner,
    RandomizedResponse,
    association_rules,
    candidate_itemsets,
    frequent_itemsets,
    generate_baskets,
    matrix_to_transactions,
    support_from_pattern_counts,
    transactions_to_matrix,
)
from repro.mining.apriori import support


@pytest.fixture(scope="module")
def planted_baskets():
    return generate_baskets(6_000, 10, seed=17)


class TestApriori:
    def test_matches_bruteforce_on_small_data(self, rng):
        baskets = rng.random((200, 5)) < 0.4
        mined = frequent_itemsets(baskets, 0.2)
        # brute force every itemset up to size 5
        for size in range(1, 6):
            for combo in combinations(range(5), size):
                s = support(baskets, combo)
                itemset = frozenset(combo)
                if s >= 0.2:
                    assert itemset in mined, itemset
                    assert mined[itemset] == pytest.approx(s)
                else:
                    assert itemset not in mined

    def test_planted_patterns_found(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.15)
        assert frozenset({0, 1}) in mined
        assert frozenset({2, 3, 4}) in mined

    def test_downward_closure(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        for itemset in mined:
            for item in itemset:
                assert itemset - {item} in mined or len(itemset) == 1

    def test_max_size_respected(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1, max_size=2)
        assert all(len(itemset) <= 2 for itemset in mined)

    def test_support_bounds(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.05)
        assert all(0.05 <= s <= 1.0 for s in mined.values())

    def test_empty_itemset_support(self, planted_baskets):
        assert support(planted_baskets, set()) == 1.0

    def test_out_of_range_item_rejected(self, planted_baskets):
        with pytest.raises(ValidationError):
            support(planted_baskets, {99})

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValidationError):
            frequent_itemsets(np.zeros(5), 0.1)
        with pytest.raises(ValidationError):
            frequent_itemsets(np.zeros((0, 3)), 0.1)


class TestAssociationRules:
    def test_rules_from_planted_pattern(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.5)
        pairs = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))) for r in rules
        }
        assert ((0,), (1,)) in pairs or ((1,), (0,)) in pairs

    def test_confidence_bounds(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        for rule in association_rules(mined, 0.3):
            assert 0.3 <= rule.confidence <= 1.0
            assert rule.support <= 1.0
            assert rule.lift > 0

    def test_sorted_by_confidence(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.2)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_lift_of_planted_rule_above_one(self, planted_baskets):
        mined = frequent_itemsets(planted_baskets, 0.1)
        rules = association_rules(mined, 0.5)
        planted = [
            r for r in rules
            if r.antecedent == frozenset({0}) and r.consequent == frozenset({1})
        ]
        assert planted and planted[0].lift > 1.5


class TestRandomizedResponse:
    def test_rejects_half(self):
        with pytest.raises(ValidationError):
            RandomizedResponse(0.5)

    def test_channel_is_stochastic(self):
        channel = RandomizedResponse(0.8).channel
        np.testing.assert_allclose(channel.sum(axis=0), 1.0)

    def test_flip_rate(self, rng):
        rr = RandomizedResponse(0.9)
        baskets = np.zeros((20_000, 3), dtype=bool)
        disclosed = rr.randomize(baskets, seed=rng)
        assert disclosed.mean() == pytest.approx(0.1, abs=0.01)

    def test_keep_prob_one_is_identity(self, planted_baskets):
        rr = RandomizedResponse(1.0)
        disclosed = rr.randomize(planted_baskets, seed=0)
        np.testing.assert_array_equal(disclosed, planted_baskets)

    def test_deniability(self):
        assert RandomizedResponse(0.8).privacy_of_bit() == pytest.approx(0.2)


class TestMaskMiner:
    def test_support_recovery_single_items(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        disclosed = rr.randomize(planted_baskets, seed=3)
        miner = MaskMiner(rr)
        for item in range(5):
            true = support(planted_baskets, {item})
            estimate = miner.estimate_support(disclosed, {item})
            assert estimate == pytest.approx(true, abs=0.03)

    def test_support_recovery_pairs(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        disclosed = rr.randomize(planted_baskets, seed=4)
        miner = MaskMiner(rr)
        true = support(planted_baskets, {0, 1})
        estimate = miner.estimate_support(disclosed, {0, 1})
        assert estimate == pytest.approx(true, abs=0.04)

    def test_estimate_beats_naive_support(self, planted_baskets):
        """Counting the randomized data directly is badly biased."""
        rr = RandomizedResponse(0.85)
        disclosed = rr.randomize(planted_baskets, seed=5)
        miner = MaskMiner(rr)
        true = support(planted_baskets, {2, 3, 4})
        naive = support(disclosed, {2, 3, 4})
        estimate = miner.estimate_support(disclosed, {2, 3, 4})
        assert abs(estimate - true) < abs(naive - true)

    def test_frequent_itemsets_recovered(self, planted_baskets):
        rr = RandomizedResponse(0.95)
        disclosed = rr.randomize(planted_baskets, seed=6)
        mined = MaskMiner(rr).frequent_itemsets(disclosed, 0.15)
        assert frozenset({0, 1}) in mined
        assert frozenset({2, 3, 4}) in mined

    def test_max_size_enforced(self, planted_baskets):
        rr = RandomizedResponse(0.9)
        miner = MaskMiner(rr, max_size=2)
        with pytest.raises(ValidationError):
            miner.estimate_support(planted_baskets, {0, 1, 2})

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValidationError):
            MaskMiner(RandomizedResponse(0.9), max_size=0)

    def test_empty_itemset(self, planted_baskets):
        miner = MaskMiner(RandomizedResponse(0.9))
        assert miner.estimate_support(planted_baskets, set()) == 1.0


class TestBasketGenerator:
    def test_shape_and_dtype(self):
        baskets = generate_baskets(100, 7, seed=0)
        assert baskets.shape == (100, 7)
        assert baskets.dtype == bool

    def test_reproducible(self):
        a = generate_baskets(50, 6, seed=1)
        b = generate_baskets(50, 6, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_planted_support_approximate(self):
        baskets = generate_baskets(20_000, 10, seed=2)
        # pattern (0,1) at 0.35 plus background coincidences
        assert support(baskets, {0, 1}) == pytest.approx(0.35, abs=0.05)

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((5,), 0.5),))
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((), 0.5),))
        with pytest.raises(ValidationError):
            generate_baskets(10, 3, patterns=(((0,), 1.5),))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValidationError):
            generate_baskets(0, 5)
        with pytest.raises(ValidationError):
            generate_baskets(5, 5, background=1.5)


class TestCandidateGeneration:
    """Known-answer checks of the Apriori pruning rule."""

    def test_all_subsets_frequent_generates_candidate(self):
        previous = {frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})}
        assert candidate_itemsets(previous, 3) == {frozenset({0, 1, 2})}

    def test_missing_subset_prunes_candidate(self):
        # {1, 2} is not frequent, so {0, 1, 2} must not be generated
        previous = {frozenset({0, 1}), frozenset({0, 2})}
        assert candidate_itemsets(previous, 3) == set()

    def test_singletons_to_pairs(self):
        previous = {frozenset({0}), frozenset({2}), frozenset({5})}
        assert candidate_itemsets(previous, 2) == {
            frozenset({0, 2}),
            frozenset({0, 5}),
            frozenset({2, 5}),
        }

    def test_empty_previous_level(self):
        assert candidate_itemsets(set(), 2) == set()


class TestKnownAnswerLattice:
    """Hand-computed lattices: the full mined dict, exact supports."""

    #: four baskets over three items — every support is a quarter multiple
    MATRIX = np.array([[1, 1, 0], [1, 1, 1], [1, 0, 0], [0, 1, 1]], dtype=bool)

    def test_full_lattice_at_half_support(self):
        assert frequent_itemsets(self.MATRIX, 0.5) == {
            frozenset({0}): 0.75,
            frozenset({1}): 0.75,
            frozenset({2}): 0.5,
            frozenset({0, 1}): 0.5,
            frozenset({1, 2}): 0.5,
        }

    def test_lattice_at_quarter_support(self):
        mined = frequent_itemsets(self.MATRIX, 0.25)
        assert mined[frozenset({0, 1, 2})] == 0.25
        assert mined[frozenset({0, 2})] == 0.25
        assert len(mined) == 7

    def test_support_one_keeps_only_universal_itemsets(self):
        always = np.ones((4, 2), dtype=bool)
        assert frequent_itemsets(always, 1.0) == {
            frozenset({0}): 1.0,
            frozenset({1}): 1.0,
            frozenset({0, 1}): 1.0,
        }

    def test_nothing_frequent_in_empty_baskets(self):
        assert frequent_itemsets(np.zeros((4, 3), dtype=bool), 0.1) == {}

    def test_known_answer_rules(self):
        rules = association_rules(frequent_itemsets(self.MATRIX, 0.25), 0.6)
        by_pair = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        rule = by_pair[((2,), (1,))]  # {2} => {1}: 0.5 / 0.5 = 1.0
        assert rule.confidence == 1.0
        assert rule.support == 0.5
        assert rule.lift == pytest.approx(1.0 / 0.75)
        rule = by_pair[((0,), (1,))]  # {0} => {1}: 0.5 / 0.75
        assert rule.confidence == pytest.approx(2 / 3)

    def test_rules_skip_unscorable_partitions(self):
        # {0, 1} frequent but {1} missing: the {0} => {1} split can't be
        # scored and must be skipped, not guessed
        itemsets = {
            frozenset({0}): 0.6,
            frozenset({0, 1}): 0.5,
        }
        assert association_rules(itemsets, 0.1) == []

    def test_confidence_clipped_to_one(self):
        # inconsistent supports (possible for *estimated* supports) must
        # not yield confidence > 1
        itemsets = {
            frozenset({0}): 0.2,
            frozenset({1}): 0.4,
            frozenset({0, 1}): 0.3,
        }
        rules = association_rules(itemsets, 0.5)
        assert all(rule.confidence <= 1.0 for rule in rules)


class TestMaskReconstruction:
    """MASK channel inversion: known answers, error bounds, rejects."""

    def test_identity_channel_known_answer(self):
        rr = RandomizedResponse(1.0)
        assert support_from_pattern_counts(rr, np.array([6.0, 2.0]), 8) == 0.25

    def test_single_bit_known_answer(self):
        # p = 0.75, true counts (6, 2):
        # observed = M @ true = (0.75*6 + 0.25*2, 0.25*6 + 0.75*2) = (5, 3)
        rr = RandomizedResponse(0.75)
        estimate = support_from_pattern_counts(rr, np.array([5.0, 3.0]), 8)
        assert estimate == pytest.approx(0.25)

    def test_two_bit_known_answer(self):
        # exact forward map through the Kronecker square, then invert
        rr = RandomizedResponse(0.8)
        true = np.array([10.0, 0.0, 0.0, 6.0])
        kron = np.kron(rr.channel, rr.channel)
        estimate = support_from_pattern_counts(rr, kron @ true, 16)
        assert estimate == pytest.approx(6.0 / 16.0)

    def test_estimate_clipped_into_unit_interval(self):
        rr = RandomizedResponse(0.75)
        # inversion of (0, 8) gives 12/8 = 1.5 raw — must clip to 1.0
        assert support_from_pattern_counts(rr, np.array([0.0, 8.0]), 8) == 1.0
        assert support_from_pattern_counts(rr, np.array([8.0, 0.0]), 8) == 0.0

    def test_rejects_bad_pattern_vectors(self):
        rr = RandomizedResponse(0.9)
        for bad in (np.array([1.0]), np.array([1.0, 2.0, 3.0]), np.ones((2, 2))):
            with pytest.raises(ValidationError):
                support_from_pattern_counts(rr, bad, 10)
        with pytest.raises(ValidationError):
            support_from_pattern_counts(rr, np.array([1.0, 2.0]), 0)

    @pytest.mark.parametrize("keep_prob", [0.5, 0.7, 0.9])
    def test_reconstruction_error_bounds(self, keep_prob, planted_baskets):
        """The ISSUE's p-sweep: 0.5 is a singular channel and must be
        rejected; 0.7 and 0.9 must reconstruct within widening bounds."""
        if keep_prob == 0.5:
            with pytest.raises(ValidationError, match="0.5"):
                RandomizedResponse(keep_prob)
            return
        rr = RandomizedResponse(keep_prob)
        disclosed = rr.randomize(planted_baskets, seed=keep_prob_seed(keep_prob))
        miner = MaskMiner(rr)
        # variance of the inverted estimator grows as p -> 0.5
        tolerance = 0.03 if keep_prob >= 0.9 else 0.08
        for itemset in ({0}, {0, 1}, {2, 3, 4}):
            true = support(planted_baskets, itemset)
            estimate = miner.estimate_support(disclosed, itemset)
            assert abs(estimate - true) < tolerance, (keep_prob, itemset)

    def test_near_half_keep_prob_rejected(self):
        with pytest.raises(ValidationError):
            RandomizedResponse(0.5 + 1e-10)
        # clearly away from 0.5 is fine, on either side
        RandomizedResponse(0.51)
        RandomizedResponse(0.49)

    def test_always_flip_channel_is_invertible(self, planted_baskets):
        # keep_prob 0 flips every bit: perfectly informative, just inverted
        rr = RandomizedResponse(0.0)
        disclosed = rr.randomize(planted_baskets, seed=7)
        np.testing.assert_array_equal(disclosed, ~planted_baskets)
        miner = MaskMiner(rr)
        true = support(planted_baskets, {0, 1})
        assert miner.estimate_support(disclosed, {0, 1}) == pytest.approx(true)


def keep_prob_seed(keep_prob: float) -> int:
    """Stable per-p seed so the parametrized sweep stays reproducible."""
    return int(round(keep_prob * 100))


class TestTransactionBridge:
    """transactions_to_matrix / matrix_to_transactions round-trips."""

    def test_round_trip_from_transactions(self):
        transactions = [[0, 2], [], [1], [0, 1, 2, 3]]
        matrix = transactions_to_matrix(transactions, 4)
        assert matrix.shape == (4, 4)
        assert matrix.dtype == np.bool_
        assert matrix_to_transactions(matrix) == transactions

    def test_round_trip_from_matrix(self, rng):
        matrix = rng.random((30, 6)) < 0.4
        rebuilt = transactions_to_matrix(matrix_to_transactions(matrix), 6)
        np.testing.assert_array_equal(rebuilt, matrix)

    def test_duplicate_items_tolerated(self):
        matrix = transactions_to_matrix([[1, 1, 1]], 3)
        assert matrix.tolist() == [[False, True, False]]

    def test_numpy_integer_item_ids_accepted(self):
        matrix = transactions_to_matrix([[np.int64(0), np.int32(2)]], 3)
        assert matrix.tolist() == [[True, False, True]]

    def test_rejects_bad_transactions(self):
        with pytest.raises(ValidationError, match="integers"):
            transactions_to_matrix([[0, "a"]], 3)
        with pytest.raises(ValidationError, match="integers"):
            transactions_to_matrix([[True]], 3)
        with pytest.raises(ValidationError, match="out of range"):
            transactions_to_matrix([[3]], 3)
        with pytest.raises(ValidationError, match="out of range"):
            transactions_to_matrix([[-1]], 3)
        with pytest.raises(ValidationError):
            transactions_to_matrix([], 3)
        with pytest.raises(ValidationError):
            transactions_to_matrix([[0]], 0)

    def test_matrix_to_transactions_rejects_non_boolean(self):
        with pytest.raises(ValidationError):
            matrix_to_transactions(np.zeros((2, 3)))
        with pytest.raises(ValidationError):
            matrix_to_transactions(np.zeros(3, dtype=bool))


@given(
    keep_prob=st.sampled_from([0.7, 0.8, 0.9, 0.95]),
    seed=st.integers(0, 500),
)
def test_property_estimator_unbiasedness(keep_prob, seed):
    """Across random data, channel inversion stays near the truth."""
    rng = np.random.default_rng(seed)
    baskets = rng.random((3_000, 4)) < rng.uniform(0.1, 0.6)
    rr = RandomizedResponse(keep_prob)
    disclosed = rr.randomize(baskets, seed=rng)
    miner = MaskMiner(rr)
    true = support(baskets, {0, 1})
    estimate = miner.estimate_support(disclosed, {0, 1})
    # tolerance widens as keep_prob drops (variance grows)
    tolerance = 0.05 if keep_prob >= 0.9 else 0.12
    assert abs(estimate - true) < tolerance
