"""Classification experiments (E5–E8 and the E11 ablation).

Runners produce plain lists of result dataclasses so benchmarks, the CLI,
and tests can all consume the same rows.  Strategies being compared always
see *identical* randomized training data (the randomization is done once
per (function, privacy, noise) cell and shared), matching the paper's
methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.datasets import quest
from repro.experiments.config import ClassificationConfig
from repro.tree.pipeline import PrivacyPreservingClassifier
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class ClassificationRow:
    """One (function, strategy) accuracy measurement.

    Attributes
    ----------
    function:
        Quest classification function id.
    strategy:
        Training strategy name.
    noise / privacy:
        Randomization settings (``privacy`` is 0 for ``original``).
    accuracy:
        Test-set accuracy on clean records.
    n_nodes / tree_depth:
        Size of the fitted tree.
    fit_seconds:
        Wall-clock training time.
    n_train:
        Training records used.
    """

    function: int
    strategy: str
    noise: str
    privacy: float
    accuracy: float
    n_nodes: int
    tree_depth: int
    fit_seconds: float
    n_train: int


def _fit_row(
    strategy: str,
    train,
    test,
    config: ClassificationConfig,
    seed,
    randomized=None,
    randomizers=None,
) -> ClassificationRow:
    classifier = PrivacyPreservingClassifier(
        strategy,
        noise=config.noise,
        privacy=config.privacy,
        confidence=config.confidence,
        n_intervals=config.n_intervals,
        seed=seed,
        **config.classifier_options,
    )
    start = time.perf_counter()
    if strategy == "original" or randomized is None:
        classifier.fit(train)
    else:
        classifier.fit(train, randomized_table=randomized, randomizers=randomizers)
    elapsed = time.perf_counter() - start
    return ClassificationRow(
        function=0,  # caller fills in via dataclasses.replace
        strategy=strategy,
        noise=config.noise if strategy != "original" else "none",
        privacy=config.privacy if strategy != "original" else 0.0,
        accuracy=classifier.score(test),
        n_nodes=classifier.tree_.n_nodes,
        tree_depth=classifier.tree_.depth,
        fit_seconds=elapsed,
        n_train=train.n_records,
    )


def run_strategy_comparison(config: ClassificationConfig) -> list:
    """Accuracy of every (function, strategy) cell at one privacy level (E5/E6).

    Returns a list of :class:`ClassificationRow`, ordered by function then
    strategy.
    """
    rows: list = []
    data_rng, noise_rng, fit_rng = spawn_rngs(config.seed, 3)
    for function in config.functions:
        train = quest.generate(config.n_train, function=function, seed=data_rng)
        test = quest.generate(config.n_test, function=function, seed=data_rng)
        randomized, randomizers = quest.randomize(
            train,
            kind=config.noise,
            privacy=config.privacy,
            confidence=config.confidence,
            seed=noise_rng,
        )
        for strategy in config.strategies:
            row = _fit_row(
                strategy, train, test, config, fit_rng, randomized, randomizers
            )
            rows.append(replace(row, function=function))
    return rows


def run_privacy_sweep(
    config: ClassificationConfig, privacy_levels, *, strategies=None
) -> list:
    """Accuracy as privacy grows (E7): one comparison per privacy level."""
    rows: list = []
    for privacy in privacy_levels:
        level_config = replace(
            config,
            privacy=float(privacy),
            strategies=tuple(strategies) if strategies else config.strategies,
        )
        rows.extend(run_strategy_comparison(level_config))
    return rows


def run_training_size_sweep(
    config: ClassificationConfig, sizes, *, strategy: str = "byclass"
) -> list:
    """Accuracy as the training set grows (E11 ablation)."""
    rows: list = []
    for size in sizes:
        size_config = replace(
            config, n_train=int(size), strategies=(strategy, "original")
        )
        rows.extend(run_strategy_comparison(size_config))
    return rows
