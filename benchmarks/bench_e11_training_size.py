"""E11 — Ablation: training-set size (paper methodology check).

The paper trains on 100 000 records; our default harness uses 10 000.
This bench sweeps the size and shows the shape conclusions are stable:
ByClass tracks Original at every size, with the gap narrowing as
reconstruction gets more data.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import (
    ClassificationConfig,
    format_table,
    run_training_size_sweep,
)

SIZES = (1_000, 3_000, 10_000, 30_000)


@experiment(
    "e11",
    title="Training-set size ablation, Fn3 ByClass vs Original",
    tags=("classification", "ablation"),
    seed=1100,
)
def run_e11(ctx):
    config = ClassificationConfig(
        functions=(3,),
        noise="uniform",
        privacy=1.0,
        n_test=ctx.scaled(3_000),
        seed=ctx.seed,
    )
    sizes = tuple(ctx.scaled(s) for s in SIZES)
    ctx.record(
        function=3,
        noise=config.noise,
        privacy=config.privacy,
        n_test=config.n_test,
        sizes=",".join(str(s) for s in sizes),
    )
    rows = run_training_size_sweep(config, sizes, strategy="byclass")

    acc = {(r.n_train, r.strategy): r.accuracy for r in rows}
    table_rows = [
        (
            n,
            f"{100 * acc[(n, 'original')]:.1f}",
            f"{100 * acc[(n, 'byclass')]:.1f}",
        )
        for n in sizes
    ]
    table = format_table(
        ("n_train", "original %", "byclass %"),
        table_rows,
        title="E11: Fn3 accuracy vs training size (100% privacy, uniform)",
    )
    ctx.report(table, name="e11_training_size")

    metrics = {}
    for base_size, n in zip(SIZES, sizes):
        metrics[f"original_n{base_size}"] = float(acc[(n, "original")])
        metrics[f"byclass_n{base_size}"] = float(acc[(n, "byclass")])
    # byclass benefits from data: largest size beats smallest clearly
    assert acc[(sizes[-1], "byclass")] > acc[(sizes[0], "byclass")]
    # original is roughly size-insensitive past a few thousand records
    assert abs(acc[(sizes[-1], "original")] - acc[(sizes[-2], "original")]) < 0.05
    return metrics


def test_e11_training_size(benchmark):
    run_experiment(benchmark, "e11")
