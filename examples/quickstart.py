"""Quickstart: the paper's pipeline in thirty lines.

A set of data providers hold private records.  Each disclosess randomized
values only; the server reconstructs per-class distributions and still
trains an accurate decision tree.  Run:

    python examples/quickstart.py
"""

from repro import PrivacyPreservingClassifier, quest

# 1. The workload: Quest records labelled by classification function 2
#    (Group A depends on age and salary).
train = quest.generate(10_000, function=2, seed=0)
test = quest.generate(3_000, function=2, seed=1)

# 2. Train WITHOUT privacy (the upper baseline).
original = PrivacyPreservingClassifier("original").fit(train)

# 3. Train at "100% privacy at 95% confidence": every disclosed value
#    carries additive uniform noise as wide as the attribute's domain.
#    ByClass = the paper's recommended strategy: reconstruct each
#    attribute's distribution per class, correct records, grow the tree.
private = PrivacyPreservingClassifier(
    "byclass", noise="uniform", privacy=1.0, seed=2
).fit(train)

# 4. The lower baseline: train directly on the noisy values.
naive = PrivacyPreservingClassifier(
    "randomized", noise="uniform", privacy=1.0, seed=2
).fit(train)

print(f"original   (no privacy)   accuracy: {original.score(test):.3f}")
print(f"byclass    (100% privacy) accuracy: {private.score(test):.3f}")
print(f"randomized (100% privacy) accuracy: {naive.score(test):.3f}")
print()
print("Decision tree learned from randomized data (top levels):")
print(private.tree_.export_text(max_depth=2))
