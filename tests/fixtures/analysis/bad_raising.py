"""Known-bad fixture for the exception-discipline checker (E001/E002).

Parsed by ``tests/test_analysis.py`` under a ``src/repro/...`` relpath;
never imported.
"""


def validate(x):
    if x < 0:
        raise ValueError("negative")  # E001: builtin raise in library code
    return x


def from_payload(payload):
    return payload["kind"]  # E002: unguarded decode subscript


def load_config(doc):
    try:
        return doc["settings"]  # guarded: no finding
    except KeyError:
        raise NotImplementedError("stub")  # allowed builtin


class Box:
    def __getattr__(self, name):
        raise AttributeError(name)  # allowed: attribute protocol
