"""ASCII rendering of experiment results.

Benchmarks print the same rows/series the paper reports; this module is
the single place that turns result rows into aligned text tables so every
bench and the CLI look alike.
"""

from __future__ import annotations

from repro.exceptions import ValidationError


def format_table(headers, rows, *, title: str = "") -> str:
    """Render rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column header strings.
    rows:
        Iterable of row tuples; every cell is converted with ``str``.
    title:
        Optional caption printed above the table.
    """
    headers = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row {row} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def accuracy_matrix(rows, *, row_key="function", col_key="strategy") -> str:
    """Pivot :class:`~repro.experiments.classification.ClassificationRow` lists.

    Produces the paper's figure layout: one row per function, one column
    per strategy, cells showing accuracy in percent.
    """
    row_values = sorted({getattr(r, row_key) for r in rows})
    col_values = list(dict.fromkeys(getattr(r, col_key) for r in rows))
    headers = [row_key] + [str(c) for c in col_values]
    table_rows = []
    for rv in row_values:
        cells = [str(rv)]
        for cv in col_values:
            matches = [
                r
                for r in rows
                if getattr(r, row_key) == rv and getattr(r, col_key) == cv
            ]
            if matches:
                cells.append(f"{100.0 * matches[-1].accuracy:.1f}")
            else:
                cells.append("-")
        table_rows.append(tuple(cells))
    return format_table(headers, table_rows)
