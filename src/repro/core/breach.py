"""Worst-case privacy-breach analysis of a randomization operator.

The paper's §2.1 metric (confidence-interval width) measures *average*
disclosure.  The follow-on literature pointed out that averages hide
worst cases: a rare value can become near-certain to an attacker who
sees a particular disclosed value.  The standard formalization is the
(rho1, rho2) *privacy breach*: disclosure causes a breach if some
property with prior probability at most ``rho1`` gets posterior
probability at least ``rho2`` after observing the disclosed value.

This module computes that analysis exactly on the discretized model —
posterior matrix, worst-case posterior per disclosed interval, breach
test, and the noise operator's *amplification factor*
``gamma = max_s max_{p,p'} P(s|p) / P(s|p')``, which bounds the
achievable posterior/prior ratio independent of the prior (amplification
at most gamma means no (rho1, rho2) breach with
``rho2/(1-rho2) > gamma * rho1/(1-rho1)``).

Notably, bounded-support uniform noise has *infinite* amplification
(some disclosed values are impossible under some originals), while
Gaussian noise keeps it finite — a worst-case argument for Gaussian
randomization that the average-case metric cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.core.randomizers import AdditiveRandomizer, transition_matrix
from repro.exceptions import ValidationError
from repro.utils.validation import check_fraction

#: disclosed-value intervals with mass below this are ignored (unreachable)
_REACHABLE_ATOL = 1e-12


@dataclass(frozen=True)
class BreachAnalysis:
    """Result of a worst-case disclosure analysis.

    Attributes
    ----------
    rho1 / rho2:
        The breach thresholds tested.
    breached:
        True when some x-interval with prior <= ``rho1`` reaches
        posterior >= ``rho2`` for some reachable disclosed interval.
    worst_posterior:
        The largest posterior probability of any *low-prior* (<= rho1)
        x-interval across reachable disclosed intervals (0 when no
        x-interval has prior <= rho1).
    worst_posterior_any:
        The largest posterior of *any* x-interval (how certain an
        attacker can ever become).
    amplification:
        The operator's amplification factor gamma (may be ``inf`` for
        bounded-support noise).
    posterior:
        Full posterior matrix ``P(X in p | Y in s)`` of shape ``(S, P)``.
    y_mass:
        Marginal probability of each disclosed interval (rows of
        ``posterior`` with ~zero mass are not attackable and are excluded
        from the worst cases).

    Examples
    --------
    >>> from repro.core import (
    ...     HistogramDistribution, Partition, UniformRandomizer, breach_analysis,
    ... )
    >>> prior = HistogramDistribution.uniform(Partition.uniform(0, 1, 10))
    >>> report = breach_analysis(
    ...     prior, UniformRandomizer(half_width=0.05), rho1=0.15, rho2=0.5
    ... )
    >>> bool(report.breached)  # tiny noise: disclosures pin values down
    True
    >>> report.posterior.shape[1]
    10
    """

    rho1: float
    rho2: float
    breached: bool
    worst_posterior: float
    worst_posterior_any: float
    amplification: float
    posterior: np.ndarray
    y_mass: np.ndarray


def amplification_factor(
    prior_partition, randomizer: AdditiveRandomizer, *, coverage: float = 0.999
) -> float:
    """The noise operator's amplification factor ``gamma``.

    ``gamma = max_s max_{p, p'} P(Y in s | X = p) / P(Y in s | X = p')``
    over disclosed intervals ``s`` an attacker can plausibly observe
    (``coverage`` of the noise mass around the domain; gamma grows without
    bound as ever-less-likely disclosures are admitted, so a finite
    observation window is part of the definition).  Infinite when some
    admissible ``s`` is *impossible* under some original value — the case
    for any bounded-support noise such as uniform.

    Examples
    --------
    >>> from repro.core import (
    ...     GaussianRandomizer, Partition, UniformRandomizer,
    ...     amplification_factor,
    ... )
    >>> part = Partition.uniform(0, 1, 5)
    >>> amplification_factor(part, UniformRandomizer(half_width=0.3))
    inf
    >>> bool(amplification_factor(part, GaussianRandomizer(sigma=0.5)) > 1.0)
    True
    """
    y_partition = prior_partition.expanded(randomizer.support_half_width(coverage))
    kernel = transition_matrix(y_partition, prior_partition, randomizer)
    reachable = kernel.max(axis=1) > _REACHABLE_ATOL
    kernel = kernel[reachable]
    row_max = kernel.max(axis=1)
    row_min = kernel.min(axis=1)
    if np.any(row_min <= 0.0):
        return float("inf")
    return float((row_max / row_min).max())


def breach_analysis(
    prior: HistogramDistribution,
    randomizer: AdditiveRandomizer,
    *,
    rho1: float = 0.1,
    rho2: float = 0.5,
    coverage: float = 1.0 - 1e-9,
) -> BreachAnalysis:
    """Exact (rho1, rho2) breach analysis on the discretized model.

    Parameters
    ----------
    prior:
        Distribution of the original values (the attacker's knowledge —
        e.g. the reconstructed distribution itself).
    randomizer:
        The disclosure operator.
    rho1 / rho2:
        Breach thresholds: a breach is an x-interval with prior <= rho1
        whose posterior reaches >= rho2 for some disclosed interval.

    Examples
    --------
    >>> from repro.core import (
    ...     HistogramDistribution, Partition, UniformRandomizer, breach_analysis,
    ... )
    >>> coarse = HistogramDistribution.uniform(Partition.uniform(0, 1, 4))
    >>> report = breach_analysis(
    ...     coarse, UniformRandomizer(half_width=0.05), rho1=0.15, rho2=0.5
    ... )
    >>> bool(report.breached)  # no interval is rare enough (prior > rho1)
    False
    >>> float(report.worst_posterior)
    0.0
    """
    rho1 = check_fraction(rho1, "rho1")
    rho2 = check_fraction(rho2, "rho2")
    if rho2 <= rho1:
        raise ValidationError(
            f"rho2 ({rho2}) must exceed rho1 ({rho1}) for a meaningful test"
        )
    x_partition = prior.partition
    y_partition = x_partition.expanded(randomizer.support_half_width(coverage))
    kernel = transition_matrix(y_partition, x_partition, randomizer)

    joint = kernel * prior.probs[None, :]  # (S, P)
    y_mass = joint.sum(axis=1)
    reachable = y_mass > _REACHABLE_ATOL
    posterior = np.zeros_like(joint)
    posterior[reachable] = joint[reachable] / y_mass[reachable, None]

    low_prior = prior.probs <= rho1
    if np.any(low_prior) and np.any(reachable):
        worst = float(posterior[np.ix_(reachable, low_prior)].max())
    else:
        worst = 0.0
    worst_any = float(posterior[reachable].max()) if np.any(reachable) else 0.0

    return BreachAnalysis(
        rho1=rho1,
        rho2=rho2,
        breached=bool(worst >= rho2),
        worst_posterior=worst,
        worst_posterior_any=worst_any,
        amplification=amplification_factor(x_partition, randomizer),
        posterior=posterior,
        y_mass=y_mass,
    )
