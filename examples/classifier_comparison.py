"""Strategy comparison: the paper's headline experiment at laptop scale.

Compares Original / Randomized / Global / ByClass / Local on all five
Quest classification functions at 100 % privacy with uniform noise — the
shape of the paper's central accuracy figure.  Run:

    python examples/classifier_comparison.py            # ~30 s
    PPDM_BENCH_SCALE=10 python examples/classifier_comparison.py  # paper scale
"""

from repro.experiments import ClassificationConfig, run_strategy_comparison
from repro.experiments.config import scaled
from repro.experiments.reporting import accuracy_matrix

config = ClassificationConfig(
    functions=(1, 2, 3, 4, 5),
    strategies=("original", "randomized", "global", "byclass", "local"),
    noise="uniform",
    privacy=1.0,
    n_train=scaled(10_000),
    n_test=scaled(3_000),
    seed=7,
)

print(
    f"Accuracy (%) at 100% privacy, uniform noise, "
    f"n_train={config.n_train}:\n"
)
rows = run_strategy_comparison(config)
print(accuracy_matrix(rows))

print("\nTraining cost (seconds) by strategy:")
by_strategy: dict = {}
for row in rows:
    by_strategy.setdefault(row.strategy, []).append(row.fit_seconds)
for strategy, seconds in by_strategy.items():
    print(f"  {strategy:<11s} {sum(seconds) / len(seconds):6.2f}s per function")

print(
    "\nReading: ByClass/Local recover most of the accuracy the Randomized\n"
    "baseline loses, at a fraction of Original's privacy cost; Local's\n"
    "per-node reconstructions make it the most expensive strategy."
)
