"""Property-based invariants driven by a stdlib-``random`` mini-harness.

No new dependencies: each property runs >= 200 generated cases per base
seed through a seeded generator with a greedy shrinking loop.  On
failure the harness prints the base seed, the failing case index, and a
shrunk copy of the case — rerun any failure exactly with::

    PPDM_PROPERTY_SEED=<seed> python -m pytest tests/test_properties.py

``PPDM_PROPERTY_CASES`` overrides the per-property case count (the
default keeps the whole file inside a few seconds of tier-1 wall time;
CI's coverage job runs the same default).

Properties pinned here:

* randomizer round trips — shape/count preservation, hard support
  bounds, and mass conservation on the noise-expanded grid,
* reconstruction outputs — always nonnegative and normalized, whatever
  the (shape, noise, grid) draw,
* ``ShardSet`` merges — associative and commutative across random shard
  counts, ingestion orders, thread interleavings, and class columns,
* basket wire frames (v4) — encode/decode round trips, self-delimiting
  multi-frame bodies, and rejection of every truncation,
* ``SupportShardSet`` merges — the mining counters' associative /
  commutative / identity merge algebra, bitwise at any shard count,
* service-side Apriori — bit-identical itemsets and rules vs the
  offline ``repro.mining`` pipeline across random basket, shard, and
  threshold configurations.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core import (
    GaussianRandomizer,
    Partition,
    StreamingReconstructor,
    UniformRandomizer,
)
from repro.core.engine import ReconstructionEngine
from repro.exceptions import ValidationError
from repro.service import (
    AggregationService,
    AttributeSpec,
    ShardSet,
    decode_labeled,
    encode_columns,
)

SEED_ENV = "PPDM_PROPERTY_SEED"
CASES_ENV = "PPDM_PROPERTY_CASES"
DEFAULT_SEED = 20260728
#: >= 200 generated cases per property per seed (the issue's floor)
DEFAULT_CASES = 200


def base_seed() -> int:
    return int(os.environ.get(SEED_ENV, DEFAULT_SEED))


def n_cases() -> int:
    return int(os.environ.get(CASES_ENV, DEFAULT_CASES))


def _shrink_case(case, check, shrinkers, budget: int = 200):
    """Greedy shrink: keep taking the first smaller case that still fails."""
    if not shrinkers:
        return case
    for _ in range(budget):
        for candidate in shrinkers(case):
            try:
                check(candidate)
            except AssertionError:
                case = candidate
                break
            except Exception:  # noqa: BLE001 - shrunk into invalid input
                continue
        else:
            return case
    return case


def run_property(name, generate, check, *, shrinkers=None):
    """Run ``check(generate(rng))`` across seeded cases; shrink failures.

    The reproduction contract: every case derives deterministically from
    (base seed, case index), and a failure names both plus a shrunk
    failing case.
    """
    seed = base_seed()
    total = n_cases()
    for index in range(total):
        rng = random.Random((seed << 20) + index)
        case = generate(rng)
        try:
            check(case)
        except AssertionError as exc:
            shrunk = _shrink_case(case, check, shrinkers)
            raise AssertionError(
                f"property {name!r} failed at case {index}/{total} for base "
                f"seed {seed}.\nReproduce with: {SEED_ENV}={seed} python -m "
                f"pytest tests/test_properties.py\nShrunk failing case: "
                f"{shrunk!r}\nOriginal failure: {exc}"
            ) from exc


def _shrink_values(case):
    """Generic shrinker: halve every list-valued field, one at a time."""
    for key, value in case.items():
        if isinstance(value, list) and len(value) > 1:
            half = len(value) // 2
            for kept in (value[:half], value[half:]):
                smaller = dict(case)
                smaller[key] = kept
                yield smaller


# ----------------------------------------------------------------------
# Randomizer round trips
# ----------------------------------------------------------------------
def _gen_randomizer_case(rng: random.Random) -> dict:
    kind = rng.choice(("uniform", "gaussian"))
    low = rng.uniform(-50.0, 40.0)
    span = rng.uniform(0.5, 90.0)
    return {
        "kind": kind,
        "parameter": rng.uniform(0.05, 2.0) * span,
        "low": low,
        "high": low + span,
        "n_intervals": rng.randint(2, 16),
        "values": [rng.uniform(low, low + span) for _ in range(rng.randint(1, 40))],
        "seed": rng.randint(0, 2**31),
    }


def _check_randomizer_roundtrip(case) -> None:
    if case["kind"] == "uniform":
        noise = UniformRandomizer(half_width=case["parameter"])
    else:
        noise = GaussianRandomizer(sigma=case["parameter"])
    x = np.asarray(case["values"], dtype=float)
    w = noise.randomize(x, seed=case["seed"])
    # shape and count preservation, and determinism at a fixed seed
    assert w.shape == x.shape
    assert np.all(np.isfinite(w))
    assert np.array_equal(w, noise.randomize(x, seed=case["seed"]))
    if case["kind"] == "uniform":
        # hard support: |w - x| can never exceed the half width
        assert np.all(np.abs(w - x) <= case["parameter"] * (1 + 1e-12))
        # mass conservation: the noise-expanded grid captures every
        # disclosure, so the randomized histogram holds exactly n records
        part = Partition.uniform(case["low"], case["high"], case["n_intervals"])
        y_part = part.expanded(noise.support_half_width())
        assert y_part.histogram(w).sum() == x.size


def test_property_randomizer_roundtrip():
    run_property(
        "randomizer-roundtrip",
        _gen_randomizer_case,
        _check_randomizer_roundtrip,
        shrinkers=_shrink_values,
    )


# ----------------------------------------------------------------------
# Reconstruction outputs
# ----------------------------------------------------------------------
def _gen_reconstruction_case(rng: random.Random) -> dict:
    low = rng.uniform(-5.0, 5.0)
    span = rng.uniform(0.5, 10.0)
    centers = [rng.uniform(0.1, 0.9) for _ in range(rng.randint(1, 3))]
    values = []
    for _ in range(rng.randint(20, 150)):
        c = rng.choice(centers)
        values.append(low + span * min(max(rng.gauss(c, 0.1), 0.0), 1.0))
    return {
        "kind": rng.choice(("uniform", "gaussian")),
        "noise_scale": rng.uniform(0.05, 1.0) * span,
        "low": low,
        "high": low + span,
        "n_intervals": rng.randint(2, 12),
        "values": values,
        "seed": rng.randint(0, 2**31),
        "stopping": rng.choice(("chi2", "delta")),
    }


def _check_reconstruction(case) -> None:
    if case["kind"] == "uniform":
        noise = UniformRandomizer(half_width=case["noise_scale"])
    else:
        noise = GaussianRandomizer(sigma=case["noise_scale"])
    part = Partition.uniform(case["low"], case["high"], case["n_intervals"])
    w = noise.randomize(np.asarray(case["values"]), seed=case["seed"])
    from repro.core import EngineConfig

    engine = ReconstructionEngine(
        EngineConfig(max_iterations=40, stopping=case["stopping"])
    )
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = engine.reconstruct(w, part, noise)
    probs = result.distribution.probs
    assert probs.shape == (case["n_intervals"],)
    assert np.all(probs >= 0.0), f"negative probability: {probs.min()}"
    assert np.all(np.isfinite(probs))
    assert abs(probs.sum() - 1.0) < 1e-9, f"mass {probs.sum()} != 1"
    assert 1 <= result.n_iterations <= 40


def test_property_reconstruction_nonnegative_normalized():
    run_property(
        "reconstruction-nonnegative-normalized",
        _gen_reconstruction_case,
        _check_reconstruction,
        shrinkers=_shrink_values,
    )


# ----------------------------------------------------------------------
# ShardSet merge algebra
# ----------------------------------------------------------------------
def _gen_shard_case(rng: random.Random) -> dict:
    n_attributes = rng.randint(1, 3)
    attributes = []
    for j in range(n_attributes):
        low = rng.uniform(-10.0, 10.0)
        span = rng.uniform(0.5, 20.0)
        attributes.append(
            {
                "name": f"a{j}",
                "low": low,
                "high": low + span,
                "n_intervals": rng.randint(2, 10),
            }
        )
    n_classes = rng.randint(0, 3)
    batches = []
    for _ in range(rng.randint(1, 6)):
        size = rng.randint(0, 25)
        batch = {
            "values": {
                a["name"]: [
                    rng.uniform(a["low"], a["high"]) for _ in range(size)
                ]
                for a in attributes
                if rng.random() < 0.8 or n_classes
            },
            "classes": (
                [rng.randrange(n_classes) for _ in range(size)]
                if n_classes and rng.random() < 0.7
                else None
            ),
        }
        if not batch["values"]:
            batch["values"] = {attributes[0]["name"]: [
                rng.uniform(attributes[0]["low"], attributes[0]["high"])
                for _ in range(size)
            ]}
        batches.append(batch)
    return {
        "attributes": attributes,
        "n_classes": n_classes,
        "batches": batches,
        "shard_counts": sorted({rng.randint(1, 7) for _ in range(3)}),
    }


def _shard_partitions(case) -> dict:
    return {
        a["name"]: Partition.uniform(a["low"], a["high"], a["n_intervals"])
        for a in case["attributes"]
    }


def _fill(case, shard_counts_order, batch_order):
    """Ingest the case's batches into a fresh ShardSet; return merged state."""
    parts = _shard_partitions(case)
    shards = ShardSet(parts, shard_counts_order, n_classes=case["n_classes"])
    for index in batch_order:
        batch = case["batches"][index]
        shards.ingest(batch["values"], classes=batch["classes"])
    merged = {name: shards.merged(name) for name in parts}
    by_class = {name: shards.merged_by_class(name) for name in parts}
    return merged, by_class


def _check_shard_merge(case) -> None:
    orders = [
        list(range(len(case["batches"]))),
        list(reversed(range(len(case["batches"])))),
    ]
    reference = None
    for shard_count in case["shard_counts"]:
        for order in orders:
            merged, by_class = _fill(case, shard_count, order)
            if reference is None:
                reference = (merged, by_class)
                continue
            for name in merged:
                # commutative + shard-count independent, bitwise
                assert np.array_equal(merged[name][0], reference[0][name][0])
                assert merged[name][1] == reference[0][name][1]
                assert np.array_equal(by_class[name], reference[1][name])
                # class blocks partition the all-records histogram exactly
                assert np.array_equal(
                    by_class[name].sum(axis=0), merged[name][0]
                )

    # merge_from is associative: ((a + b) + c) == (a + (b + c)) bitwise
    parts = _shard_partitions(case)

    def shard_with(batch_indices):
        from repro.service import HistogramShard

        shard = HistogramShard(parts, n_classes=case["n_classes"])
        for index in batch_indices:
            batch = case["batches"][index]
            shard.ingest(batch["values"], classes=batch["classes"])
        return shard

    n = len(case["batches"])
    thirds = [list(range(0, n, 3)), list(range(1, n, 3)), list(range(2, n, 3))]
    left = shard_with(thirds[0]).merge_from(shard_with(thirds[1]))
    left.merge_from(shard_with(thirds[2]))
    right_tail = shard_with(thirds[1]).merge_from(shard_with(thirds[2]))
    right = shard_with(thirds[0]).merge_from(right_tail)
    for name in parts:
        a_counts, a_seen = left.partial(name)
        b_counts, b_seen = right.partial(name)
        assert np.array_equal(a_counts, b_counts)
        assert a_seen == b_seen


def test_property_shardset_merge_algebra():
    run_property(
        "shardset-merge-algebra",
        _gen_shard_case,
        _check_shard_merge,
        shrinkers=None,
    )


# ----------------------------------------------------------------------
# Differential parity fuzz: random service configurations vs the
# single-stream StreamingReconstructor
# ----------------------------------------------------------------------
def _gen_parity_case(rng: random.Random) -> dict:
    return {
        "n_shards": rng.randint(1, 6),
        "n_threads": rng.randint(1, 4),
        "wire": rng.choice(("python", "columns", "ndjson")),
        "n_records": rng.randint(200, 1200),
        "n_batches": rng.randint(1, 12),
        "labeled_fraction": rng.choice((0.0, 0.3, 1.0)),
        "class_skew": rng.uniform(0.05, 0.95),
        "pin_shards": rng.random() < 0.5,
        "seed": rng.randint(0, 2**31),
    }


def _check_service_parity(case) -> None:
    import json
    from concurrent.futures import ThreadPoolExecutor

    part = Partition.uniform(0.0, 1.0, 10)
    noise = UniformRandomizer(half_width=0.25)
    rng = np.random.default_rng(case["seed"])
    x = rng.uniform(0.1, 0.9, case["n_records"])
    w = noise.randomize(x, seed=rng)
    labels = (rng.random(case["n_records"]) < case["class_skew"]).astype(int)
    labeled = rng.random(case["n_records"]) < case["labeled_fraction"]

    service = AggregationService(
        [AttributeSpec("x", part, noise)],
        n_shards=case["n_shards"],
        classes=2,
    )
    chunks = np.array_split(np.arange(case["n_records"]), case["n_batches"])

    def ingest_chunk(args):
        thread_index, chunk_list = args
        for chunk in chunk_list:
            for subset in (chunk[labeled[chunk]], chunk[~labeled[chunk]]):
                if subset.size == 0 and case["wire"] == "python":
                    continue
                classes = (
                    labels[subset] if labeled[subset].all() and subset.size else None
                )
                shard = (
                    thread_index % case["n_shards"] if case["pin_shards"] else None
                )
                batch = {"x": w[subset]}
                if case["wire"] == "columns":
                    frame = encode_columns(batch, shard=shard, classes=classes)
                    dec_batch, dec_classes, dec_shard = decode_labeled(frame)
                    service.ingest_prepared(
                        service.prepare(dec_batch, dec_classes), shard=dec_shard
                    )
                elif case["wire"] == "ndjson":
                    line = {"batch": {"x": w[subset].tolist()}}
                    if classes is not None:
                        line["classes"] = classes.tolist()
                    record = json.loads(json.dumps(line))
                    service.ingest(
                        record["batch"],
                        shard=shard,
                        classes=record.get("classes"),
                    )
                else:
                    service.ingest(batch, shard=shard, classes=classes)

    assignments = [
        (t, chunks[t :: case["n_threads"]]) for t in range(case["n_threads"])
    ]
    if case["n_threads"] == 1:
        ingest_chunk(assignments[0])
    else:
        with ThreadPoolExecutor(max_workers=case["n_threads"]) as pool:
            list(pool.map(ingest_chunk, assignments))

    stream = StreamingReconstructor(part, noise).update(w)
    expected = stream.estimate()
    got = service.estimate("x")
    assert service.n_seen("x") == case["n_records"]
    assert np.array_equal(expected.distribution.probs, got.distribution.probs)
    assert expected.n_iterations == got.n_iterations
    assert expected.chi2_statistic == got.chi2_statistic


def test_differential_parity_fuzz():
    """Random (shards, threads, wire, split, class skew) configurations
    keep service estimates bit-identical to the single stream —
    generalizing the hand-picked cases in tests/test_service.py."""
    run_property(
        "service-differential-parity",
        _gen_parity_case,
        _check_service_parity,
    )


# ----------------------------------------------------------------------
# Basket wire frames (v4): round trips and truncation rejection
# ----------------------------------------------------------------------
def _gen_basket_wire_case(rng: random.Random) -> dict:
    n_items = rng.randint(1, 20)
    density = rng.choice((0.0, 0.2, 0.7, 1.0))
    rows = [
        [rng.random() < density for _ in range(n_items)]
        for _ in range(rng.randint(1, 40))
    ]
    return {
        "n_items": n_items,
        "rows": rows,
        "shard": rng.choice((None, rng.randint(0, 7))),
        "n_frames": rng.randint(1, 4),
        "cut_seed": rng.randint(0, 2**31),
    }


def _check_basket_wire_roundtrip(case) -> None:
    from repro.service import decode_baskets, encode_baskets, iter_basket_frames

    matrix = np.asarray(case["rows"], dtype=bool)
    body = encode_baskets(matrix, shard=case["shard"])
    decoded, shard = decode_baskets(body)
    assert decoded.dtype == np.bool_
    assert np.array_equal(decoded, matrix)
    assert shard == case["shard"]
    # self-delimiting: N concatenated frames come back frame by frame
    parts = list(iter_basket_frames(body * case["n_frames"]))
    assert len(parts) == case["n_frames"]
    for part_matrix, part_shard in parts:
        assert np.array_equal(part_matrix, matrix)
        assert part_shard == case["shard"]
    # every truncation is rejected — a frame is absorbed whole or not
    # at all (the body is exactly the declared bytes, so any proper
    # prefix is missing declared payload)
    cut = case["cut_seed"] % (len(body) - 1) + 1
    with pytest.raises(ValidationError):
        decode_baskets(body[:cut])


def test_property_basket_wire_roundtrip():
    run_property(
        "basket-wire-roundtrip",
        _gen_basket_wire_case,
        _check_basket_wire_roundtrip,
        shrinkers=_shrink_values,
    )


# ----------------------------------------------------------------------
# SupportShardSet merge algebra
# ----------------------------------------------------------------------
def _gen_support_case(rng: random.Random) -> dict:
    n_items = rng.randint(1, 8)
    batches = []
    for _ in range(rng.randint(1, 6)):
        size = rng.randint(0, 20)
        batches.append(
            [[rng.random() < 0.4 for _ in range(n_items)] for _ in range(size)]
        )
    return {
        "n_items": n_items,
        "batches": batches,
        "shard_counts": sorted({rng.randint(1, 6) for _ in range(3)}),
    }


def _support_batch(case, index: int) -> np.ndarray:
    return np.asarray(case["batches"][index], dtype=bool).reshape(-1, case["n_items"])


def _check_support_merge(case) -> None:
    from repro.service import SupportShard, SupportShardSet

    def fill(n_shards, order):
        shards = SupportShardSet(case["n_items"], n_shards=n_shards)
        for index in order:
            shards.ingest(_support_batch(case, index))
        return shards.merged_patterns()

    n = len(case["batches"])
    orders = [list(range(n)), list(reversed(range(n)))]
    reference = None
    for n_shards in case["shard_counts"]:
        for order in orders:
            merged = fill(n_shards, order)
            if reference is None:
                reference = merged
                assert int(merged.sum()) == sum(
                    len(batch) for batch in case["batches"]
                )
                continue
            # commutative + shard-count independent, bitwise
            assert np.array_equal(merged, reference)

    def shard_with(indices):
        shard = SupportShard(case["n_items"])
        for index in indices:
            shard.ingest(_support_batch(case, index))
        return shard

    # merge_from is associative: ((a + b) + c) == (a + (b + c)) bitwise
    thirds = [list(range(0, n, 3)), list(range(1, n, 3)), list(range(2, n, 3))]
    left = shard_with(thirds[0]).merge_from(shard_with(thirds[1]))
    left.merge_from(shard_with(thirds[2]))
    right = shard_with(thirds[0]).merge_from(
        shard_with(thirds[1]).merge_from(shard_with(thirds[2]))
    )
    assert np.array_equal(left.pattern_counts(), right.pattern_counts())
    assert left.n_seen == right.n_seen
    # a fresh shard is the merge identity
    everything = shard_with(range(n))
    before = everything.pattern_counts()
    everything.merge_from(SupportShard(case["n_items"]))
    assert np.array_equal(everything.pattern_counts(), before)
    assert np.array_equal(before, reference)


def test_property_supportshard_merge_algebra():
    run_property(
        "supportshard-merge-algebra",
        _gen_support_case,
        _check_support_merge,
        shrinkers=None,
    )


# ----------------------------------------------------------------------
# Differential parity fuzz: service-side Apriori vs the offline miner
# ----------------------------------------------------------------------
def _gen_mining_parity_case(rng: random.Random) -> dict:
    return {
        "n_items": rng.randint(2, 8),
        "n_rows": rng.randint(50, 600),
        "n_shards": rng.randint(1, 5),
        "n_batches": rng.randint(1, 8),
        "keep_prob": rng.choice((0.7, 0.8, 0.9, 0.95)),
        "min_support": rng.uniform(0.05, 0.5),
        "min_confidence": rng.uniform(0.1, 0.9),
        "max_size": rng.randint(1, 3),
        "seed": rng.randint(0, 2**31),
    }


def _check_mining_parity(case) -> None:
    from repro.mining import MaskMiner, RandomizedResponse, association_rules
    from repro.service import MiningService

    rng = np.random.default_rng(case["seed"])
    clean = rng.random((case["n_rows"], case["n_items"])) < rng.random(
        case["n_items"]
    )
    response = RandomizedResponse(keep_prob=case["keep_prob"])
    disclosed = response.randomize(clean, seed=rng)

    service = MiningService(
        response,
        case["n_items"],
        n_shards=case["n_shards"],
        max_size=case["max_size"],
    )
    for chunk in np.array_split(np.arange(case["n_rows"]), case["n_batches"]):
        if chunk.size:
            service.ingest(disclosed[chunk])
    result = service.mine(case["min_support"], case["min_confidence"])

    miner = MaskMiner(response, max_size=case["max_size"])
    expected_sets = miner.frequent_itemsets(disclosed, case["min_support"])
    expected_rules = association_rules(expected_sets, case["min_confidence"])

    # bit-identical supports (dict equality compares exact floats)
    assert result.itemsets == expected_sets
    assert result.n_baskets == case["n_rows"]

    def canonical(rule):
        return (sorted(rule.antecedent), sorted(rule.consequent))

    assert sorted(result.rules, key=canonical) == sorted(
        expected_rules, key=canonical
    )


def test_differential_mining_parity_fuzz():
    """Random (baskets, shards, thresholds) configurations keep the
    service-side miner bit-identical to the offline ``repro.mining``
    pipeline — generalizing the hand-picked cases in
    tests/test_service_mining.py."""
    run_property(
        "mining-differential-parity",
        _gen_mining_parity_case,
        _check_mining_parity,
    )


def test_properties_print_reproduction_seed():
    """A failing property names the seed + env var to rerun it."""
    def generate(rng):
        return {"value": rng.randint(0, 100)}

    def check(case):
        assert case["value"] < 0, "always fails"

    with pytest.raises(AssertionError) as excinfo:
        run_property("always-fails", generate, check)
    message = str(excinfo.value)
    assert SEED_ENV in message
    assert str(base_seed()) in message
    assert "Shrunk failing case" in message


def test_shrinker_reduces_failing_case():
    def generate(rng):
        return {"values": list(range(10))}

    def check(case):
        assert 7 not in case["values"]

    with pytest.raises(AssertionError) as excinfo:
        run_property("shrinks", generate, check, shrinkers=_shrink_values)
    # the shrunk case kept 7 but dropped (at least) half the rest
    assert "7" in str(excinfo.value)
