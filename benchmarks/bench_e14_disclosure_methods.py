"""E14 — Ablation: §2's two disclosure methods + tree pruning.

The paper's §2 weighs *value distortion* (additive noise, then
reconstruction) against *value-class membership* (disclose only a coarse
interval) and chooses distortion.  E14a regenerates that comparison at
matched privacy levels.  E14b measures the reduced-error-pruning option
(the SPRINT-lineage regularization the original system had and our
default configuration exposes via ``prune_fraction``).
"""

from __future__ import annotations

from _common import once, report

from repro.datasets import quest
from repro.experiments import format_table
from repro.experiments.config import scaled
from repro.tree import PrivacyPreservingClassifier

LEVELS = (0.1, 0.25, 0.5, 1.0)
FUNCTION = 2


def _run():
    n_train, n_test = scaled(10_000), scaled(3_000)
    train = quest.generate(n_train, function=FUNCTION, seed=1400)
    test = quest.generate(n_test, function=FUNCTION, seed=1401)

    # Method comparison: both disclosure methods get the same stronger
    # tree (deeper growth + reduced-error pruning), so the measured gap is
    # the disclosure method's, not the default stopping heuristics'.
    tree_options = dict(max_depth=12, prune_fraction=0.15)
    methods = {}
    for level in LEVELS:
        byclass = PrivacyPreservingClassifier(
            "byclass", privacy=level, seed=1402, **tree_options
        ).fit(train)
        valueclass = PrivacyPreservingClassifier(
            "valueclass", privacy=level, seed=1402, **tree_options
        ).fit(train)
        methods[level] = {
            "byclass": byclass.score(test),
            "valueclass": valueclass.score(test),
        }

    pruning = {}
    for strategy in ("randomized", "byclass"):
        grown = PrivacyPreservingClassifier(
            strategy, privacy=1.0, seed=1403
        ).fit(train)
        pruned = PrivacyPreservingClassifier(
            strategy, privacy=1.0, seed=1403, prune_fraction=0.2
        ).fit(train)
        pruning[strategy] = {
            "grown_acc": grown.score(test),
            "grown_nodes": grown.tree_.n_nodes,
            "pruned_acc": pruned.score(test),
            "pruned_nodes": pruned.tree_.n_nodes,
        }
    return methods, pruning


def test_e14_disclosure_methods(benchmark):
    methods, pruning = once(benchmark, _run)

    method_rows = [
        (
            f"{level:g}",
            f"{100 * methods[level]['byclass']:.1f}",
            f"{100 * methods[level]['valueclass']:.1f}",
        )
        for level in LEVELS
    ]
    method_table = format_table(
        ("privacy", "distortion+byclass %", "value-class %"),
        method_rows,
        title=f"E14a: Fn{FUNCTION} — value distortion vs value-class membership",
    )

    prune_rows = [
        (
            strategy,
            f"{100 * cell['grown_acc']:.1f}",
            cell["grown_nodes"],
            f"{100 * cell['pruned_acc']:.1f}",
            cell["pruned_nodes"],
        )
        for strategy, cell in pruning.items()
    ]
    prune_table = format_table(
        ("strategy", "acc %", "nodes", "pruned acc %", "pruned nodes"),
        prune_rows,
        title="E14b: reduced-error pruning at 100% privacy",
    )
    report("e14_disclosure_methods", method_table + "\n\n" + prune_table)

    # the paper's §2 choice: distortion at least matches discretization
    for level in LEVELS:
        assert (
            methods[level]["byclass"] >= methods[level]["valueclass"] - 0.03
        ), level
    # and wins clearly somewhere in the sweep
    assert any(
        methods[level]["byclass"] > methods[level]["valueclass"] + 0.05
        for level in LEVELS
    )
    # pruning shrinks trees a lot without costing accuracy
    for strategy, cell in pruning.items():
        assert cell["pruned_nodes"] < cell["grown_nodes"], strategy
        assert cell["pruned_acc"] > cell["grown_acc"] - 0.05, strategy
