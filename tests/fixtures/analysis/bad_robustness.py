"""Known-bad fixture: swallowed exceptions in the serving tier."""

import logging

logger = logging.getLogger(__name__)


def swallow(push):
    try:
        push()
    except OSError:
        pass  # R001: failure discarded silently


def swallow_ellipsis(push):
    try:
        push()
    except (ValueError, KeyError):
        ...


def swallow_bare(push):
    try:
        push()
    except:  # noqa: E722
        pass


def handled(push):
    try:
        push()
    except OSError as exc:
        logger.warning("push failed: %s", exc)


def counted(push, stats):
    try:
        push()
    except OSError:
        stats["failures"] += 1
        pass
