"""Tests for the multi-worker cluster tier (repro.service.cluster).

Covers the partial wire frame (version 3), the export/replace sync
primitives, coordinator registration/push/pull/health, the failure
modes the operator's guide promises (worker death, retry-with-backoff,
drain-on-shutdown, malformed pushes absorbing nothing), the HTTP
surface, and one real spawned-process topology smoke.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import Partition, UniformRandomizer
from repro.exceptions import ClusterError, ValidationError
from repro.service import (
    AggregationService,
    AttributeSpec,
    ClusterCoordinator,
    PartialShipper,
    ServiceHTTPServer,
    TrainingService,
    decode_partial,
    encode_partial,
    export_sync_body,
    split_partial,
)
from repro.service.cluster import register_worker, start_cluster
from repro.service.wire import CONTENT_TYPE_PARTIAL


def make_noise():
    return UniformRandomizer(half_width=0.25)


def make_service(*, classes=0, n_shards=2):
    noise = make_noise()
    return AggregationService(
        [
            AttributeSpec("x", Partition.uniform(0, 1, 6), noise),
            AttributeSpec("y", Partition.uniform(0, 1, 4), noise),
        ],
        n_shards=n_shards,
        classes=classes,
    )


def make_batch(seed, n=200, *, classes=None):
    rng = np.random.default_rng(seed)
    noise = make_noise()
    batch = {
        "x": noise.randomize(rng.uniform(0.2, 0.8, n), seed=rng),
        "y": noise.randomize(rng.uniform(0.1, 0.9, n), seed=rng),
    }
    labels = rng.integers(0, classes, n) if classes else None
    return batch, labels


def assert_same_estimates(left, right):
    for name in ("x", "y"):
        a = left.estimate(name, warn=False)
        b = right.estimate(name, warn=False)
        assert a.n_iterations == b.n_iterations
        assert np.array_equal(a.distribution.probs, b.distribution.probs)


# ----------------------------------------------------------------------
# Partial wire frame (version 3)
# ----------------------------------------------------------------------
class TestPartialWire:
    def test_roundtrip(self):
        partials = {
            "x": np.array([[1.0, 0.0, 3.0], [2.0, 5.0, 0.0]]),
            "y": np.array([[4.0, 4.0], [0.0, 1.0]]),
        }
        decoded = decode_partial(encode_partial(partials))
        assert set(decoded) == {"x", "y"}
        for name in partials:
            assert np.array_equal(decoded[name], partials[name])

    def test_roundtrip_through_service(self):
        service = make_service(classes=2)
        batch, labels = make_batch(0, classes=2)
        service.ingest(batch, classes=labels)
        decoded = decode_partial(encode_partial(service.export_partial()))
        for name in ("x", "y"):
            assert np.array_equal(decoded[name], service.merged_by_class(name))

    def test_split_returns_remainder(self):
        frame = encode_partial({"x": np.array([[1.0, 2.0]])})
        partials, rest = split_partial(frame + b"TRAILING")
        assert np.array_equal(partials["x"], [[1.0, 2.0]])
        assert bytes(rest) == b"TRAILING"

    def test_decode_rejects_trailing_bytes(self):
        frame = encode_partial({"x": np.array([[1.0]])})
        with pytest.raises(ValidationError, match="split_partial"):
            decode_partial(frame + b"x")

    def test_encode_rejects_empty(self):
        with pytest.raises(ValidationError):
            encode_partial({})

    @pytest.mark.parametrize(
        "matrix",
        [
            np.array([[np.nan, 1.0]]),
            np.array([[np.inf, 1.0]]),
            np.array([[-1.0, 1.0]]),
            np.array([[0.5, 1.0]]),
        ],
        ids=["nan", "inf", "negative", "fractional"],
    )
    def test_encode_rejects_bad_counts(self, matrix):
        with pytest.raises(ValidationError):
            encode_partial({"x": matrix})

    def test_decode_rejects_tampered_counts(self):
        frame = bytearray(encode_partial({"x": np.array([[3.0, 1.0]])}))
        frame[-8:] = np.array([-2.0]).tobytes()
        with pytest.raises(ValidationError):
            decode_partial(bytes(frame))

    @pytest.mark.parametrize("cut", [1, 4, 7, 11, 20, -1])
    def test_decode_rejects_truncation(self, cut):
        frame = encode_partial({"x": np.array([[1.0, 2.0], [0.0, 4.0]])})
        with pytest.raises(ValidationError):
            decode_partial(frame[:cut])

    def test_decode_rejects_bad_magic_and_version(self):
        frame = bytearray(encode_partial({"x": np.array([[1.0]])}))
        bad_magic = b"NOPE" + bytes(frame[4:])
        with pytest.raises(ValidationError, match="magic"):
            decode_partial(bad_magic)
        frame[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(ValidationError, match="version"):
            decode_partial(bytes(frame))


# ----------------------------------------------------------------------
# Export / replace primitives
# ----------------------------------------------------------------------
class TestExportReplace:
    def test_replace_partial_is_idempotent(self):
        worker = make_service()
        batch, _ = make_batch(1)
        worker.ingest(batch)
        target = make_service(n_shards=2)
        # "records" counts attribute-records (2 attributes x 200 rows)
        assert target.replace_partial(0, worker.export_partial()) == 400
        assert target.replace_partial(0, worker.export_partial()) == 400
        assert target.n_seen("x") == 200

    def test_union_matches_single_process(self):
        reference = make_service()
        target = make_service(n_shards=2)
        for slot, seed in enumerate((1, 2)):
            worker = make_service()
            batch, _ = make_batch(seed)
            worker.ingest(batch)
            reference.ingest(batch)
            target.replace_partial(slot, worker.export_partial())
        assert_same_estimates(target, reference)

    def test_replace_rejects_unknown_attribute(self):
        target = make_service()
        with pytest.raises(ValidationError):
            target.replace_partial(0, {"zzz": np.array([[1.0]])})
        assert target.n_seen("x") == 0

    def test_replace_rejects_wrong_shape_and_absorbs_nothing(self):
        worker = make_service()
        batch, _ = make_batch(3)
        worker.ingest(batch)
        partials = worker.export_partial()
        partials["y"] = partials["y"][:, :-1]
        target = make_service()
        with pytest.raises(ValidationError):
            target.replace_partial(0, partials)
        assert target.n_seen("x") == 0


# ----------------------------------------------------------------------
# Coordinator bookkeeping
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_register_validates(self):
        coordinator = ClusterCoordinator(make_service(n_shards=2))
        with pytest.raises(ValidationError, match="integer id"):
            coordinator.register("0", "http://h:1")
        with pytest.raises(ValidationError, match="integer id"):
            coordinator.register(True, "http://h:1")
        with pytest.raises(ValidationError, match="out of range"):
            coordinator.register(2, "http://h:1")
        with pytest.raises(ValidationError, match="http"):
            coordinator.register(0, "ftp://h:1")

    def test_reregistration_updates_url(self):
        coordinator = ClusterCoordinator(make_service(n_shards=2))
        coordinator.register(0, "http://h:1")
        reply = coordinator.register(0, "http://h:2/")
        assert reply == {"worker": 0, "n_workers": 2, "registered": 1}
        assert coordinator.health()["workers"][0]["url"] == "http://h:2"

    def test_push_requires_registration(self):
        coordinator = ClusterCoordinator(make_service(n_shards=2))
        worker = make_service()
        worker.ingest(make_batch(4)[0])
        with pytest.raises(ValidationError, match="not registered"):
            coordinator.apply_push(0, export_sync_body(worker))
        assert coordinator.service.n_seen("x") == 0

    def test_n_workers_bounded_by_shards(self):
        with pytest.raises(ValidationError, match="n_workers"):
            ClusterCoordinator(make_service(n_shards=2), n_workers=3)

    def test_health_staleness(self):
        coordinator = ClusterCoordinator(
            make_service(n_shards=2), stale_after=1e-9
        )
        health = coordinator.health()
        assert health["degraded"] and health["registered"] == 0
        coordinator.register(0, "http://h:1")
        worker = make_service()
        worker.ingest(make_batch(5)[0])
        coordinator.apply_push(0, export_sync_body(worker))
        entry = coordinator.health()["workers"][0]
        # stale_after is tiny, so even a just-synced worker reads stale;
        # the sync itself still landed and is reported
        assert entry["records"] == 400
        assert entry["stale"] is True
        assert coordinator.health()["degraded"] is True

    def test_health_fresh_cluster_not_degraded(self):
        coordinator = ClusterCoordinator(
            make_service(n_shards=1), n_workers=1, stale_after=60.0
        )
        coordinator.register(0, "http://h:1")
        worker = make_service()
        worker.ingest(make_batch(6)[0])
        coordinator.apply_push(0, export_sync_body(worker))
        health = coordinator.health()
        assert health["degraded"] is False
        assert health["workers"][0]["age_seconds"] >= 0.0


# ----------------------------------------------------------------------
# Pull sync + graceful degradation
# ----------------------------------------------------------------------
class FakeWorkers:
    """In-process worker fleet behind an injectable fetch."""

    def __init__(self, services, trainings=None):
        self.services = services
        self.trainings = trainings or {}
        self.dead = set()
        self.calls = []

    def fetch(self, url, data=None, content_type=None, timeout=None):
        self.calls.append(url)
        worker = int(url.split("//w")[1].split("/")[0])
        if worker in self.dead:
            raise ClusterError(f"{url} is unreachable: down")
        return export_sync_body(
            self.services[worker], self.trainings.get(worker)
        )


class TestPullSync:
    def make_cluster(self, *, classes=0, train=False):
        services = [
            make_service(classes=classes) for _ in range(2)
        ]
        trainings = (
            {i: TrainingService(s) for i, s in enumerate(services)}
            if train
            else None
        )
        fleet = FakeWorkers(services, trainings)
        service = make_service(classes=classes, n_shards=2)
        training = TrainingService(service) if train else None
        coordinator = ClusterCoordinator(
            service, training=training, fetch=fleet.fetch
        )
        for worker in range(2):
            coordinator.register(worker, f"http://w{worker}")
        return coordinator, fleet

    def test_sync_pulls_all_workers(self):
        coordinator, fleet = self.make_cluster()
        reference = make_service()
        for worker, seed in enumerate((7, 8)):
            batch, _ = make_batch(seed)
            fleet.services[worker].ingest(batch)
            reference.ingest(batch)
        assert coordinator.sync() == {"synced": [0, 1], "failed": []}
        assert_same_estimates(coordinator.service, reference)
        assert fleet.calls == ["http://w0/partial", "http://w1/partial"]

    def test_dead_worker_keeps_last_known(self):
        coordinator, fleet = self.make_cluster()
        batch, _ = make_batch(9)
        fleet.services[0].ingest(batch)
        fleet.services[1].ingest(make_batch(10)[0])
        coordinator.sync()
        assert coordinator.service.n_seen("x") == 400

        fleet.dead.add(0)
        fleet.services[1].ingest(make_batch(11)[0])
        result = coordinator.sync()
        assert result == {"synced": [1], "failed": [0]}
        # worker 0's slot still serves its last-known partials
        assert coordinator.service.n_seen("x") == 600
        entry = coordinator.health()["workers"][0]
        assert entry["reachable"] is False and entry["stale"] is True
        assert coordinator.health()["degraded"] is True
        assert coordinator.service.estimate("x", warn=False).n_iterations > 0

    def test_require_all_with_never_synced_dead_worker_raises(self):
        coordinator, fleet = self.make_cluster()
        fleet.services[1].ingest(make_batch(12)[0])
        fleet.dead.add(0)
        with pytest.raises(ClusterError, match="never synced"):
            coordinator.sync(require_all=True)

    def test_require_all_degrades_to_last_known_after_first_sync(self):
        coordinator, fleet = self.make_cluster()
        fleet.services[0].ingest(make_batch(13)[0])
        fleet.services[1].ingest(make_batch(14)[0])
        coordinator.sync()
        fleet.dead.add(0)
        result = coordinator.sync(require_all=True)
        assert result == {"synced": [1], "failed": [0]}

    def test_train_matches_single_process(self):
        coordinator, fleet = self.make_cluster(classes=2, train=True)
        reference = make_service(classes=2)
        reference_training = TrainingService(reference)
        for worker, seed in enumerate((15, 16)):
            batch, labels = make_batch(seed, classes=2)
            fleet.trainings[worker].ingest(batch, labels)
            reference_training.ingest(batch, labels)
        model = coordinator.train("byclass")
        expected = reference_training.train("byclass")
        assert model.n_train == expected.n_train == 400
        assert model.tree.n_nodes == expected.tree.n_nodes
        assert model.tree.depth == expected.tree.depth

    def test_train_without_training_service_rejected(self):
        coordinator, _ = self.make_cluster()
        with pytest.raises(ValidationError, match="training"):
            coordinator.train()

    def test_push_with_rows_needs_training(self):
        coordinator, fleet = self.make_cluster()
        worker = make_service(classes=2)
        training = TrainingService(worker)
        batch, labels = make_batch(17, classes=2)
        training.ingest(batch, labels)
        with pytest.raises(ValidationError, match="no training service"):
            coordinator.apply_push(0, export_sync_body(worker, training))
        assert coordinator.service.n_seen("x") == 0


# ----------------------------------------------------------------------
# Shipper: retry, backoff, drain
# ----------------------------------------------------------------------
class FlakyCoordinator:
    def __init__(self, coordinator, fail_first=0):
        self.coordinator = coordinator
        self.fail_first = fail_first
        self.attempts = 0
        self.sleeps = []

    def fetch(self, url, data=None, content_type=None, timeout=None):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise ClusterError(f"{url} is unreachable: refused")
        worker = int(url.rsplit("worker=", 1)[1])
        self.coordinator.apply_push(worker, data)
        return b"{}"

    def sleep(self, seconds):
        self.sleeps.append(seconds)


class TestShipper:
    def make_pair(self, fail_first=0, retries=5):
        coordinator = ClusterCoordinator(make_service(n_shards=1), n_workers=1)
        coordinator.register(0, "http://w0")
        flaky = FlakyCoordinator(coordinator, fail_first=fail_first)
        worker = make_service()
        shipper = PartialShipper(
            worker,
            "http://c",
            0,
            retries=retries,
            backoff=0.25,
            fetch=flaky.fetch,
            sleep=flaky.sleep,
        )
        return coordinator, flaky, worker, shipper

    def test_push_retries_with_exponential_backoff(self):
        coordinator, flaky, worker, shipper = self.make_pair(fail_first=3)
        worker.ingest(make_batch(18)[0])
        assert shipper.push() is True
        assert flaky.attempts == 4
        assert flaky.sleeps == [0.25, 0.5, 1.0]
        assert shipper.pushes == 1 and shipper.failures == 0
        assert coordinator.service.n_seen("x") == 200

    def test_push_gives_up_after_retries(self):
        coordinator, flaky, worker, shipper = self.make_pair(
            fail_first=10, retries=3
        )
        worker.ingest(make_batch(19)[0])
        assert shipper.push() is False
        assert flaky.attempts == 3
        assert shipper.failures == 1
        assert coordinator.service.n_seen("x") == 0

    def test_backoff_delay_caps_at_8s(self):
        _, flaky, _, shipper = self.make_pair(fail_first=9, retries=10)
        assert shipper.push() is True
        assert flaky.sleeps == [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0, 8.0]

    def test_stop_drains_final_push(self):
        coordinator, flaky, worker, shipper = self.make_pair()
        shipper.start()
        shipper.start()  # idempotent
        worker.ingest(make_batch(20)[0])
        assert shipper.stop(drain=True) is True
        # everything absorbed since the last interval push arrived
        assert coordinator.service.n_seen("x") == 200
        assert_same_estimates(coordinator.service, worker)

    def test_stop_without_drain_skips_push(self):
        coordinator, flaky, worker, shipper = self.make_pair()
        worker.ingest(make_batch(21)[0])
        assert shipper.stop(drain=False) is True
        assert flaky.attempts == 0
        assert coordinator.service.n_seen("x") == 0

    def test_interval_and_retries_validated(self):
        worker = make_service()
        with pytest.raises(ValidationError, match="interval"):
            PartialShipper(worker, "http://c", 0, interval=0)
        with pytest.raises(ValidationError, match="retries"):
            PartialShipper(worker, "http://c", 0, retries=0)


class TestShipperCodec:
    """Compressed partial pushes: smaller bodies, same coordinator state."""

    def make_pair(self, codec):
        import zlib

        coordinator = ClusterCoordinator(make_service(n_shards=1), n_workers=1)
        coordinator.register(0, "http://w0")
        captured = {}

        def fetch(url, data=None, content_type=None, timeout=None,
                  content_encoding=None):
            captured["encoding"] = content_encoding
            captured["bytes"] = len(data)
            body = zlib.decompress(data) if content_encoding == "zlib" else data
            worker = int(url.rsplit("worker=", 1)[1])
            coordinator.apply_push(worker, body)
            return b"{}"

        worker = make_service()
        shipper = PartialShipper(
            worker, "http://c", 0, fetch=fetch, codec=codec
        )
        return coordinator, worker, shipper, captured

    def test_zlib_push_reaches_the_coordinator_bit_identically(self):
        coordinator, worker, shipper, captured = self.make_pair("zlib")
        worker.ingest(make_batch(30)[0])
        assert shipper.push() is True
        assert captured["encoding"] == "zlib"
        assert captured["bytes"] < len(export_sync_body(worker, None))
        assert coordinator.service.n_seen("x") == 200
        assert_same_estimates(coordinator.service, worker)

    def test_identity_shipper_calls_fetch_without_encoding_kwarg(self):
        """The default codec keeps the legacy 4-argument fetch contract."""
        coordinator = ClusterCoordinator(make_service(n_shards=1), n_workers=1)
        coordinator.register(0, "http://w0")
        seen = {}

        def legacy_fetch(url, data=None, content_type=None, timeout=None):
            seen["data"] = data
            worker = int(url.rsplit("worker=", 1)[1])
            coordinator.apply_push(worker, data)
            return b"{}"

        worker = make_service()
        shipper = PartialShipper(worker, "http://c", 0, fetch=legacy_fetch)
        worker.ingest(make_batch(31)[0])
        assert shipper.codec == "identity"
        assert shipper.push() is True
        assert seen["data"] == export_sync_body(worker, None)

    def test_unsupported_codec_rejected_at_construction(self):
        with pytest.raises(ValidationError, match="codec"):
            PartialShipper(make_service(), "http://c", 0, codec="br")
        with pytest.raises(ValidationError, match="codec"):
            start_cluster({"attributes": []}, n_workers=1, codec="br")


class TestRegisterWorker:
    def test_retries_until_coordinator_is_up(self):
        coordinator = ClusterCoordinator(make_service(n_shards=1), n_workers=1)
        calls = {"n": 0}
        sleeps = []

        def fetch(url, data=None, content_type=None, timeout=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ClusterError(f"{url} is unreachable: not yet")
            payload = json.loads(data.decode())
            return json.dumps(
                coordinator.register(payload["worker"], payload["url"])
            ).encode()

        reply = register_worker(
            "http://c/", 0, "http://w0", fetch=fetch, sleep=sleeps.append
        )
        assert reply["registered"] == 1
        assert calls["n"] == 3 and sleeps == [0.25, 0.5]

    def test_raises_after_retry_budget(self):
        def fetch(url, data=None, content_type=None, timeout=None):
            raise ClusterError(f"{url} is unreachable: down")

        with pytest.raises(ClusterError, match="unreachable"):
            register_worker(
                "http://c", 0, "http://w0",
                retries=3, fetch=fetch, sleep=lambda _s: None,
            )


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
def http_get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def http_post(url, body, content_type="application/json"):
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": content_type},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def http_error(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    return excinfo.value.code, json.loads(excinfo.value.read())


class LiveCluster:
    """A coordinator HTTP server plus N in-thread worker HTTP servers."""

    def __init__(self, n_workers=2, *, classes=0, train=False):
        self.service = make_service(classes=classes, n_shards=n_workers)
        self.training = TrainingService(self.service) if train else None
        self.coordinator = ClusterCoordinator(
            self.service,
            n_workers=n_workers,
            training=self.training,
            timeout=5.0,
        )
        self.server = ServiceHTTPServer(
            self.service, port=0, cluster=self.coordinator,
            training=self.training,
        )
        self.threads = [
            threading.Thread(target=self.server.serve_forever, daemon=True)
        ]
        self.workers = []
        self.worker_servers = []
        self.shippers = []
        for worker in range(n_workers):
            service = make_service(classes=classes)
            training = TrainingService(service) if train else None
            server = ServiceHTTPServer(service, port=0, training=training)
            self.workers.append((service, training))
            self.worker_servers.append(server)
            self.threads.append(
                threading.Thread(target=server.serve_forever, daemon=True)
            )
            self.shippers.append(
                PartialShipper(
                    service, self.server.url, worker,
                    interval=3600.0, training=training, timeout=5.0,
                )
            )
        for thread in self.threads:
            thread.start()
        for worker, server in enumerate(self.worker_servers):
            register_worker(self.server.url, worker, server.url, timeout=5.0)

    @property
    def url(self):
        return self.server.url

    def close(self):
        self.server.shutdown()
        for server in self.worker_servers:
            try:
                server.shutdown()
            except OSError:  # pragma: no cover - already closed
                pass
        for thread in self.threads:
            thread.join(timeout=5)


@pytest.fixture
def live():
    cluster = LiveCluster()
    yield cluster
    cluster.close()


class TestClusterHTTP:
    def test_register_and_cluster_endpoint(self, live):
        status, health = http_get(live.url + "/cluster")
        assert status == 200
        assert health["registered"] == 2 and health["n_workers"] == 2
        urls = [entry["url"] for entry in health["workers"]]
        assert urls == [server.url for server in live.worker_servers]

    def test_healthz_reports_cluster(self, live):
        _, payload = http_get(live.url + "/healthz")
        assert payload["status"] == "degraded"  # nothing synced yet
        assert payload["cluster"]["registered"] == 2

    def test_register_validation_maps_to_400(self, live):
        code, detail = http_error(
            lambda: http_post(
                live.url + "/register",
                json.dumps({"worker": 9, "url": "http://h:1"}).encode(),
            )
        )
        assert code == 400 and "out of range" in detail["error"]
        code, _ = http_error(
            lambda: http_post(live.url + "/register", b"[1, 2]")
        )
        assert code == 400

    def test_estimate_pulls_workers_and_matches_single_process(self, live):
        reference = make_service()
        for worker, seed in enumerate((22, 23)):
            batch, _ = make_batch(seed)
            live.workers[worker][0].ingest(batch)
            reference.ingest(batch)
        status, estimate = http_get(live.url + "/estimate?attribute=x")
        expected = reference.estimate("x", warn=False)
        assert status == 200
        assert estimate["n_seen"] == 400
        assert estimate["n_iterations"] == expected.n_iterations
        assert np.array_equal(
            np.asarray(estimate["probs"]), expected.distribution.probs
        )
        # the pull refreshed /healthz to a non-degraded cluster
        _, payload = http_get(live.url + "/healthz")
        assert payload["status"] == "ok"
        assert payload["cluster"]["degraded"] is False

    def test_worker_death_degrades_gracefully(self, live):
        for worker, seed in enumerate((24, 25)):
            live.workers[worker][0].ingest(make_batch(seed)[0])
        http_get(live.url + "/estimate?attribute=x")

        live.worker_servers[0].shutdown()
        live.workers[1][0].ingest(make_batch(26)[0])
        status, estimate = http_get(live.url + "/estimate?attribute=x")
        assert status == 200
        # worker 0 serves last-known (200), worker 1 is fresh (400)
        assert estimate["n_seen"] == 600
        _, payload = http_get(live.url + "/healthz")
        assert payload["status"] == "degraded"
        entries = {
            entry["worker"]: entry for entry in payload["cluster"]["workers"]
        }
        assert entries[0]["stale"] and not entries[0]["reachable"]
        assert not entries[1]["stale"]

    def test_shipper_push_over_http(self, live):
        batch, _ = make_batch(27)
        live.workers[0][0].ingest(batch)
        assert live.shippers[0].push() is True
        _, health = http_get(live.url + "/cluster")
        assert health["workers"][0]["records"] == 400

    def test_malformed_partial_push_absorbs_nothing(self, live):
        good = export_sync_body(live.workers[0][0])
        for body in (b"garbage", good[: len(good) // 2]):
            code, detail = http_error(
                lambda body=body: http_post(
                    live.url + "/partial?worker=0",
                    body,
                    content_type=CONTENT_TYPE_PARTIAL,
                )
            )
            assert code == 400 and "error" in detail
        assert live.service.n_seen("x") == 0
        assert live.coordinator.health()["workers"][0]["records"] == 0

    def test_partial_push_requires_worker_query(self, live):
        body = export_sync_body(live.workers[0][0])
        code, detail = http_error(
            lambda: http_post(
                live.url + "/partial", body, content_type=CONTENT_TYPE_PARTIAL
            )
        )
        assert code == 400 and "worker" in detail["error"]
        code, detail = http_error(
            lambda: http_post(
                live.url + "/partial?worker=zero", body,
                content_type=CONTENT_TYPE_PARTIAL,
            )
        )
        assert code == 400

    def test_partial_push_requires_content_type(self, live):
        code, detail = http_error(
            lambda: http_post(
                live.url + "/partial?worker=0",
                export_sync_body(live.workers[0][0]),
            )
        )
        assert code == 400 and CONTENT_TYPE_PARTIAL in detail["error"]

    def test_coordinator_rejects_direct_ingest(self, live):
        code, detail = http_error(
            lambda: http_post(
                live.url + "/ingest",
                json.dumps({"batch": {"x": [0.5]}}).encode(),
            )
        )
        assert code == 400 and "worker" in detail["error"]
        assert live.service.n_seen("x") == 0

    def test_worker_serves_partial_endpoint(self, live):
        batch, _ = make_batch(28)
        live.workers[0][0].ingest(batch)
        with urllib.request.urlopen(
            live.worker_servers[0].url + "/partial"
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE_PARTIAL
            partials = decode_partial(response.read())
        assert np.array_equal(
            partials["x"], live.workers[0][0].merged_by_class("x")
        )

    def test_partial_rows_requires_training(self, live):
        code, detail = http_error(
            lambda: http_get(live.worker_servers[0].url + "/partial?rows=1")
        )
        assert code == 400 and "training" in detail["error"]


class TestClusterHTTPTraining:
    @pytest.fixture
    def live(self):
        cluster = LiveCluster(classes=2, train=True)
        yield cluster
        cluster.close()

    def test_train_over_http_matches_single_process(self, live):
        reference = make_service(classes=2)
        reference_training = TrainingService(reference)
        for worker, seed in enumerate((29, 30)):
            batch, labels = make_batch(seed, classes=2)
            live.workers[worker][1].ingest(batch, labels)
            reference_training.ingest(batch, labels)
        status, reply = http_post(
            live.url + "/train", json.dumps({"strategy": "byclass"}).encode()
        )
        expected = reference_training.train("byclass")
        assert status == 200
        assert reply["n_train"] == 400
        assert reply["n_nodes"] == expected.tree.n_nodes
        assert reply["depth"] == expected.tree.depth

    def test_train_with_never_synced_dead_worker_is_503(self, live):
        live.workers[1][1].ingest(*make_batch(31, classes=2))
        live.worker_servers[0].shutdown()
        code, detail = http_error(
            lambda: http_post(live.url + "/train", b"{}")
        )
        assert code == 503 and "never synced" in detail["error"]

    def test_drain_flush_carries_training_rows(self, live):
        batch, labels = make_batch(32, classes=2)
        live.workers[0][1].ingest(batch, labels)
        live.shippers[0].start()
        assert live.shippers[0].stop(drain=True) is True
        assert live.coordinator.health()["workers"][0]["records"] == 400
        # the drain body carried the row buffer: training sees the rows
        model = live.coordinator.train("byclass")
        assert model.n_train == 200


# ----------------------------------------------------------------------
# Spawned-process topology
# ----------------------------------------------------------------------
SPEC = {
    "shards": 2,
    "classes": 0,
    "intervals": 8,
    "attributes": [
        {"name": "age", "low": 20, "high": 80,
         "noise": "uniform", "privacy": 1.0},
    ],
}


class TestStartCluster:
    def test_validates_inputs(self):
        with pytest.raises(ValidationError, match="n_workers"):
            start_cluster(SPEC, n_workers=0)
        with pytest.raises(ValidationError, match="dict"):
            start_cluster([], n_workers=1)

    def test_two_process_topology_end_to_end(self):
        from repro.core import noise_for_privacy

        supervisor = start_cluster(SPEC, n_workers=2, sync_interval=60.0)
        try:
            supervisor.wait_ready(timeout=60.0)
            urls = supervisor.worker_urls()
            assert len(urls) == 2

            noise = noise_for_privacy("uniform", 1.0, 60.0)
            rng = np.random.default_rng(33)
            reference = AggregationService(
                [AttributeSpec("age", Partition.uniform(20, 80, 8), noise)]
            )
            for worker, url in enumerate(urls):
                values = noise.randomize(
                    rng.uniform(30, 70, 300), seed=worker
                )
                http_post(
                    url + "/ingest",
                    json.dumps({"batch": {"age": values.tolist()}}).encode(),
                )
                reference.ingest({"age": values})

            status, estimate = http_get(
                supervisor.url + "/estimate?attribute=age"
            )
            expected = reference.estimate("age", warn=False)
            assert status == 200 and estimate["n_seen"] == 600
            assert np.array_equal(
                np.asarray(estimate["probs"]), expected.distribution.probs
            )
        finally:
            supervisor.shutdown()
        assert all(not p.is_alive() for p in supervisor.processes)
