#!/usr/bin/env python
"""Offline markdown link checker (stdlib only).

Validates every ``[text](target)`` and bare ``<relative.md>`` link in
the given markdown files/directories:

* relative file targets must exist on disk (anchors stripped),
* intra-file ``#anchor`` targets must match a heading in that file
  (github/mkdocs slugging: lowercase, spaces to dashes, punctuation
  dropped) or an explicit ``<a name="...">`` anchor,
* ``http(s)``/``mailto`` targets are *not* fetched — CI must stay
  offline-deterministic — but flagrantly malformed ones fail.

Usage::

    python tools/check_links.py README.md ROADMAP.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — target captured up to the matching paren
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXPLICIT_ANCHOR = re.compile(r"<a\s+(?:name|id)=\"([^\"]+)\"")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slug(heading: str) -> str:
    """Approximate the github/mkdocs heading slug."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"<[^>]*>", "", text)  # inline HTML (permalinks, anchors)
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def _anchors(markdown_text: str) -> set:
    anchors = {_slug(m.group(1)) for m in _HEADING.finditer(markdown_text)}
    anchors |= {m.group(1) for m in _EXPLICIT_ANCHOR.finditer(markdown_text)}
    return anchors


def check_file(path: Path) -> list:
    """Return a list of problem strings for one markdown file."""
    problems = []
    text = path.read_text()
    # links inside fenced code blocks are examples, not navigation
    stripped = _CODE_FENCE.sub("", text)
    anchors = _anchors(text)
    for match in _LINK.finditer(stripped):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                problems.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md":
            if _slug(anchor) not in _anchors(resolved.read_text()) and (
                anchor not in _anchors(resolved.read_text())
            ):
                problems.append(
                    f"{path}: broken anchor {target!r} (no such heading in "
                    f"{resolved.name})"
                )
    return problems


def main(argv=None) -> int:
    targets = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not targets:
        print("usage: check_links.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.md")))
        elif target.suffix == ".md":
            files.append(target)
        else:
            print(f"not markdown: {target}", file=sys.stderr)
            return 2
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
