"""Tests for the piecewise-linear shape densities (paper §3 figures)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramDistribution
from repro.datasets import shapes
from repro.exceptions import ValidationError


class TestConstruction:
    def test_rejects_unsorted_knots(self):
        with pytest.raises(ValidationError):
            shapes.PiecewiseLinearDensity([0, 2, 1], [1, 1, 1])

    def test_rejects_negative_density(self):
        with pytest.raises(ValidationError):
            shapes.PiecewiseLinearDensity([0, 1, 2], [1, -1, 1])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValidationError):
            shapes.PiecewiseLinearDensity([0, 1], [0, 0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            shapes.PiecewiseLinearDensity([0, 1, 2], [1, 1])

    def test_normalization(self):
        density = shapes.PiecewiseLinearDensity([0, 1], [5, 5])
        grid = np.linspace(0, 1, 1001)
        assert np.trapezoid(density.pdf(grid), grid) == pytest.approx(1.0, abs=1e-6)


class TestPdfCdf:
    @pytest.mark.parametrize("factory", [shapes.plateau, shapes.triangles])
    def test_cdf_limits(self, factory):
        density = factory()
        assert density.cdf(density.low) == pytest.approx(0.0)
        assert density.cdf(density.high) == pytest.approx(1.0)

    @pytest.mark.parametrize("factory", [shapes.plateau, shapes.triangles])
    def test_cdf_monotone(self, factory):
        density = factory()
        grid = np.linspace(density.low, density.high, 500)
        assert np.all(np.diff(density.cdf(grid)) >= -1e-12)

    @pytest.mark.parametrize("factory", [shapes.plateau, shapes.triangles])
    def test_cdf_matches_pdf_integral(self, factory):
        density = factory()
        grid = np.linspace(density.low, density.high, 5001)
        numeric = np.concatenate(
            [
                [0.0],
                np.cumsum(
                    np.diff(grid)
                    * 0.5
                    * (density.pdf(grid)[1:] + density.pdf(grid)[:-1])
                ),
            ]
        )
        np.testing.assert_allclose(density.cdf(grid), numeric, atol=1e-6)

    def test_pdf_zero_outside_support(self):
        density = shapes.plateau()
        assert density.pdf(-1.0) == 0.0
        assert density.pdf(2.0) == 0.0

    def test_interval_probs_sum_to_one(self, unit_partition):
        density = shapes.plateau()
        probs = density.interval_probs(unit_partition)
        assert probs.sum() == pytest.approx(1.0)

    def test_scaling_to_other_domains(self):
        density = shapes.plateau(low=20, high=80)
        assert density.low == 20
        assert density.high == 80
        assert density.cdf(80) == pytest.approx(1.0)


class TestSampling:
    @pytest.mark.parametrize("factory", [shapes.plateau, shapes.triangles])
    def test_samples_within_support(self, factory):
        density = factory()
        samples = density.sample(5_000, seed=0)
        assert samples.min() >= density.low
        assert samples.max() <= density.high

    @pytest.mark.parametrize("factory", [shapes.plateau, shapes.triangles])
    def test_samples_match_density(self, factory):
        density = factory()
        part = density.partition(25)
        samples = density.sample(60_000, seed=1)
        empirical = HistogramDistribution.from_values(samples, part)
        true = density.true_distribution(part)
        assert empirical.l1_distance(true) < 0.03

    def test_zero_samples(self):
        assert shapes.plateau().sample(0, seed=0).size == 0

    def test_reproducible(self):
        density = shapes.triangles()
        np.testing.assert_array_equal(
            density.sample(100, seed=5), density.sample(100, seed=5)
        )

    def test_plateau_flat_top(self):
        """The plateau's flat region has (roughly) constant density."""
        density = shapes.plateau()
        samples = density.sample(100_000, seed=2)
        inside = samples[(samples >= 0.4) & (samples < 0.6)]
        left = ((samples >= 0.4) & (samples < 0.5)).sum()
        right = ((samples >= 0.5) & (samples < 0.6)).sum()
        assert inside.size > 0
        assert abs(left - right) / inside.size < 0.05

    def test_triangles_bimodal(self):
        density = shapes.triangles()
        samples = density.sample(50_000, seed=3)
        middle = ((samples > 0.45) & (samples < 0.55)).mean()
        peak = ((samples > 0.2) & (samples < 0.3)).mean()
        assert peak > 5 * max(middle, 1e-9)


@given(
    knot_ys=st.lists(st.floats(0.0, 10.0), min_size=3, max_size=8).filter(
        lambda ys: sum(ys) > 0.5
    ),
    seed=st.integers(0, 10_000),
)
def test_property_sampling_consistency(knot_ys, seed):
    xs = np.linspace(0, 1, len(knot_ys))
    density = shapes.PiecewiseLinearDensity(xs, knot_ys)
    samples = density.sample(300, seed=seed)
    assert samples.shape == (300,)
    assert samples.min() >= 0.0
    assert samples.max() <= 1.0
    # samples should concentrate where the density is positive
    cdf_vals = density.cdf(samples)
    assert np.all((cdf_vals >= 0) & (cdf_vals <= 1))
