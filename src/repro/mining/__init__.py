"""Privacy-preserving association-rule mining (the paper's future work).

The SIGMOD 2000 paper closes by proposing to extend randomization from
classification to categorical data and association rules.  This subpackage
implements that extension in the style the follow-on literature settled on
(randomized response over boolean baskets with algebraic support
recovery):

* :mod:`repro.mining.apriori` — the Apriori substrate: frequent itemsets
  and association rules on plain boolean basket matrices,
* :mod:`repro.mining.mask` — randomized-response disclosure of baskets and
  unbiased support estimation from the randomized data,
* :mod:`repro.mining.baskets` — a synthetic basket generator with planted
  frequent itemsets for evaluation.
"""

from repro.mining.apriori import (
    AssociationRule,
    association_rules,
    candidate_itemsets,
    frequent_itemsets,
)
from repro.mining.baskets import (
    generate_baskets,
    matrix_to_transactions,
    transactions_to_matrix,
)
from repro.mining.mask import (
    MaskMiner,
    RandomizedResponse,
    support_from_pattern_counts,
)

__all__ = [
    "frequent_itemsets",
    "association_rules",
    "candidate_itemsets",
    "AssociationRule",
    "RandomizedResponse",
    "MaskMiner",
    "support_from_pattern_counts",
    "generate_baskets",
    "transactions_to_matrix",
    "matrix_to_transactions",
]
