"""Smoke-run every example script.

The ``examples/`` directory is living documentation: each script must
run clean from a fresh checkout.  This parametrizes over the directory
so a new example is covered the day it lands, and a doc-breaking API
change fails CI instead of a user's first session.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: generous per-script budget; the slowest (classifier_comparison) takes
#: ~10 s locally, everything else ~1-2 s
TIMEOUT_SECONDS = 300


def test_examples_exist():
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_SECONDS,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
