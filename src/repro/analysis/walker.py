"""Project file-walker: parse the tree once, analyze it many times.

The analyzer's unit of work is a :class:`Project`: every ``*.py`` file
under ``src/``, ``tools/``, ``benchmarks/``, and ``examples/`` parsed
into a :class:`ParsedModule` (source, AST, inline suppressions) and
tagged with a *category* so rules can scope themselves (the
lock-discipline rules only make sense for library code; the determinism
rules also cover examples and benchmarks).  ``tests/`` is deliberately
not walked — tests exercise forbidden patterns on purpose.

A file that does not parse still joins the project, carrying a ``P000``
parse-error finding instead of an AST, so a syntax error surfaces as a
lint finding rather than a crashed run.

Inline suppressions use ``# ppdm: ignore[RULE]`` (comma-separated rule
ids, or ``*``) on the offending line; the runner drops matching
findings.  Suppressions are for *deliberate* violations — e.g. a lock
intentionally held across a snapshot write — and each should carry a
justifying comment.

Examples
--------
>>> from repro.analysis.walker import parse_source
>>> module = parse_source("x = 1  # ppdm: ignore[D001]\\n", "demo/x.py",
...                       "examples")
>>> module.category, module.suppressed(1)
('examples', {'D001'})
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.exceptions import AnalysisError

__all__ = [
    "ParsedModule",
    "Project",
    "parse_source",
    "walk_project",
    "default_project_root",
    "iter_scoped",
]

#: top-level directories walked, with the category each maps to
WALKED_DIRS = (
    ("src", "library"),
    ("tools", "tools"),
    ("benchmarks", "bench"),
    ("examples", "examples"),
)

#: directory names never descended into
_SKIPPED_DIRS = {"__pycache__", ".git", ".ruff_cache", "artifacts", "results"}

_SUPPRESSION = re.compile(r"#\s*ppdm:\s*ignore\[([A-Za-z0-9*,\s]+)\]")


@dataclass
class ParsedModule:
    """One source file of the project, parsed and ready to check.

    Attributes
    ----------
    relpath:
        Repository-relative POSIX path (the identity findings carry).
    category:
        ``"library"``, ``"tools"``, ``"bench"``, or ``"examples"``.
    source:
        Full source text.
    tree:
        The parsed AST, or ``None`` when the file has a syntax error
        (then :attr:`parse_error` holds the ``P000`` finding).
    """

    relpath: str
    category: str
    source: str
    tree: ast.Module | None = None
    parse_error: Finding | None = None
    _lines: list = field(default_factory=list, repr=False)
    _suppressions: dict = field(default_factory=dict, repr=False)

    @property
    def lines(self) -> list:
        """Source lines (1-based access via ``lines[lineno - 1]``)."""
        return self._lines

    def line_text(self, lineno: int) -> str:
        """The text of 1-based line ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""

    def suppressed(self, lineno: int) -> set:
        """Rule ids suppressed on ``lineno`` (may contain ``"*"``)."""
        return self._suppressions.get(lineno, set())


def _scan_suppressions(source: str) -> dict:
    """Map 1-based line number -> rule ids named in ``ppdm: ignore[...]``.

    Comments are located with :mod:`tokenize` so the marker inside a
    string literal is not a suppression; an untokenizable file (which a
    parsed file never is) falls back to a plain per-line scan.
    """
    suppressions: dict = {}

    def record(lineno: int, spec: str) -> None:
        rules = {part.strip() for part in spec.split(",") if part.strip()}
        if rules:
            suppressions.setdefault(lineno, set()).update(rules)

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION.search(line)
            if match:
                record(lineno, match.group(1))
        return suppressions
    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _SUPPRESSION.search(token.string)
            if match:
                record(token.start[0], match.group(1))
    return suppressions


def parse_source(source: str, relpath: str, category: str) -> ParsedModule:
    """Parse one file's source into a :class:`ParsedModule`.

    Exposed (and used by the test fixtures) so checkers can be exercised
    on in-memory snippets without touching the filesystem.
    """
    module = ParsedModule(
        relpath=relpath,
        category=category,
        source=source,
        _lines=source.splitlines(),
        _suppressions=_scan_suppressions(source),
    )
    try:
        module.tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        module.parse_error = Finding(
            rule="P000",
            path=relpath,
            line=lineno,
            scope="<module>",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; nothing else in this file was "
            "checked",
        )
    return module


@dataclass
class Project:
    """Every parsed module of one repository checkout.

    Attributes
    ----------
    root:
        Absolute repository root the modules were read from (``None``
        for synthetic in-memory projects built by tests).
    modules:
        :class:`ParsedModule` list, sorted by ``relpath``.
    """

    modules: list
    root: Path | None = None

    def iter_modules(self, categories: tuple | None = None) -> Iterator[ParsedModule]:
        """Parsed modules, optionally restricted to ``categories``."""
        for module in self.modules:
            if categories is None or module.category in categories:
                yield module

    def module(self, relpath: str) -> ParsedModule | None:
        """The module at ``relpath``, or ``None`` when absent."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def line_text(self, path: str, lineno: int) -> str:
        """Source text of ``path:lineno`` (empty for unknown paths)."""
        module = self.module(path)
        return module.line_text(lineno) if module is not None else ""


def iter_scoped(tree: ast.Module) -> Iterator[tuple]:
    """Yield ``(node, scope)`` pairs for every node under ``tree``.

    ``scope`` is the dotted name of the enclosing class/function chain
    (``"<module>"`` at top level) — the scope findings record.  A
    ``def``/``class`` statement itself belongs to its *enclosing* scope;
    its body belongs to the new one.
    """

    def visit(node: ast.AST, scope: str) -> Iterator[tuple]:
        for child in ast.iter_child_nodes(node):
            yield (child, scope)
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                inner = (
                    child.name
                    if scope == "<module>"
                    else f"{scope}.{child.name}"
                )
                yield from visit(child, inner)
            else:
                yield from visit(child, scope)

    yield from visit(tree, "<module>")


def default_project_root() -> Path:
    """Locate the repository root to analyze.

    Prefers the working directory when it looks like the repo (the
    normal CLI invocation), falling back to the checkout the package
    itself lives in — the same resolution
    :func:`repro.bench.registry.default_benchmarks_dir` uses.
    """
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    checkout = Path(__file__).resolve().parents[3]
    if (checkout / "src" / "repro").is_dir():
        return checkout
    raise AnalysisError(
        "cannot locate the repository root (a directory containing "
        "src/repro); run from the repo root or pass --root"
    )


def walk_project(root: Path | None = None) -> Project:
    """Parse every walked source file under ``root`` into a project.

    Files are gathered in sorted order so module iteration — and
    therefore finding order and baseline content — never depends on
    filesystem order.
    """
    base = Path(root) if root is not None else default_project_root()
    if not base.is_dir():
        raise AnalysisError(f"project root {str(base)!r} does not exist")
    modules = []
    for top, category in WALKED_DIRS:
        top_dir = base / top
        if not top_dir.is_dir():
            continue
        for path in sorted(top_dir.rglob("*.py")):
            if _SKIPPED_DIRS & set(path.relative_to(base).parts):
                continue
            relpath = path.relative_to(base).as_posix()
            source = path.read_text(encoding="utf-8")
            modules.append(parse_source(source, relpath, category))
    modules.sort(key=lambda m: m.relpath)
    return Project(modules=modules, root=base)
