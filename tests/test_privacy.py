"""Tests for privacy quantification (paper §2.1 and the a-posteriori metric)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.privacy import (
    noise_for_privacy,
    posterior_privacy,
    privacy_of_randomizer,
)
from repro.core.randomizers import GaussianRandomizer, UniformRandomizer
from repro.exceptions import ValidationError


class TestNoiseForPrivacy:
    def test_uniform_factory(self):
        r = noise_for_privacy("uniform", 1.0, 100.0, 0.95)
        assert isinstance(r, UniformRandomizer)
        assert r.half_width == pytest.approx(100.0 / 1.9)

    def test_gaussian_factory(self):
        r = noise_for_privacy("gaussian", 1.0, 100.0, 0.95)
        assert isinstance(r, GaussianRandomizer)
        assert r.privacy_interval_width(0.95) == pytest.approx(100.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            noise_for_privacy("laplace", 1.0, 1.0)

    def test_paper_convention_100_percent(self):
        """100% privacy: the 95% confidence interval spans the whole domain."""
        span = 130_000.0  # salary
        r = noise_for_privacy("uniform", 1.0, span, 0.95)
        assert r.privacy_interval_width(0.95) == pytest.approx(span)

    def test_privacy_monotone_in_level(self):
        r_small = noise_for_privacy("uniform", 0.25, 1.0)
        r_large = noise_for_privacy("uniform", 2.0, 1.0)
        assert r_small.half_width < r_large.half_width


class TestPrivacyOfRandomizer:
    def test_roundtrip_uniform(self):
        r = noise_for_privacy("uniform", 0.5, 60.0, 0.95)
        assert privacy_of_randomizer(r, 60.0, 0.95) == pytest.approx(0.5)

    def test_roundtrip_gaussian(self):
        r = noise_for_privacy("gaussian", 2.0, 60.0, 0.95)
        assert privacy_of_randomizer(r, 60.0, 0.95) == pytest.approx(2.0)

    def test_confidence_matters(self):
        r = noise_for_privacy("gaussian", 1.0, 1.0, 0.95)
        # at higher confidence the same noise provides more privacy
        assert privacy_of_randomizer(r, 1.0, 0.999) > 1.0

    def test_rejects_bad_span(self):
        r = UniformRandomizer(1.0)
        with pytest.raises(ValidationError):
            privacy_of_randomizer(r, 0.0)


class TestPosteriorPrivacy:
    @pytest.fixture
    def uniform_prior(self):
        part = Partition.uniform(0, 1, 16)
        return HistogramDistribution.uniform(part)

    def test_heavy_noise_high_privacy(self, uniform_prior):
        result = posterior_privacy(uniform_prior, UniformRandomizer(half_width=5.0))
        assert result.privacy_fraction > 0.9
        assert result.privacy_loss < 0.1

    def test_light_noise_low_privacy(self, uniform_prior):
        result = posterior_privacy(uniform_prior, UniformRandomizer(half_width=0.01))
        assert result.privacy_fraction < 0.2
        assert result.privacy_loss > 0.8

    def test_privacy_monotone_in_noise(self, uniform_prior):
        widths = [0.05, 0.2, 0.8]
        fractions = [
            posterior_privacy(uniform_prior, UniformRandomizer(w)).privacy_fraction
            for w in widths
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_mutual_information_bounds(self, uniform_prior):
        result = posterior_privacy(uniform_prior, UniformRandomizer(0.3))
        assert 0 <= result.mutual_information_bits <= result.prior_entropy_bits + 1e-9
        assert 0 <= result.privacy_loss < 1

    def test_concentrated_prior_already_low_entropy(self):
        part = Partition.uniform(0, 1, 16)
        probs = np.zeros(16)
        probs[3] = 1.0
        prior = HistogramDistribution(part, probs)
        result = posterior_privacy(prior, UniformRandomizer(0.5))
        # nothing to learn: mutual information is ~0
        assert result.mutual_information_bits == pytest.approx(0.0, abs=1e-9)
        assert result.prior_entropy_bits == pytest.approx(0.0, abs=1e-9)

    def test_gaussian_noise_supported(self, uniform_prior):
        result = posterior_privacy(uniform_prior, GaussianRandomizer(sigma=0.3))
        assert 0 < result.privacy_fraction <= 1.0


@given(
    privacy=st.floats(0.1, 3.0),
    span=st.floats(1.0, 1e4),
    confidence=st.floats(0.5, 0.99),
    kind=st.sampled_from(["uniform", "gaussian"]),
)
def test_property_factory_roundtrip(privacy, span, confidence, kind):
    r = noise_for_privacy(kind, privacy, span, confidence)
    assert privacy_of_randomizer(r, span, confidence) == pytest.approx(
        privacy, rel=1e-8
    )
