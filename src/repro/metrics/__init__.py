"""Evaluation metrics: classification quality and distribution distances."""

from repro.metrics.accuracy import accuracy, confusion_matrix, per_class_recall
from repro.metrics.distribution import (
    hellinger_distance,
    kolmogorov_distance,
    l1_distance,
    l2_distance,
    total_variation,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_recall",
    "l1_distance",
    "l2_distance",
    "total_variation",
    "kolmogorov_distance",
    "hellinger_distance",
]
