"""Determinism lints (rules D001, D002, D003).

Every experiment, benchmark, and service snapshot in this repository
promises bit-identical replay.  That promise dies quietly the moment a
code path consumes entropy that is not threaded through
:mod:`repro.utils.rng`:

* **D001 — hidden global RNG state.**  ``np.random.<fn>()`` and
  ``random.<fn>()`` module-level calls draw from process-global
  generators whose state depends on import order and on every other
  caller in the process.  Results become unreproducible *and*
  order-dependent.
* **D002 — direct RNG construction.**  ``np.random.default_rng(...)``,
  ``RandomState``, ``random.Random`` built outside
  ``src/repro/utils/rng.py`` bypass :func:`repro.utils.rng.ensure_rng`
  — the one place seed handling (``None``/int/``Generator``) is
  normalized — so seed plumbing silently forks.
* **D003 — time-derived seed.**  ``time.time()``, ``datetime.now()``,
  ``os.urandom()``, ``uuid.uuid4()`` feeding an RNG constructor, a
  ``seed=`` keyword, or a ``*seed*`` variable makes every run unique by
  construction.  ``time.perf_counter()`` used for *timing* is fine and
  does not trip this rule.

All three rules apply to every category — a benchmark with hidden
global RNG state is exactly as unreproducible as a library module.

Examples
--------
>>> from repro.analysis.determinism import check_determinism
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source(
...     "import numpy as np\\n"
...     "rng = np.random.default_rng(7)\\n",
...     "examples/demo.py", "examples")
>>> [f.rule for f in check_determinism(Project([bad]))]
['D002']
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import CATEGORIES, RuleSpec, checker
from repro.analysis.walker import Project, iter_scoped

__all__ = ["check_determinism"]

#: the one module allowed to construct numpy generators directly
_RNG_HOME = "src/repro/utils/rng.py"

#: dotted prefixes naming numpy's global-state random module
_NUMPY_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

#: RNG constructor attribute/function names (rule D002)
_CONSTRUCTORS = {"default_rng", "Generator", "RandomState", "Random"}

#: stdlib ``random`` module-level functions drawing from the hidden
#: global generator (rule D001)
_RANDOM_MODULE_FNS = {
    "random",
    "seed",
    "randint",
    "randrange",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "weibullvariate",
    "vonmisesvariate",
}

#: calls whose result varies run to run (rule D003 when seeding)
_TIME_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "os.urandom",
    "os.getpid",
    "uuid.uuid4",
    "uuid.uuid1",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for a pure Name/Attribute chain, else None."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _time_source_in(node: ast.AST) -> ast.Call | None:
    """The first time-derived call anywhere inside ``node``, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            if dotted in _TIME_SOURCES:
                return sub
    return None


def _is_constructor_call(node: ast.Call) -> bool:
    dotted = _dotted(node.func)
    if dotted is not None and "." in dotted:
        prefix, _, last = dotted.rpartition(".")
        if last in _CONSTRUCTORS and prefix in (
            "np.random",
            "numpy.random",
            "random",
        ):
            return True
    if isinstance(node.func, ast.Name) and node.func.id in (
        "default_rng",
        "RandomState",
    ):
        return True
    return False


@checker(
    "determinism",
    title="Seeded-randomness discipline (RNG flows through repro.utils.rng)",
    rules=(
        RuleSpec(
            "D001",
            "hidden global RNG state (np.random.* / random.* module calls)",
            categories=CATEGORIES,
            rationale=(
                "Module-level RNG calls draw from process-global "
                "generators; results then depend on import order and on "
                "every other caller, so no run is reproducible."
            ),
        ),
        RuleSpec(
            "D002",
            "RNG constructed outside repro.utils.rng",
            categories=CATEGORIES,
            rationale=(
                "ensure_rng()/spawn_rngs() are the single place seed "
                "handling is normalized; ad-hoc default_rng() calls fork "
                "the seed-plumbing convention and drift from it."
            ),
        ),
        RuleSpec(
            "D003",
            "time-derived seed (time/datetime/urandom/uuid feeding an RNG)",
            categories=CATEGORIES,
            rationale=(
                "A clock-seeded generator makes every run unique by "
                "construction — the exact opposite of the bit-identical "
                "replay the reproduction promises."
            ),
        ),
    ),
)
def check_determinism(project: Project) -> Iterator[Finding]:
    """Run the three determinism rules over every walked category."""
    for module in project.iter_modules():
        if module.tree is None or module.relpath == _RNG_HOME:
            continue
        for node, scope in iter_scoped(module.tree):
            if isinstance(node, ast.Assign):
                names = [
                    t.id if isinstance(t, ast.Name) else t.attr
                    for t in node.targets
                    if isinstance(t, (ast.Name, ast.Attribute))
                ]
                if any("seed" in n.lower() for n in names):
                    source = _time_source_in(node.value)
                    if source is not None:
                        yield Finding(
                            rule="D003",
                            path=module.relpath,
                            line=node.lineno,
                            scope=scope,
                            message=(
                                f"seed variable derived from "
                                f"'{_dotted(source.func)}()'"
                            ),
                            hint=(
                                "take the seed as a parameter (or a "
                                "fixed constant) and thread it through "
                                "repro.utils.rng.ensure_rng"
                            ),
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if _is_constructor_call(node):
                yield Finding(
                    rule="D002",
                    path=module.relpath,
                    line=node.lineno,
                    scope=scope,
                    message=(
                        f"direct RNG construction "
                        f"'{dotted or 'default_rng'}(...)' outside "
                        "repro.utils.rng"
                    ),
                    hint=(
                        "use repro.utils.rng.ensure_rng(seed) (or "
                        "spawn_rngs) so seed handling stays in one place"
                    ),
                )
            elif dotted is not None:
                prefix, _, last = dotted.rpartition(".")
                if prefix in ("np.random", "numpy.random"):
                    yield Finding(
                        rule="D001",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            f"call to global-state '{dotted}()' — results "
                            "depend on process-wide RNG state"
                        ),
                        hint=(
                            "construct a Generator via "
                            "repro.utils.rng.ensure_rng(seed) and call the "
                            "method on it"
                        ),
                    )
                elif prefix == "random" and last in _RANDOM_MODULE_FNS:
                    yield Finding(
                        rule="D001",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            f"call to global-state '{dotted}()' — results "
                            "depend on process-wide RNG state"
                        ),
                        hint=(
                            "use a seeded random.Random instance — or "
                            "better, a numpy Generator from "
                            "repro.utils.rng.ensure_rng"
                        ),
                    )
            # D003 inside RNG constructors and seed= keywords
            seed_exprs: list = []
            if _is_constructor_call(node):
                seed_exprs.extend(node.args)
            seed_exprs.extend(
                kw.value for kw in node.keywords if kw.arg == "seed"
            )
            for expr in seed_exprs:
                source = _time_source_in(expr)
                if source is not None:
                    yield Finding(
                        rule="D003",
                        path=module.relpath,
                        line=node.lineno,
                        scope=scope,
                        message=(
                            f"RNG seeded from '{_dotted(source.func)}()' — "
                            "every run draws a different stream"
                        ),
                        hint=(
                            "pass an explicit integer seed (or None for "
                            "documented non-determinism via ensure_rng)"
                        ),
                    )
