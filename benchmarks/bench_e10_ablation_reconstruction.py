"""E10 — Ablation: reconstruction internals (paper §3 design choices).

Three design choices the paper (and its PODS 2001 successor) motivate:

* stopping rule — the chi-squared rule vs iterating to a fixed point
  (deconvolution overfits when run to convergence; the rule is the fix),
* grid resolution — interval count trades bias against variance,
* algorithm — the paper's Bayes iterate vs explicit EM (they coincide).
"""

from __future__ import annotations

from _common import once, report

from repro.core import BayesReconstructor, EMReconstructor
from repro.experiments import ReconstructionConfig, format_table, run_reconstruction
from repro.experiments.config import scaled


def _ablate():
    # Stopping ablation runs at 25% privacy: deconvolution there is easy,
    # so *all* the error of the fixed-point variant is overfitting — the
    # cleanest demonstration of why the paper stops early.
    base = dict(shape="plateau", noise="uniform", privacy=0.25, n=scaled(10_000))

    variants = {
        "chi2 stop (paper)": BayesReconstructor(stopping="chi2"),
        "delta 1e-3": BayesReconstructor(stopping="delta", tol=1e-3),
        "fixed point (overfit)": BayesReconstructor(
            stopping="delta", tol=1e-12, max_iterations=400
        ),
        "EM (AA'01)": EMReconstructor(),
        "density transition": BayesReconstructor(transition_method="density"),
    }
    stopping_rows = []
    for name, reconstructor in variants.items():
        outcome = run_reconstruction(
            ReconstructionConfig(**base, n_intervals=20, seed=1000),
            reconstructor=reconstructor,
        )
        stopping_rows.append(
            (name, f"{outcome.l1_reconstructed:.4f}", outcome.n_iterations)
        )

    grid_rows = []
    grid_base = dict(base, privacy=0.5)
    for m in (5, 10, 20, 40, 80):
        outcome = run_reconstruction(
            ReconstructionConfig(**grid_base, n_intervals=m, seed=1001)
        )
        grid_rows.append((m, f"{outcome.l1_reconstructed:.4f}"))
    return stopping_rows, grid_rows


import pytest


@pytest.mark.filterwarnings("ignore::UserWarning")  # the overfit variant warns by design
def test_e10_ablation_reconstruction(benchmark):
    stopping_rows, grid_rows = once(benchmark, _ablate)

    stopping_table = format_table(
        ("variant", "L1 to original", "iterations"),
        stopping_rows,
        title="E10a: stopping rule / algorithm ablation (plateau, 25% privacy)",
    )
    grid_table = format_table(
        ("intervals", "L1 to original"),
        grid_rows,
        title="E10b: grid-resolution ablation",
    )
    report("e10_ablation_reconstruction", stopping_table + "\n\n" + grid_table)

    by_name = {name: float(l1) for name, l1, _ in stopping_rows}
    # the paper's chi-squared rule must beat the overfit fixed point
    # clearly (the gap is variance-driven, so it narrows as n grows:
    # ~4x at 10k records, ~1.8x at 30k)
    assert by_name["chi2 stop (paper)"] < 0.7 * by_name["fixed point (overfit)"]
    # EM run to (near) convergence behaves like the fixed point, not better
    assert by_name["EM (AA'01)"] > by_name["chi2 stop (paper)"]
    # the density-transition approximation is usable (same ballpark)
    assert by_name["density transition"] < 3 * by_name["chi2 stop (paper)"] + 0.05
