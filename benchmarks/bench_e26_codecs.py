"""E26 — Wire v5 codecs: compressed and quantized ingest bodies.

A disclosure is one of a few dozen bin indices, yet the v1 wire ships
it as 8 raw float64 bytes.  Wire v5 attacks the body size from two
independent angles:

* **quantized columns** — the client calls ``service.quantize`` and
  ships int8/int16 bin indices (1-2 bytes per value) instead of
  float64; the server adds the layout offset and feeds the same fused
  bincount, so estimates cannot drift,
* **per-body compression** — the whole request body rides
  ``Content-Encoding: zlib`` (or zstd when the optional package is
  installed) and is decoded through the bounded
  :func:`~repro.service.wire.decompress_payload`, exactly as the HTTP
  front end does.

This benchmark encodes identical disclosures through every
(encoding x codec) leg, replays the bodies decode-first as the handler
would (decompress + iter_frames + prepare + ingest) with 4 worker
threads at 1 and 4 shards, and asserts:

* estimates for **every** leg and shard count are bit-identical to a
  single-stream :class:`StreamingReconstructor` fed the same
  disclosures (quantization relocates encoding work, never the math),
* compressed legs ship strictly fewer bytes per record than their
  identity siblings, and the quantized wire beats raw float64 by >= 4x
  before compression even starts.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from _common import experiment, run_experiment

from repro.core import KernelCache, Partition, StreamingReconstructor, UniformRandomizer
from repro.experiments.reporting import format_table
from repro.service import AggregationService, AttributeSpec
from repro.service.wire import (
    WIRE_VERSION_QUANTIZED,
    compress_payload,
    decompress_payload,
    encode_columns,
    encode_quantized,
    iter_frames,
    supported_codecs,
)
from repro.utils.rng import ensure_rng

N_ATTRIBUTES = 4
N_BATCHES = 64
N_WORKERS = 4
SHARD_COUNTS = (1, 4)
REPEATS = 3
MAX_DECODED = 1 << 30


def _throughput_floor_scale() -> float:
    """Scales the wall-clock throughput threshold (parity and size
    asserts are unaffected).  Shared CI runners set this below 1 so a
    noisy neighbour cannot flake the build while a real regression
    still fails."""
    return float(os.environ.get("PPDM_E26_THROUGHPUT_FLOOR", "1.0"))


def _specs():
    """Four attributes with distinct domains (one kernel each)."""
    specs = []
    for j in range(N_ATTRIBUTES):
        low, high = float(10 * j), float(10 * j + 8 + j)
        partition = Partition.uniform(low, high, 24)
        noise = UniformRandomizer.from_privacy(1.0, high - low)
        specs.append(AttributeSpec(f"a{j}", partition, noise))
    return specs


def _disclosures(specs, n_per_attribute: int, seed: int):
    """Pre-generated randomized batches: ``batches[b][name] -> values``."""
    rng = ensure_rng(seed)
    per_batch = n_per_attribute // N_BATCHES
    batches = []
    for _ in range(N_BATCHES):
        batch = {}
        for j, spec in enumerate(specs):
            low, high = spec.x_partition.low, spec.x_partition.high
            span = high - low
            center = low + span * (0.3 + 0.05 * j)
            x = np.clip(rng.normal(center, 0.15 * span, per_batch), low, high)
            batch[spec.name] = spec.randomizer.randomize(x, seed=rng)
        batches.append(batch)
    return batches


def _encoded_bodies(specs, batches):
    """Every (encoding, codec) leg over the same disclosures."""
    quantizer = AggregationService(specs)
    float_bodies = [encode_columns(batch) for batch in batches]
    quant_bodies = [
        encode_quantized(quantizer.quantize(batch)) for batch in batches
    ]
    legs = {}
    for codec in supported_codecs():
        legs["float64", codec] = [
            compress_payload(body, codec) for body in float_bodies
        ]
        legs["quantized", codec] = [
            compress_payload(body, codec) for body in quant_bodies
        ]
    return legs


def _ingest_body(service, body: bytes, codec: str, shard: int) -> None:
    """What the handler does: bounded decompress, decode, fused ingest."""
    if codec != "identity":
        body = decompress_payload(body, codec, max_decoded=MAX_DECODED)
    for batch, _ in iter_frames(body):
        service.ingest_prepared(service.prepare(batch), shard=shard)


def _run_leg(specs, bodies, codec: str, n_shards: int) -> tuple:
    """Decode + ingest every body with worker threads pinned to shards."""
    service = AggregationService(specs, n_shards=n_shards)
    assignments = [bodies[w::N_WORKERS] for w in range(N_WORKERS)]

    def worker(index: int) -> None:
        shard = index % n_shards
        for body in assignments[index]:
            _ingest_body(service, body, codec, shard)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
        list(pool.map(worker, range(N_WORKERS)))
    seconds = time.perf_counter() - start
    return seconds, service.estimate_all()


def _reference_estimates(specs, batches) -> dict:
    """Single-stream, single-shard serial reference (the parity anchor)."""
    cache = KernelCache()
    reference = {}
    for spec in specs:
        stream = StreamingReconstructor(
            spec.x_partition, spec.randomizer, kernel_cache=cache
        )
        for batch in batches:
            stream.update(batch[spec.name])
        reference[spec.name] = stream.estimate()
    return reference


def _assert_parity(reference, estimates) -> None:
    """Each leg/shard combination must reproduce the reference bitwise."""
    for name, expected in reference.items():
        result = estimates[name]
        assert np.array_equal(
            expected.distribution.probs, result.distribution.probs
        ), name
        assert expected.n_iterations == result.n_iterations, name
        assert expected.chi2_statistic == result.chi2_statistic, name


@experiment(
    "e26",
    title="Wire v5 codecs: compressed + quantized ingest bodies",
    tags=("service", "smoke"),
    seed=11,
)
def run_e26(ctx):
    n_per_attribute = ctx.scaled(96_000)
    specs = _specs()
    batches = _disclosures(specs, n_per_attribute, seed=ctx.seed)
    n_records = sum(batch[s.name].size for batch in batches for s in specs)
    legs = _encoded_bodies(specs, batches)
    leg_bytes = {leg: sum(len(b) for b in bodies) for leg, bodies in legs.items()}
    ctx.record(
        n_records=n_records,
        n_attributes=N_ATTRIBUTES,
        n_batches=N_BATCHES,
        n_workers=N_WORKERS,
        wire_version=WIRE_VERSION_QUANTIZED,
        codecs=",".join(supported_codecs()),
        **{
            f"{encoding}_{codec}_bytes": total
            for (encoding, codec), total in leg_bytes.items()
        },
    )

    reference = _reference_estimates(specs, batches)
    seconds = {}
    for leg, bodies in legs.items():
        encoding, codec = leg
        for n_shards in SHARD_COUNTS:
            best = float("inf")
            for _ in range(REPEATS):
                elapsed, estimates = _run_leg(specs, bodies, codec, n_shards)
                _assert_parity(reference, estimates)
                best = min(best, elapsed)
            seconds[encoding, codec, n_shards] = best

    rows = []
    raw_bpr = leg_bytes["float64", "identity"] / n_records
    for (encoding, codec), total in leg_bytes.items():
        bpr = total / n_records
        rate = n_records / seconds[encoding, codec, 4]
        rows.append(
            (
                encoding,
                codec,
                f"{bpr:.2f}",
                f"{raw_bpr / bpr:.2f}x",
                f"{rate:,.0f}",
            )
        )
    table_text = format_table(
        ("encoding", "codec", "bytes/record", "vs raw", "records/s @4"),
        rows,
        title=(
            f"E26: wire body size and decode+ingest throughput, "
            f"{N_ATTRIBUTES} attributes x {n_per_attribute} records, "
            f"{N_WORKERS} workers"
        ),
    )
    quant_ratio = leg_bytes["float64", "identity"] / leg_bytes[
        "quantized", "identity"
    ]
    zlib_ratio = leg_bytes["float64", "identity"] / leg_bytes["float64", "zlib"]
    summary = (
        f"\nquantized wire: {quant_ratio:.2f}x smaller than raw float64"
        f"\nzlib on float64: {zlib_ratio:.2f}x smaller"
        f"\nestimates bit-identical to the serial single-stream reference "
        f"for every leg and shard count"
    )
    ctx.report(table_text + summary, name="e26_codecs")
    ctx.record_timing(
        **{
            f"{encoding}_{codec}_{n_shards}_shards_ms": best * 1e3
            for (encoding, codec, n_shards), best in seconds.items()
        },
    )

    # deterministic size gates: compression and quantization must both
    # strictly beat the raw wire
    for encoding in ("float64", "quantized"):
        assert leg_bytes[encoding, "zlib"] < leg_bytes[encoding, "identity"], (
            encoding
        )
    assert quant_ratio >= 4.0, f"quantized ratio {quant_ratio:.2f}x < 4x"

    # wall-clock gate (env-scaled): binning pre-located indices must not
    # fall far behind the float fast path
    float_rate = n_records / seconds["float64", "identity", 4]
    quant_rate = n_records / seconds["quantized", "identity", 4]
    floor = 0.6 * _throughput_floor_scale()
    assert quant_rate >= floor * float_rate, (
        f"quantized ingest at {quant_rate / float_rate:.2f}x of the float "
        f"rate; floor is {floor:.2f}x"
    )

    return {
        "bit_identical": True,
        "wire_version": WIRE_VERSION_QUANTIZED,
        "quantized_ratio": round(quant_ratio, 2),
        "zlib_ratio": round(zlib_ratio, 2),
        **{
            f"{encoding}_{codec}_bytes_per_record": round(total / n_records, 2)
            for (encoding, codec), total in leg_bytes.items()
        },
    }


def test_e26_codecs(benchmark):
    run_experiment(benchmark, "e26")
