"""Every exported name must carry a runnable docstring example.

The public API surface is ``repro.__all__`` and ``repro.core.__all__``
(plus the serving tier's ``repro.service.__all__``); a user landing on
any of those names should find a copy-pasteable example, and
``tests/test_doctests.py`` keeps each example honest by executing it.
This test keeps the *coverage* honest: exporting a new name without an
example fails here, not in a review comment.
"""

from __future__ import annotations

import inspect

import pytest

import repro
import repro.core
import repro.service

#: names whose example lives elsewhere: the HTTP front end is exercised
#: end-to-end in tests/test_service_http.py and documented in
#: docs/serving.md (a doctest would spin up a real socket server)
EXEMPT = {"ServiceHTTPServer"}


def _audit_targets():
    targets = []
    for module in (repro, repro.core, repro.service):
        for name in module.__all__:
            if name.startswith("__") or name in EXEMPT:
                continue
            obj = getattr(module, name)
            if inspect.ismodule(obj):
                continue
            targets.append(pytest.param(obj, id=f"{module.__name__}.{name}"))
    return targets


@pytest.mark.parametrize("obj", _audit_targets())
def test_export_has_runnable_example(obj):
    doc = inspect.getdoc(obj) or ""
    assert ">>>" in doc, (
        f"{obj.__module__}.{getattr(obj, '__name__', obj)} is exported but "
        "its docstring has no runnable (doctest) example"
    )
