"""Batched reconstruction engine with kernel caching.

The paper's reconstruction (§3.2) is an ``O(m^2)`` matrix iteration, but
the training pipelines run *many* of them: the ByClass algorithm solves
one problem per attribute × class, the Local algorithm repeats that at
every tree node, and the streaming collector refreshes its estimate over
and over.  Most of those problems share the same discretized noise kernel
— same partition, same randomizer, same transition method — yet the naive
path rebuilds it (and re-derives every chi-squared critical value) for
each problem.

This module is the production-scale substrate behind those callers:

* :class:`EngineConfig` — the shared, validated iteration settings that
  :class:`~repro.core.reconstruction.BayesReconstructor` and
  :class:`~repro.core.streaming.StreamingReconstructor` both delegate to,
* :class:`KernelCache` — an LRU cache of discretized noise kernels keyed
  on partition edges + randomizer parameters + transition method, so an
  identical kernel is computed once per fit instead of once per problem,
* :func:`_run_bayes_batch` — the vectorized Bayes sweep over a ``(B, S)``
  stack of reconstruction problems sharing one kernel, with per-problem
  convergence masking and per-problem chi²/delta stopping,
* :class:`ReconstructionEngine` — the facade that groups heterogeneous
  problems by kernel and dispatches them batched,
* :func:`run_bayes_reference` — the public looped reference path (no
  cache, no batching) the batched sweeps are held bit-identical to.

Bit-identity contract
---------------------
The batched sweep produces **bit-identical** results to running
:func:`~repro.core.reconstruction._run_bayes` once per problem: the two
matrix products of each sweep are issued per problem with exactly the
shapes the looped path uses (BLAS gemm and gemv round differently, so a
single stacked matmul would *not* be bitwise reproducible), while all
element-wise work, reductions, and stopping decisions are batched.  The
speedup comes from the kernel cache, the memoized chi-squared thresholds,
and the shared sweep bookkeeping — not from changing any float operation.
"""

from __future__ import annotations

import dataclasses
import inspect
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np
from scipy import stats

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer, transition_matrix
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.validation import check_1d_array, check_fraction, check_positive

#: smallest admissible mixture weight during iteration (guards 0/0)
_EPS = 1e-300


# ----------------------------------------------------------------------
# Shared result / configuration types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of a distribution reconstruction.

    Attributes
    ----------
    distribution:
        Estimated distribution of the *original* values on the requested
        partition.
    n_iterations:
        Number of Bayes sweeps performed.
    converged:
        ``False`` when iteration stopped on the iteration cap instead of
        the tolerance / chi-squared criterion.
    chi2_statistic / chi2_threshold:
        Final goodness-of-fit statistic of the observed randomized
        histogram against the randomization of the estimate, and the 95 %
        critical value it is compared to (``nan`` when not computed).
    delta_history:
        L1 change of the estimate at each sweep (diagnostic).

    Examples
    --------
    >>> from repro.core import BayesReconstructor, Partition, UniformRandomizer
    >>> noise = UniformRandomizer(half_width=0.3)
    >>> w = noise.randomize([0.5] * 2000, seed=0)
    >>> result = BayesReconstructor().reconstruct(
    ...     w, Partition.uniform(0, 1, 5), noise
    ... )
    >>> bool(result.converged)
    True
    >>> round(float(result.distribution.probs.sum()), 9)
    1.0
    """

    distribution: HistogramDistribution
    n_iterations: int
    converged: bool
    chi2_statistic: float = float("nan")
    chi2_threshold: float = float("nan")
    delta_history: tuple = field(default=())


@dataclass(frozen=True)
class EngineConfig:
    """Validated iteration settings shared by every reconstruction front-end.

    One place holds the constraints that used to be duplicated (and
    partially forgotten) across the batch and streaming reconstructors:

    * ``max_iterations >= 1``,
    * ``tol > 0``,
    * ``stopping`` in ``{"delta", "chi2"}``,
    * ``transition_method`` in ``{"density", "integrated"}``,
    * ``coverage`` a fraction in ``(0, 1]``.

    Examples
    --------
    >>> from repro.core import EngineConfig
    >>> config = EngineConfig(max_iterations=100, stopping="delta")
    >>> config.tol
    0.001
    >>> EngineConfig(stopping="sometimes")
    Traceback (most recent call last):
        ...
    repro.exceptions.ValidationError: stopping must be 'delta' or 'chi2', got 'sometimes'
    """

    max_iterations: int = 500
    tol: float = 1e-3
    stopping: str = "chi2"
    transition_method: str = "integrated"
    coverage: float = 1.0 - 1e-9

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValidationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        check_positive(self.tol, "tol")
        if self.stopping not in ("delta", "chi2"):
            raise ValidationError(
                f"stopping must be 'delta' or 'chi2', got {self.stopping!r}"
            )
        if self.transition_method not in ("density", "integrated"):
            raise ValidationError(
                f"transition_method must be 'density' or 'integrated', "
                f"got {self.transition_method!r}"
            )
        check_fraction(self.coverage, "coverage")
        object.__setattr__(self, "max_iterations", int(self.max_iterations))
        object.__setattr__(self, "tol", float(self.tol))
        object.__setattr__(self, "coverage", float(self.coverage))


def config_property(field: str, *, engine_attr: str = "engine") -> property:
    """A live property delegating to the owner's engine configuration.

    Reading returns the current :class:`EngineConfig` value; assigning
    replaces the engine's config via :func:`dataclasses.replace`, which
    re-runs validation.  Shared by the reconstructor front-ends so the
    proxy surface cannot drift between them (a plain attribute mirror
    would be silently ignored by the engine).
    """

    def fget(self):
        return getattr(getattr(self, engine_attr).config, field)

    def fset(self, value):
        engine = getattr(self, engine_attr)
        engine.config = dataclasses.replace(engine.config, **{field: value})

    return property(
        fget,
        fset,
        doc=f"Live view of ``EngineConfig.{field}``; assignment re-validates "
        "and takes effect on the next reconstruction.",
    )


class ReconstructionProblem(NamedTuple):
    """One reconstruction problem for :meth:`ReconstructionEngine.reconstruct_batch`.

    Examples
    --------
    >>> from repro.core import Partition, ReconstructionProblem, UniformRandomizer
    >>> problem = ReconstructionProblem(
    ...     [0.2, 0.8], Partition.uniform(0, 1, 4), UniformRandomizer(half_width=0.1)
    ... )
    >>> problem.x_partition.n_intervals
    4
    """

    randomized_values: np.ndarray
    x_partition: Partition
    randomizer: AdditiveRandomizer


# ----------------------------------------------------------------------
# Kernel cache
# ----------------------------------------------------------------------
class KernelCache:
    """LRU cache of discretized noise kernels (and their y-grids).

    Keys combine the partition's edge values, the randomizer (our
    randomizers are frozen dataclasses, so equal parameters hash equal),
    the transition method, and the coverage.  Randomizers without value
    equality (no ``__eq__`` of their own, or unhashable) cannot be keyed
    reliably — identity-based keys would serve stale kernels after a
    parameter mutation — so they bypass the cache and are recomputed
    each time.

    Cached kernels are returned with ``writeable=False`` so a caller
    cannot silently corrupt every later hit.

    Parameters
    ----------
    maxsize:
        Entries kept before least-recently-used eviction (0 disables
        storage; lookups then always recompute).

    Examples
    --------
    >>> from repro.core import KernelCache, Partition, UniformRandomizer
    >>> cache = KernelCache(maxsize=8)
    >>> part = Partition.uniform(0, 1, 6)
    >>> noise = UniformRandomizer(half_width=0.2)
    >>> y_part, kernel = cache.get(part, noise, method="integrated", coverage=1.0)
    >>> _ = cache.get(part, noise, method="integrated", coverage=1.0)
    >>> cache.hits, cache.misses
    (1, 1)
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 0:
            raise ValidationError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
        method: str,
        coverage: float,
    ):
        """Cache key for a kernel, or ``None`` when the randomizer is unkeyable.

        A randomizer is keyable only when its class defines value equality
        (a frozen dataclass, a NamedTuple, ...).  Default object identity
        would keep matching after an in-place parameter mutation and serve
        a kernel built for the old parameters.
        """
        if type(randomizer).__eq__ is object.__eq__:
            return None
        try:
            hash(randomizer)
        except TypeError:
            return None
        return (x_partition.edges.tobytes(), randomizer, method, float(coverage))

    def get(
        self,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
        *,
        method: str,
        coverage: float,
    ) -> tuple:
        """Return ``(y_partition, kernel)``, computing and caching on miss."""
        key = self.key_for(x_partition, randomizer, method, coverage)
        if key is not None:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
        self.misses += 1
        margin = randomizer.support_half_width(coverage)
        y_partition = x_partition.expanded(margin)
        kernel = transition_matrix(
            y_partition, x_partition, randomizer, method=method
        )
        kernel.setflags(write=False)
        entry = (y_partition, kernel)
        if key is not None and self.maxsize > 0:
            self._entries[key] = entry
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop all cached kernels and reset hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ----------------------------------------------------------------------
# Chi-squared goodness of fit (with memoized critical values)
# ----------------------------------------------------------------------
def _chi2_fit(
    y_counts: np.ndarray,
    expected: np.ndarray,
    *,
    ppf_cache: dict | None = None,
    total: float = None,
) -> tuple[float, float]:
    """Chi-squared statistic of observed vs expected interval counts.

    Intervals with tiny expectation are pooled into their neighbours
    (classic rule of thumb: expected >= 5) so the statistic is stable.

    ``ppf_cache`` memoizes the 95 % critical value per degrees-of-freedom
    — ``scipy.stats.chi2.ppf`` costs more than the statistic itself, and
    the looped path used to pay it on every sweep of every problem.
    ``total`` lets a caller that already knows ``y_counts.sum()`` skip
    recomputing it (the batched sweep calls this once per problem per
    sweep).
    """
    if total is None:
        total = y_counts.sum()
    expected = expected / max(expected.sum(), _EPS) * total
    order = np.argsort(-expected, kind="stable")
    obs_sorted, exp_sorted = y_counts[order], expected[order]
    # exp_sorted is descending, so the kept cells are a prefix: slice
    # instead of boolean-masking (same elements, same order, same bits).
    n_keep = int((exp_sorted >= 5.0).sum())
    if n_keep == 0:
        return float("nan"), float("nan")
    obs_main, exp_main = obs_sorted[:n_keep], exp_sorted[:n_keep]
    # Pool everything below the threshold into one pseudo-cell.
    obs_rest, exp_rest = obs_sorted[n_keep:].sum(), exp_sorted[n_keep:].sum()
    if exp_rest > 0:
        obs_main = np.concatenate((obs_main, (obs_rest,)))
        exp_main = np.concatenate((exp_main, (exp_rest,)))
    return _chi2_statistic(obs_main, exp_main, ppf_cache)


def _chi2_statistic(
    obs_main: np.ndarray, exp_main: np.ndarray, ppf_cache: dict | None
) -> tuple[float, float]:
    """Statistic + memoized 95 % critical value for pooled cells.

    Shared tail of :func:`_chi2_fit` and :func:`_chi2_fit_batch` — the
    bit-identity contract requires the two to agree exactly, so the
    arithmetic lives once.
    """
    statistic = float(((obs_main - exp_main) ** 2 / exp_main).sum())
    dof = max(obs_main.size - 1, 1)
    if ppf_cache is None:
        threshold = float(stats.chi2.ppf(0.95, dof))
    else:
        threshold = ppf_cache.get(dof)
        if threshold is None:
            threshold = float(stats.chi2.ppf(0.95, dof))
            ppf_cache[dof] = threshold
    return statistic, threshold


def _chi2_fit_batch(
    y_counts: np.ndarray,
    expected: np.ndarray,
    totals: np.ndarray,
    *,
    ppf_cache: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`_chi2_fit` over a ``(B, S)`` stack of problems.

    The cross-problem steps (normalization, descending sort, reorder) run
    as single array operations; the ragged pooling tail stays per row.
    Every row's statistic and threshold are bitwise what :func:`_chi2_fit`
    returns for that row alone.
    """
    norm = (
        expected
        / np.maximum(expected.sum(axis=1), _EPS)[:, None]
        * totals[:, None]
    )
    order = np.argsort(-norm, axis=1, kind="stable")
    obs_sorted = np.take_along_axis(y_counts, order, axis=1)
    exp_sorted = np.take_along_axis(norm, order, axis=1)
    keep_counts = (exp_sorted >= 5.0).sum(axis=1)

    statistics = np.full(totals.size, float("nan"))
    thresholds = np.full(totals.size, float("nan"))
    for i in range(totals.size):
        n_keep = int(keep_counts[i])
        if n_keep == 0:
            continue
        obs_main, exp_main = obs_sorted[i, :n_keep], exp_sorted[i, :n_keep]
        obs_rest, exp_rest = obs_sorted[i, n_keep:].sum(), exp_sorted[i, n_keep:].sum()
        if exp_rest > 0:
            obs_main = np.concatenate((obs_main, (obs_rest,)))
            exp_main = np.concatenate((exp_main, (exp_rest,)))
        statistics[i], thresholds[i] = _chi2_statistic(obs_main, exp_main, ppf_cache)
    return statistics, thresholds


def _prepare(
    randomized_values,
    x_partition: Partition,
    randomizer: AdditiveRandomizer,
    *,
    transition_method: str,
    coverage: float,
):
    """Shared setup: bucket the randomized values and build the noise kernel.

    Returns ``(y_counts, kernel)`` where ``kernel[s, p]`` is
    ``P(Y in I_s | X = midpoint_p)`` — also used by the EM reconstructor.
    """
    w = check_1d_array(randomized_values, "randomized_values")
    margin = randomizer.support_half_width(coverage)
    y_partition = x_partition.expanded(margin)
    y_counts = y_partition.histogram(w).astype(float)
    kernel = transition_matrix(
        y_partition, x_partition, randomizer, method=transition_method
    )
    return y_counts, kernel


# ----------------------------------------------------------------------
# Batched Bayes sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchSweepResult:
    """Per-problem outcome arrays of one :func:`_run_bayes_batch` call."""

    theta: np.ndarray  # (B, P) final estimates
    n_iterations: np.ndarray  # (B,) sweeps each problem ran
    converged: np.ndarray  # (B,) bool
    deltas: tuple  # per-problem tuple of L1 changes
    chi2_statistic: np.ndarray  # (B,)
    chi2_threshold: np.ndarray  # (B,)


def _run_bayes_batch(
    y_counts: np.ndarray,
    kernel: np.ndarray,
    theta0: np.ndarray,
    *,
    max_iterations: int,
    tol: float,
    stopping: str,
    ppf_cache: dict | None = None,
) -> BatchSweepResult:
    """Run Bayes sweeps for ``B`` problems sharing one noise kernel.

    ``y_counts`` is the ``(B, S)`` stack of randomized histograms and
    ``theta0`` the ``(B, P)`` stack of starting estimates (not mutated).
    Each problem stops independently — on its own chi²/delta criterion at
    its own sweep — and converged problems drop out of the active batch so
    late stragglers don't pay for early finishers.

    Every float op matches :func:`~repro.core.reconstruction._run_bayes`
    per problem, so the results are bitwise identical to running the
    looped path ``B`` times (see the module docstring for why the two
    matmuls are issued per problem).
    """
    y_counts = np.asarray(y_counts, dtype=float)
    if y_counts.ndim != 2:
        raise ValidationError(
            f"y_counts must be 2-dimensional (B, S), got shape {y_counts.shape}"
        )
    n_problems, n_y = y_counts.shape
    if kernel.shape[0] != n_y:
        raise ValidationError(
            f"kernel has {kernel.shape[0]} rows but y_counts has {n_y} columns"
        )
    n_x = kernel.shape[1]
    theta = np.array(theta0, dtype=float)
    if theta.shape != (n_problems, n_x):
        raise ValidationError(
            f"theta0 must have shape ({n_problems}, {n_x}), got {theta.shape}"
        )
    n = y_counts.sum(axis=1)
    if np.any(n <= 0):
        raise ValidationError("every problem needs at least one randomized value")
    # The looped path divides y_counts by n on every sweep; the quotient
    # never changes, so hoist it (bitwise the same values).
    ybar = y_counts / n[:, None]

    deltas: list = [[] for _ in range(n_problems)]
    converged = np.zeros(n_problems, dtype=bool)
    iterations = np.zeros(n_problems, dtype=np.int64)
    chi2_stat = np.full(n_problems, float("nan"))
    chi2_thresh = np.full(n_problems, float("nan"))
    previous_chi2 = np.full(n_problems, float("inf"))
    active = np.arange(n_problems)

    # Active working set: these arrays shrink as problems converge, so a
    # round touches only live problems and the full-size arrays are only
    # written at stop events.
    th = theta  # (Ba, P) current estimates of the active problems
    ybar_act, y_counts_act, n_act = ybar, y_counts, n
    # In chi2 mode the looped path evaluates ``kernel @ theta`` twice per
    # sweep on the same theta: once for the goodness-of-fit expectation
    # and once as the next sweep's mixture.  The batch computes that gemv
    # once and carries it into the next round (same call, same row, same
    # bits), so chi2 stopping costs two matmuls per sweep, not three.
    carried_mixture = None
    for iteration in range(1, max_iterations + 1):
        if carried_mixture is None:
            mixture = np.empty((active.size, n_y))
            for i in range(active.size):
                # Per-problem gemv: bitwise identical to the looped path
                # (a stacked gemm rounds differently — see module docstring).
                mixture[i] = kernel @ th[i]
        else:
            mixture = carried_mixture
        safe_mixture = np.maximum(mixture, _EPS)
        # Posterior responsibility of x-interval p for y-interval s,
        # weighted by observed counts, averaged over each sample.
        weights = ybar_act / safe_mixture  # (Ba, S)
        update = np.empty((active.size, n_x))
        for i in range(active.size):
            update[i] = kernel.T @ weights[i]
        theta_new = th * update  # (Ba, P)
        total = theta_new.sum(axis=1)
        if total.min() <= 0:
            raise ValidationError(
                "reconstruction collapsed to zero mass; the noise kernel "
                "does not cover the observed randomized values"
            )
        theta_new /= total[:, None]
        delta = np.abs(theta_new - th).sum(axis=1)

        stop = np.zeros(active.size, dtype=bool)
        new_mixture = None
        if stopping == "chi2":
            new_mixture = np.empty((active.size, n_y))
            for i in range(active.size):
                new_mixture[i] = kernel @ theta_new[i]
            stat_row, thresh_row = _chi2_fit_batch(
                y_counts_act,
                new_mixture * n_act[:, None],
                n_act,
                ppf_cache=ppf_cache,
            )
        for i, b in enumerate(active):
            deltas[b].append(float(delta[i]))
            if stopping == "chi2":
                stat, thresh = stat_row[i], thresh_row[i]
                chi2_stat[b], chi2_thresh[b] = stat, thresh
                if np.isfinite(stat):
                    # Stop when the randomized data are statistically
                    # consistent with the estimate, OR when further
                    # sharpening has stopped improving the fit (the model
                    # is binned, so the test may never pass outright;
                    # iterating past the plateau only overfits noise).
                    passed = stat <= thresh
                    plateaued = (previous_chi2[b] - stat) < 0.01 * thresh
                    if passed or plateaued:
                        converged[b] = True
                        stop[i] = True
                        continue
                    previous_chi2[b] = stat
            if delta[i] < tol:
                converged[b] = True
                stop[i] = True

        if stop.any():
            for i in np.flatnonzero(stop):
                b = active[i]
                theta[b] = theta_new[i]
                iterations[b] = iteration
            keep = ~stop
            active = active[keep]
            if active.size == 0:
                break
            th = theta_new[keep]
            ybar_act = ybar_act[keep]
            y_counts_act = y_counts_act[keep]
            n_act = n_act[keep]
            carried_mixture = None if new_mixture is None else new_mixture[keep]
        else:
            th = theta_new
            carried_mixture = new_mixture

    if active.size:
        # Problems that hit the iteration cap: flush their working rows.
        for i, b in enumerate(active):
            theta[b] = th[i]
            iterations[b] = max_iterations

    if stopping != "chi2":
        for b in range(n_problems):
            chi2_stat[b], chi2_thresh[b] = _chi2_fit(
                y_counts[b], kernel @ theta[b] * n[b], ppf_cache=ppf_cache
            )
    return BatchSweepResult(
        theta=theta,
        n_iterations=iterations,
        converged=converged,
        deltas=tuple(tuple(d) for d in deltas),
        chi2_statistic=chi2_stat,
        chi2_threshold=chi2_thresh,
    )


# ----------------------------------------------------------------------
# Engine facade
# ----------------------------------------------------------------------
class ReconstructionEngine:
    """Batched, kernel-cached dispatcher for reconstruction problems.

    The engine owns an :class:`EngineConfig`, a :class:`KernelCache`, and
    a memo of chi-squared critical values.  Heterogeneous problems handed
    to :meth:`reconstruct_batch` are grouped by their (cached) kernel and
    each group runs as one call to :func:`_run_bayes_batch`.

    Parameters
    ----------
    config:
        Iteration settings; defaults to :class:`EngineConfig` defaults.
    kernel_cache:
        Share one cache between engines (e.g. several streaming
        reconstructors over the same grid); defaults to a private cache.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.core.engine import ReconstructionEngine
    >>> rng = np.random.default_rng(0)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> part = Partition.uniform(0.0, 1.0, 20)
    >>> problems = [
    ...     (noise.randomize(rng.uniform(0.2, 0.8, 3000), seed=s), part, noise)
    ...     for s in (1, 2, 3)
    ... ]
    >>> engine = ReconstructionEngine()
    >>> results = engine.reconstruct_batch(problems)
    >>> len(results), engine.kernel_cache.misses
    (3, 1)
    """

    def __init__(
        self, config: EngineConfig | None = None, *, kernel_cache: KernelCache = None
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        if not isinstance(self.config, EngineConfig):
            raise ValidationError(
                f"config must be an EngineConfig, got {type(self.config).__name__}"
            )
        self.kernel_cache = kernel_cache if kernel_cache is not None else KernelCache()
        self._ppf_cache: dict = {}

    # ------------------------------------------------------------------
    def kernel_for(
        self, x_partition: Partition, randomizer: AdditiveRandomizer
    ) -> tuple:
        """Cached ``(y_partition, kernel)`` for one partition/randomizer pair."""
        return self.kernel_cache.get(
            x_partition,
            randomizer,
            method=self.config.transition_method,
            coverage=self.config.coverage,
        )

    def sweep_batch(
        self, y_counts: np.ndarray, kernel: np.ndarray, theta0: np.ndarray
    ) -> BatchSweepResult:
        """Run the configured Bayes sweeps on pre-bucketed problems.

        Low-level entry used by the streaming reconstructor, which owns
        its histogram and warm-start estimate.
        """
        return _run_bayes_batch(
            y_counts,
            kernel,
            theta0,
            max_iterations=self.config.max_iterations,
            tol=self.config.tol,
            stopping=self.config.stopping,
            ppf_cache=self._ppf_cache,
        )

    def result_from_sweep(
        self,
        batch: BatchSweepResult,
        row: int,
        x_partition: Partition,
        *,
        _stacklevel: int = 2,
        warn: bool = True,
    ) -> ReconstructionResult:
        """One problem's :class:`ReconstructionResult` from a sweep batch.

        Emits the engine's :class:`~repro.exceptions.ConvergenceWarning`
        when the problem stopped on the iteration cap — the single place
        that message and the result assembly live, shared by the batch
        facade and the streaming reconstructor.  ``warn=False`` leaves
        the cap-hit visible only on ``result.converged``.
        """
        if warn and not batch.converged[row]:
            warnings.warn(
                f"reconstruction stopped at max_iterations="
                f"{self.config.max_iterations} with last delta "
                f"{batch.deltas[row][-1]:.3g}",
                ConvergenceWarning,
                stacklevel=_stacklevel + 1,
            )
        return ReconstructionResult(
            distribution=HistogramDistribution(x_partition, batch.theta[row]),
            n_iterations=int(batch.n_iterations[row]),
            converged=bool(batch.converged[row]),
            chi2_statistic=float(batch.chi2_statistic[row]),
            chi2_threshold=float(batch.chi2_threshold[row]),
            delta_history=batch.deltas[row],
        )

    def estimate_counts(
        self,
        y_counts: np.ndarray,
        kernel: np.ndarray,
        theta: np.ndarray,
        x_partition: Partition,
        *,
        _stacklevel: int = 2,
        warn: bool = True,
    ) -> tuple:
        """Warm-started reconstruction of one pre-bucketed problem.

        The shared serving path behind
        :meth:`repro.core.streaming.StreamingReconstructor.estimate` and
        :meth:`repro.service.AggregationService.estimate`: both hold a
        running noise-expanded histogram and a carried estimate, and a
        refresh is one sweep batch of size one.

        Parameters
        ----------
        y_counts:
            ``(S,)`` histogram of randomized values on the kernel's
            y-partition.
        kernel:
            The discretized noise kernel (from :meth:`kernel_for`).
        theta:
            ``(P,)`` warm-start estimate (not mutated).
        x_partition:
            Grid the result's distribution is expressed on.

        Returns
        -------
        ``(result, new_theta)`` — the :class:`ReconstructionResult` and
        the final estimate to carry into the next refresh.  With
        ``warn=False`` a cap-hit is reported only through
        ``result.converged`` (for callers — e.g. request handlers —
        where a Python warning is the wrong channel).
        """
        batch = self.sweep_batch(y_counts[None, :], kernel, theta[None, :])
        result = self.result_from_sweep(
            batch, 0, x_partition, _stacklevel=_stacklevel + 1, warn=warn
        )
        return result, batch.theta[0]

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        randomized_values,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
        *,
        _stacklevel: int = 2,
    ) -> ReconstructionResult:
        """Reconstruct a single problem (a batch of one)."""
        return self.reconstruct_batch(
            [(randomized_values, x_partition, randomizer)],
            _stacklevel=_stacklevel + 1,
        )[0]

    def reconstruct_batch(self, problems, *, _stacklevel: int = 2) -> list:
        """Reconstruct many problems, batching those that share a kernel.

        Parameters
        ----------
        problems:
            Iterable of ``(randomized_values, x_partition, randomizer)``
            triples (or :class:`ReconstructionProblem` instances).
        _stacklevel:
            Frames between any emitted warning and the caller to blame —
            wrappers adding a frame pass their incoming value + 1, so
            :class:`~repro.exceptions.ConvergenceWarning` points at user
            code, not library plumbing.

        Returns
        -------
        list of :class:`ReconstructionResult` in input order.  Problems
        that hit the iteration cap emit the same
        :class:`~repro.exceptions.ConvergenceWarning` the single-problem
        path does.
        """
        problems = [ReconstructionProblem(*p) for p in problems]
        prepared = []  # (w, x_partition, y_partition, kernel) per problem
        groups: OrderedDict = OrderedDict()  # id(kernel) -> [problem indices]
        for idx, problem in enumerate(problems):
            w = check_1d_array(problem.randomized_values, "randomized_values")
            y_partition, kernel = self.kernel_for(
                problem.x_partition, problem.randomizer
            )
            prepared.append((w, problem.x_partition, y_partition, kernel))
            groups.setdefault(id(kernel), []).append(idx)

        results: list = [None] * len(problems)
        for indices in groups.values():
            _, _, y_partition, kernel = prepared[indices[0]]
            y_counts = np.stack(
                [y_partition.histogram(prepared[i][0]).astype(float) for i in indices]
            )
            n_x = kernel.shape[1]
            theta0 = np.full((len(indices), n_x), 1.0 / n_x)
            batch = self.sweep_batch(y_counts, kernel, theta0)
            for row, i in enumerate(indices):
                results[i] = self.result_from_sweep(
                    batch, row, prepared[i][1], _stacklevel=_stacklevel
                )
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReconstructionEngine(stopping={self.config.stopping!r}, "
            f"cache={self.kernel_cache!r})"
        )


def run_bayes_reference(
    randomized_values,
    x_partition: Partition,
    randomizer: AdditiveRandomizer,
    *,
    config: EngineConfig | None = None,
) -> ReconstructionResult:
    """Solve one problem on the looped (pre-engine) reference path.

    The public hook for holding the batched engine to its bit-identity
    contract: no kernel cache, no memoized chi-squared thresholds, no
    batching — the kernel is rebuilt and every critical value re-derived,
    exactly as the pre-engine code did.  Benchmarks (E19) and tests
    compare :class:`ReconstructionEngine` output against this function
    instead of reaching into the underscored internals.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import (
    ...     Partition, ReconstructionEngine, UniformRandomizer,
    ...     run_bayes_reference,
    ... )
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> w = noise.randomize(np.full(3000, 0.5), seed=0)
    >>> part = Partition.uniform(0, 1, 5)
    >>> reference = run_bayes_reference(w, part, noise)
    >>> batched = ReconstructionEngine().reconstruct(w, part, noise)
    >>> bool(np.array_equal(
    ...     reference.distribution.probs, batched.distribution.probs
    ... ))
    True
    """
    from repro.core.reconstruction import _run_bayes

    config = config if config is not None else EngineConfig()
    if not isinstance(config, EngineConfig):
        raise ValidationError(
            f"config must be an EngineConfig, got {type(config).__name__}"
        )
    y_counts, kernel = _prepare(
        randomized_values,
        x_partition,
        randomizer,
        transition_method=config.transition_method,
        coverage=config.coverage,
    )
    m = x_partition.n_intervals
    theta, iters, converged, deltas, chi2_stat, chi2_thresh = _run_bayes(
        y_counts,
        kernel,
        np.full(m, 1.0 / m),
        max_iterations=config.max_iterations,
        tol=config.tol,
        stopping=config.stopping,
    )
    return ReconstructionResult(
        distribution=HistogramDistribution(x_partition, theta),
        n_iterations=iters,
        converged=converged,
        chi2_statistic=chi2_stat,
        chi2_threshold=chi2_thresh,
        delta_history=tuple(deltas),
    )


def reconstruct_problems(reconstructor, problems, *, _stacklevel: int = 2) -> list:
    """Solve ``(values, partition, randomizer)`` problems, batched if possible.

    The shared dispatch used by the tree pipeline and naive Bayes:
    reconstructors exposing ``reconstruct_batch`` (the engine-backed
    default) get all problems in one call — kernels shared, sweeps
    stacked; anything else falls back to the one-at-a-time loop.  The
    ``_stacklevel`` chain is forwarded when the batch method supports it,
    so convergence warnings blame the caller, not this plumbing.
    """
    batch = getattr(reconstructor, "reconstruct_batch", None)
    if batch is not None:
        if _supports_stacklevel(getattr(batch, "__func__", batch)):
            return batch(problems, _stacklevel=_stacklevel + 1)
        return batch(problems)
    return [
        reconstructor.reconstruct(values, partition, randomizer)
        for values, partition, randomizer in problems
    ]


#: memoized signature probes: the Local strategy dispatches once per tree
#: node, and reflecting on the same class method every time is waste
_STACKLEVEL_SUPPORT: dict = {}


def _supports_stacklevel(function) -> bool:
    supported = _STACKLEVEL_SUPPORT.get(function)
    if supported is None:
        try:
            supported = "_stacklevel" in inspect.signature(function).parameters
        except (TypeError, ValueError):  # builtins / odd callables
            supported = False
        _STACKLEVEL_SUPPORT[function] = supported
    return supported
