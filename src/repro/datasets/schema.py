"""Attribute metadata and a minimal column-oriented dataset container.

The paper's pipeline needs, for every attribute, its *domain* (privacy is
stated as a fraction of the domain range and reconstruction grids span it)
and whether it is integer-valued.  :class:`Attribute` carries that
metadata; :class:`Table` bundles named columns with a class-label vector
and provides the row-subset and column-replacement operations used by the
training algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import SchemaError, ValidationError


@dataclass(frozen=True)
class Attribute:
    """Description of one numeric attribute.

    Attributes
    ----------
    name:
        Column name.
    low / high:
        Domain bounds (inclusive).  Privacy levels are stated relative to
        ``high - low`` and reconstruction partitions span this range.
    discrete:
        True for integer-valued attributes (``elevel``, ``car``, ...).
        They are still randomized with continuous additive noise, exactly
        as the paper treats them.
    """

    name: str
    low: float
    high: float
    discrete: bool = False

    def __post_init__(self) -> None:
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise ValidationError(f"attribute {self.name!r}: bounds must be finite")
        if self.high <= self.low:
            raise ValidationError(
                f"attribute {self.name!r}: high ({self.high}) must exceed "
                f"low ({self.low})"
            )

    @property
    def span(self) -> float:
        """Domain range ``high - low``."""
        return self.high - self.low

    def partition(self, n_intervals: int) -> Partition:
        """Equal-width partition of the attribute's domain.

        Discrete attributes default to one interval per integer value when
        ``n_intervals`` exceeds the number of values, so reconstruction
        never resolves finer than the attribute itself.
        """
        if self.discrete:
            n_values = int(round(self.span)) + 1
            n_intervals = min(n_intervals, n_values)
            # Centre integer values inside intervals: [low-.5, high+.5].
            return Partition.uniform(self.low - 0.5, self.high + 0.5, n_intervals)
        return Partition.uniform(self.low, self.high, n_intervals)


class Table:
    """A column-oriented dataset with class labels.

    Parameters
    ----------
    columns:
        Mapping from attribute name to a 1-D value array.  All columns must
        share one length.
    labels:
        Integer class label per record (the paper uses two classes, but the
        container is agnostic).
    schema:
        One :class:`Attribute` per column, in column order.
    """

    def __init__(self, columns: dict, labels, schema) -> None:
        self.schema: tuple = tuple(schema)
        names = [attribute.name for attribute in self.schema]
        if sorted(names) != sorted(columns):
            raise SchemaError(
                f"schema names {sorted(names)} do not match columns "
                f"{sorted(columns)}"
            )
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise SchemaError("labels must be 1-dimensional")
        self.labels = labels.astype(np.int64)

        self.columns: dict = {}
        for name in names:
            col = np.asarray(columns[name], dtype=float)
            if col.shape != labels.shape:
                raise SchemaError(
                    f"column {name!r} has length {col.shape[0]}, labels have "
                    f"length {labels.shape[0]}"
                )
            if col.size and not np.all(np.isfinite(col)):
                raise SchemaError(f"column {name!r} contains NaN or infinite values")
            self.columns[name] = col

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        """Number of rows."""
        return int(self.labels.size)

    @property
    def attribute_names(self) -> tuple:
        """Column names in schema order."""
        return tuple(attribute.name for attribute in self.schema)

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels (0 for an empty table)."""
        return int(np.unique(self.labels).size) if self.n_records else 0

    def attribute(self, name: str) -> Attribute:
        """Look up the :class:`Attribute` for a column name."""
        for attribute in self.schema:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"no attribute named {name!r}")

    def column(self, name: str) -> np.ndarray:
        """Return one column's values (the stored array — do not mutate)."""
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def matrix(self) -> np.ndarray:
        """All columns stacked into an ``(n_records, n_attributes)`` array."""
        return np.column_stack([self.columns[n] for n in self.attribute_names])

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def subset(self, mask_or_indices) -> "Table":
        """Row subset by boolean mask or index array (copies columns)."""
        idx = np.asarray(mask_or_indices)
        return Table(
            {name: col[idx] for name, col in self.columns.items()},
            self.labels[idx],
            self.schema,
        )

    def with_columns(self, new_columns: dict) -> "Table":
        """A table with some columns replaced (labels and schema kept)."""
        merged = dict(self.columns)
        for name, values in new_columns.items():
            if name not in merged:
                raise SchemaError(f"cannot replace unknown column {name!r}")
            merged[name] = np.asarray(values, dtype=float)
        return Table(merged, self.labels, self.schema)

    def class_split(self) -> dict:
        """Mapping from class label to the sub-table of that class."""
        return {
            int(label): self.subset(self.labels == label)
            for label in np.unique(self.labels)
        }

    def __len__(self) -> int:
        return self.n_records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table(n_records={self.n_records}, "
            f"attributes={list(self.attribute_names)})"
        )
