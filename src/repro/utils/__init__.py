"""Small shared helpers: RNG handling and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_1d_array,
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_1d_array",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]
