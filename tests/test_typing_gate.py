"""Strict-typing gate over ``repro.analysis`` and ``repro.service``.

CI runs mypy directly (the ``lint-invariants`` job); this test runs the
same configured check locally when mypy is importable, and skips
otherwise so the tier-1 suite stays dependency-light.  The config-shape
test needs a TOML parser — stdlib ``tomllib`` on 3.11+, ``tomli`` on
3.10 if present — and skips when neither exists rather than breaking
collection on older interpreters.
"""

from __future__ import annotations

from pathlib import Path

import pytest

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_mypy_gate_is_clean():
    mypy_api = pytest.importorskip(
        "mypy.api", reason="mypy not installed; the typing gate runs in CI"
    )
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml")]
    )
    assert status == 0, (
        f"mypy gate failed (exit {status}):\n{stdout}\n{stderr}"
    )


def test_gate_covers_analysis_and_service():
    if tomllib is None:
        pytest.skip("no TOML parser available (tomllib needs Python 3.11+)")
    config = tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    )
    mypy_cfg = config["tool"]["mypy"]
    assert "src/repro/analysis" in mypy_cfg["files"]
    assert "src/repro/service" in mypy_cfg["files"]
    overrides = mypy_cfg["overrides"]
    strict = [o for o in overrides if o["module"] == "repro.analysis.*"]
    assert strict and strict[0]["disallow_untyped_defs"] is True
