"""Run every docstring example in the package as part of the suite.

Docstring examples are documentation that users copy; a stale one is a
bug.  This collects doctests from every ``repro`` module explicitly, so
the plain ``pytest tests/`` invocation covers them.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil
import warnings

import pytest

import repro

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


def _module_names():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


def test_walk_covers_service_subpackage():
    """The walker must see the serving tier (a packaging regression —
    e.g. a missing __init__ — would silently drop its doctests)."""
    names = _module_names()
    assert "repro.service" in names
    assert "repro.service.shards" in names
    assert "repro.service.service" in names
    assert "repro.service.httpd" in names


@pytest.mark.parametrize("module_name", _module_names())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
