"""Distribution reconstruction from randomized values (paper §3).

Given ``n`` disclosed values ``w_i = x_i + r_i`` and the known noise
density ``f_Y``, the paper estimates the original density ``f_X`` by
iterating Bayes' rule:

    f_X^{j+1}(a) = (1/n) * sum_i  f_Y(w_i - a) f_X^j(a)
                                  / integral f_Y(w_i - z) f_X^j(z) dz

starting from the uniform density.  The practical algorithm (§3.2)
partitions the domain into ``m`` intervals, approximates values by interval
midpoints, and buckets the ``w_i`` into intervals too, turning each sweep
into an ``O(m^2)`` matrix iteration independent of ``n``.

:class:`BayesReconstructor` implements that partition algorithm with the
paper's two stopping rules: successive-estimate change (default) and a
chi-squared goodness-of-fit test of the observed randomized histogram
against the randomization of the current estimate.  Since the engine
refactor it is a thin single-problem wrapper over
:class:`~repro.core.engine.ReconstructionEngine`, which caches noise
kernels across calls and can solve many problems batched;
:func:`_run_bayes` remains here as the looped reference implementation
the engine's batched sweeps are verified against (bit for bit).
"""

from __future__ import annotations

import numpy as np

# Re-exported for historical importers (EM, joint, categorical, tests):
# the primitives now live in the engine module.
from repro.core.engine import (  # noqa: F401
    _EPS,
    EngineConfig,
    KernelCache,
    ReconstructionEngine,
    ReconstructionResult,
    _chi2_fit,
    _prepare,
    config_property,
)
from repro.core.partition import Partition
from repro.core.randomizers import AdditiveRandomizer
from repro.exceptions import ValidationError


def _run_bayes(
    y_counts: np.ndarray,
    kernel: np.ndarray,
    theta: np.ndarray,
    *,
    max_iterations: int,
    tol: float,
    stopping: str,
):
    """Reference single-problem Bayes sweep loop.

    Returns ``(theta, n_iterations, converged, deltas, chi2_stat,
    chi2_threshold)``.  ``theta`` is the starting estimate and is not
    mutated.

    This is the looped path the batched engine is held bit-identical to
    (see :func:`repro.core.engine._run_bayes_batch`); it also remains the
    sweep loop for the categorical reconstructor, whose kernel is a
    response-channel matrix rather than an additive-noise kernel.
    """
    n = y_counts.sum()
    theta = theta.copy()
    deltas: list = []
    converged = False
    iteration = 0
    chi2_stat, chi2_thresh = float("nan"), float("nan")
    previous_chi2 = float("inf")
    for iteration in range(1, max_iterations + 1):
        mixture = kernel @ theta  # P(Y in I_s) under current estimate
        safe_mixture = np.maximum(mixture, _EPS)
        # Posterior responsibility of x-interval p for y-interval s,
        # weighted by observed counts, averaged over the sample.
        weights = y_counts / n / safe_mixture  # (S,)
        theta_new = theta * (kernel.T @ weights)  # (P,)
        total = theta_new.sum()
        if total <= 0:
            raise ValidationError(
                "reconstruction collapsed to zero mass; the noise kernel "
                "does not cover the observed randomized values"
            )
        theta_new /= total

        delta = float(np.abs(theta_new - theta).sum())
        deltas.append(delta)
        theta = theta_new

        if stopping == "chi2":
            chi2_stat, chi2_thresh = _chi2_fit(y_counts, kernel @ theta * n)
            if np.isfinite(chi2_stat):
                # Stop when the randomized data are statistically
                # consistent with the estimate, OR when further sharpening
                # has stopped improving the fit (the model is binned, so
                # the test may never pass outright; iterating past the
                # plateau only overfits sampling noise).
                passed = chi2_stat <= chi2_thresh
                plateaued = (previous_chi2 - chi2_stat) < 0.01 * chi2_thresh
                if passed or plateaued:
                    converged = True
                    break
                previous_chi2 = chi2_stat
        if delta < tol:
            converged = True
            break

    if stopping != "chi2":
        chi2_stat, chi2_thresh = _chi2_fit(y_counts, kernel @ theta * n)
    return theta, iteration, converged, deltas, chi2_stat, chi2_thresh


class BayesReconstructor:
    """The paper's iterative Bayesian reconstruction (partition form).

    Parameters
    ----------
    max_iterations:
        Hard cap on Bayes sweeps (the paper converges in tens of sweeps).
    tol:
        Stop when the L1 change between successive estimates drops below
        this value (the paper's "estimate stops changing" criterion).
    stopping:
        ``"chi2"`` (default) stops as soon as the observed randomized
        histogram passes a 95 % chi-squared goodness-of-fit test against
        the randomization of the current estimate, or as soon as the
        statistic stops improving by at least 1 % of its threshold per
        sweep (the binned model may never pass the test outright; past
        that plateau, sweeps only overfit) — the paper's statistical
        stopping rule.  ``"delta"`` uses ``tol`` alone.

        The chi-squared rule is not a nicety: deconvolution is ill-posed,
        and iterating to a fixed point overfits sampling noise into a
        spiky estimate (ablation E10 measures a ~4x L1 degradation).  The
        rule stops as soon as the data no longer justify further
        sharpening.
    transition_method:
        ``"density"`` reproduces the paper's midpoint approximation of the
        noise kernel; ``"integrated"`` (default) integrates the noise
        density over each interval, which is strictly more accurate and
        equally fast.
    coverage:
        Noise mass that the expanded bucketing grid must cover (only
        matters for unbounded noise such as Gaussian).  Must be a
        fraction in ``(0, 1]``.
    kernel_cache:
        Optionally share a :class:`~repro.core.engine.KernelCache` with
        other reconstructors; by default each instance owns one, so
        repeated calls on the same partition/randomizer (the Local
        strategy, experiment sweeps) reuse the kernel.

    Attributes
    ----------
    engine:
        The :class:`~repro.core.engine.ReconstructionEngine` doing the
        work; callers with many problems sharing a kernel should use its
        :meth:`~repro.core.engine.ReconstructionEngine.reconstruct_batch`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import BayesReconstructor, Partition, UniformRandomizer
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(0.25, 0.75, size=4000)
    >>> noise = UniformRandomizer(half_width=0.25)
    >>> w = noise.randomize(x, seed=1)
    >>> part = Partition.uniform(0.0, 1.0, 20)
    >>> result = BayesReconstructor().reconstruct(w, part, noise)
    >>> bool(result.converged)
    True
    """

    def __init__(
        self,
        *,
        max_iterations: int = 500,
        tol: float = 1e-3,
        stopping: str = "chi2",
        transition_method: str = "integrated",
        coverage: float = 1.0 - 1e-9,
        kernel_cache: KernelCache = None,
    ) -> None:
        config = EngineConfig(
            max_iterations=max_iterations,
            tol=tol,
            stopping=stopping,
            transition_method=transition_method,
            coverage=coverage,
        )
        self.engine = ReconstructionEngine(config, kernel_cache=kernel_cache)

    max_iterations = config_property("max_iterations")
    tol = config_property("tol")
    stopping = config_property("stopping")
    transition_method = config_property("transition_method")
    coverage = config_property("coverage")

    def reconstruct(
        self,
        randomized_values,
        x_partition: Partition,
        randomizer: AdditiveRandomizer,
    ) -> ReconstructionResult:
        """Estimate the original distribution of the randomized sample.

        Parameters
        ----------
        randomized_values:
            The disclosed values ``x_i + r_i``.
        x_partition:
            Interval grid over the *original* domain on which the estimate
            is expressed.
        randomizer:
            The (public) noise process that produced the values.
        """
        return self.engine.reconstruct(
            randomized_values, x_partition, randomizer, _stacklevel=3
        )

    def reconstruct_batch(self, problems, *, _stacklevel: int = 2) -> list:
        """Reconstruct many ``(values, partition, randomizer)`` problems at once.

        Problems sharing a noise kernel are stacked and solved by one
        batched sweep; see
        :meth:`repro.core.engine.ReconstructionEngine.reconstruct_batch`.
        """
        return self.engine.reconstruct_batch(problems, _stacklevel=_stacklevel + 1)
