"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.partition import Partition
from repro.datasets import quest

# One moderate profile for the whole suite: property tests stay fast but
# still explore; deadline disabled because reconstruction tests legitimately
# take tens of milliseconds.
settings.register_profile(
    "suite",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("suite")


@pytest.fixture
def rng():
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_partition():
    """Ten equal intervals over [0, 1]."""
    return Partition.uniform(0.0, 1.0, 10)


@pytest.fixture(scope="session")
def small_quest_table():
    """A small Fn1-labelled Quest table shared across tests (read-only)."""
    return quest.generate(2_000, function=1, seed=99)


@pytest.fixture(scope="session")
def quest_fn2_split():
    """(train, test) pair for Fn2, sized for quick integration tests."""
    train = quest.generate(4_000, function=2, seed=7)
    test = quest.generate(1_500, function=2, seed=8)
    return train, test
