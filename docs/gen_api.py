#!/usr/bin/env python
"""Generate the markdown API reference from docstrings (stdlib only).

The docs site must build without heavyweight plugin dependencies, so
instead of mkdocstrings this script walks the documented packages with
``inspect``/``pkgutil`` and emits deterministic markdown under
``docs/api/``.  The emitted pages are committed; CI (and
``tests/test_docs.py``) run ``gen_api.py --check`` so a docstring edit
that forgets to regenerate fails fast.

Usage::

    PYTHONPATH=src python docs/gen_api.py            # (re)write docs/api/
    PYTHONPATH=src python docs/gen_api.py --check    # verify in sync
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
API_DIR = DOCS_DIR / "api"

#: documented surfaces: (page filename, root module, page title)
PAGES = (
    ("repro.md", "repro", "`repro` — package root"),
    ("repro-core.md", "repro.core", "`repro.core` — reconstruction core"),
    ("repro-bench.md", "repro.bench", "`repro.bench` — benchmark orchestration"),
    ("repro-service.md", "repro.service", "`repro.service` — aggregation service"),
    ("repro-serialize.md", "repro.serialize", "`repro.serialize` — snapshots"),
    ("repro-analysis.md", "repro.analysis", "`repro.analysis` — static analyzer"),
)

HEADER = (
    "<!-- GENERATED FILE — do not edit by hand.\n"
    "     Regenerate with: PYTHONPATH=src python docs/gen_api.py -->\n\n"
)


def _submodules(root_name: str) -> list:
    """The root module plus its direct submodules, sorted by name."""
    root = importlib.import_module(root_name)
    names = [root_name]
    if hasattr(root, "__path__"):
        for info in pkgutil.iter_modules(root.__path__):
            if not info.name.startswith("_"):
                names.append(f"{root_name}.{info.name}")
    return [importlib.import_module(name) for name in sorted(names)]


def _public_members(module) -> list:
    """(name, object) pairs documented for ``module``, declaration order.

    Classes and functions *defined in* the module (``__all__`` order when
    declared, else source order), underscore names excluded.
    """
    names = getattr(module, "__all__", None)
    if names is None:
        members = [
            (name, obj)
            for name, obj in vars(module).items()
            if not name.startswith("_")
            and (inspect.isclass(obj) or inspect.isfunction(obj))
            and getattr(obj, "__module__", None) == module.__name__
        ]
        return members
    resolved = []
    for name in names:
        obj = getattr(module, name, None)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            resolved.append((name, obj))
    return resolved


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _docstring_block(obj) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return "*(undocumented)*\n"
    # Docstrings are numpy/RST styled; a fenced block preserves their
    # layout (sections, doctests) without fighting markdown rendering.
    return f"```text\n{doc}\n```\n"


def _methods(cls) -> list:
    """Public methods/properties defined by ``cls`` itself, source order."""
    members = []
    for name, obj in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(obj, property):
            members.append((name, obj, "property"))
        elif isinstance(obj, (staticmethod, classmethod)):
            members.append((name, obj.__func__, type(obj).__name__))
        elif inspect.isfunction(obj):
            members.append((name, obj, "method"))
    return members


def _render_class(name: str, cls) -> list:
    lines = [f"### `{name}{_signature(cls)}`\n", _docstring_block(cls)]
    methods = _methods(cls)
    if methods:
        lines.append("")
    for method_name, method, kind in methods:
        if kind == "property":
            lines.append(f"#### `{name}.{method_name}` *(property)*\n")
            doc = inspect.getdoc(method.fget) or inspect.getdoc(method) or ""
            lines.append(f"```text\n{doc}\n```\n" if doc else "*(undocumented)*\n")
        else:
            suffix = " *(classmethod)*" if kind == "classmethod" else (
                " *(staticmethod)*" if kind == "staticmethod" else ""
            )
            lines.append(
                f"#### `{name}.{method_name}{_signature(method)}`{suffix}\n"
            )
            lines.append(_docstring_block(method))
    return lines


def _render_module(module) -> list:
    lines = [f"## Module `{module.__name__}`\n"]
    doc = inspect.getdoc(module)
    if doc:
        lines.append(f"```text\n{doc}\n```\n")
    for name, obj in _public_members(module):
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        if inspect.isclass(obj):
            lines.extend(_render_class(name, obj))
        else:
            lines.append(f"### `{name}{_signature(obj)}`\n")
            lines.append(_docstring_block(obj))
    return lines


def render_page(root_name: str, title: str) -> str:
    lines = [HEADER + f"# {title}\n"]
    for module in _submodules(root_name):
        lines.extend(_render_module(module))
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/api/ matches the current docstrings (exit 1 on drift)",
    )
    args = parser.parse_args(argv)

    rendered = {
        filename: render_page(root, title) for filename, root, title in PAGES
    }
    if args.check:
        stale = []
        for filename, content in rendered.items():
            path = API_DIR / filename
            if not path.is_file() or path.read_text() != content:
                stale.append(str(path))
        expected = set(rendered)
        extras = [
            str(p) for p in sorted(API_DIR.glob("*.md")) if p.name not in expected
        ]
        if stale or extras:
            for path in stale:
                print(f"stale or missing: {path}", file=sys.stderr)
            for path in extras:
                print(f"unexpected page: {path}", file=sys.stderr)
            print(
                "regenerate with: PYTHONPATH=src python docs/gen_api.py",
                file=sys.stderr,
            )
            return 1
        print(f"docs/api in sync ({len(rendered)} pages)")
        return 0

    API_DIR.mkdir(parents=True, exist_ok=True)
    for filename, content in rendered.items():
        (API_DIR / filename).write_text(content)
        print(f"wrote docs/api/{filename}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
