"""Interval-based decision trees (paper §4's classification substrate).

The paper's trees differ from textbook CART in one structural way: every
attribute is discretized into the same interval grid used by distribution
reconstruction, and **candidate split points are the interval boundaries**.
That convention is what lets the same tree builder train on original
values, raw randomized values, and reconstruction-corrected values — the
three take different routes to an interval index per record, then share
the split search.

``Local`` training (re-reconstructing distributions at every tree node) is
supported through the builder's ``node_transformer`` hook, which may remap
a node's records to new intervals before its split is chosen.

The paper does not prune; neither do we.  Growth is bounded by
``max_depth`` / ``min_records_split`` / ``min_gain`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import NotFittedError, ValidationError
from repro.tree.criteria import CRITERIA, _ROW_IMPURITY, split_impurities

#: minimum impurity improvement treated as a real gain (guards float noise)
_GAIN_ATOL = 1e-12


@dataclass
class TreeNode:
    """One node of a fitted decision tree.

    Internal nodes hold ``attribute_index`` and ``threshold`` (records with
    ``value < threshold`` go left); leaves hold neither.  Every node keeps
    its training class counts for diagnostics and majority prediction.
    """

    class_counts: np.ndarray
    depth: int
    attribute_index: int = -1
    threshold: float = float("nan")
    left: "TreeNode | None" = field(default=None, repr=False)
    right: "TreeNode | None" = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.left is None

    @property
    def n_records(self) -> int:
        """Training records that reached this node."""
        return int(self.class_counts.sum())

    @property
    def prediction(self) -> int:
        """Majority class at this node (ties break toward lower labels)."""
        return int(np.argmax(self.class_counts))


class DecisionTreeClassifier:
    """Binary-split decision tree with splits at interval boundaries.

    Parameters
    ----------
    partitions:
        One :class:`~repro.core.partition.Partition` per attribute, fixing
        the candidate split points.
    criterion:
        ``"gini"`` (the paper's choice) or ``"entropy"``.
    max_depth:
        Depth cap (``None`` = unbounded).
    min_records_split:
        Nodes with fewer records become leaves.
    min_gain:
        Minimum impurity decrease for a split to be accepted.
    attribute_names:
        Optional names used by :meth:`export_text`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition
    >>> x = np.linspace(0, 1, 200)[:, None]
    >>> y = (x[:, 0] > 0.5).astype(int)
    >>> tree = DecisionTreeClassifier([Partition.uniform(0, 1, 10)])
    >>> _ = tree.fit(x, y)
    >>> int(tree.predict(np.array([[0.1], [0.9]]))[1])
    1
    """

    def __init__(
        self,
        partitions,
        *,
        criterion: str = "gini",
        max_depth=None,
        min_records_split: int = 2,
        min_gain: float = 0.0,
        attribute_names=None,
    ) -> None:
        self.partitions = list(partitions)
        if not self.partitions:
            raise ValidationError("at least one attribute partition is required")
        for p in self.partitions:
            if not isinstance(p, Partition):
                raise ValidationError("partitions must be Partition instances")
        if criterion not in CRITERIA:
            raise ValidationError(f"criterion must be one of {CRITERIA}")
        if max_depth is not None and max_depth < 0:
            raise ValidationError(f"max_depth must be >= 0, got {max_depth}")
        if min_records_split < 2:
            raise ValidationError(
                f"min_records_split must be >= 2, got {min_records_split}"
            )
        if min_gain < 0:
            raise ValidationError(f"min_gain must be >= 0, got {min_gain}")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_records_split = int(min_records_split)
        self.min_gain = float(min_gain)
        if attribute_names is not None and len(attribute_names) != len(self.partitions):
            raise ValidationError("attribute_names must match partitions in length")
        self.attribute_names = (
            list(attribute_names)
            if attribute_names is not None
            else [f"attr{j}" for j in range(len(self.partitions))]
        )
        self.root_: TreeNode | None = None
        self.n_classes_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def locate(self, values: np.ndarray) -> np.ndarray:
        """Map a raw ``(n, d)`` value matrix to interval indices per attribute."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.partitions):
            raise ValidationError(
                f"values must have shape (n, {len(self.partitions)}), "
                f"got {values.shape}"
            )
        columns = [
            self.partitions[j].locate(values[:, j]) for j in range(values.shape[1])
        ]
        return np.column_stack(columns)

    def fit(self, values, labels) -> "DecisionTreeClassifier":
        """Fit on raw values (located into intervals internally)."""
        values = np.asarray(values, dtype=float)
        return self.fit_intervals(self.locate(values), labels)

    def fit_intervals(
        self,
        interval_matrix,
        labels,
        *,
        raw_values=None,
        node_transformer=None,
    ) -> "DecisionTreeClassifier":
        """Fit on precomputed interval indices.

        Parameters
        ----------
        interval_matrix:
            ``(n, d)`` integer matrix of per-attribute interval indices.
        labels:
            Integer class labels, ``0 .. C-1``.
        raw_values:
            Optional ``(n, d)`` matrix of the *randomized* raw values,
            required when ``node_transformer`` is given.
        node_transformer:
            Optional hook ``f(raw_subset, labels_subset, intervals_subset,
            used_attributes) -> intervals_subset`` invoked at every non-root
            node before its split search — the paper's *Local* training
            algorithm re-reconstructs and re-corrects there.
            ``used_attributes`` is the frozenset of attribute indices
            already split on along the path; re-reconstructing those is
            statistically invalid (their randomized values were truncated
            by the routing itself), so transformers should skip them.
        """
        intervals = np.asarray(interval_matrix, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if intervals.ndim != 2 or intervals.shape[1] != len(self.partitions):
            raise ValidationError(
                f"interval_matrix must have shape (n, {len(self.partitions)}), "
                f"got {intervals.shape}"
            )
        if labels.shape != (intervals.shape[0],):
            raise ValidationError("labels length must match interval_matrix rows")
        if labels.size == 0:
            raise ValidationError("cannot fit on an empty dataset")
        if labels.min() < 0:
            raise ValidationError("labels must be non-negative integers")
        if node_transformer is not None and raw_values is None:
            raise ValidationError("node_transformer requires raw_values")
        raw = None
        if raw_values is not None:
            raw = np.asarray(raw_values, dtype=float)
            if raw.shape != intervals.shape:
                raise ValidationError("raw_values must match interval_matrix shape")

        self.n_classes_ = int(labels.max()) + 1
        self._transformer = node_transformer
        self.root_ = self._build(intervals, labels, raw, depth=0, used=frozenset())
        del self._transformer
        return self

    def _class_counts(self, labels: np.ndarray) -> np.ndarray:
        return np.bincount(labels, minlength=self.n_classes_).astype(float)

    def _best_split(self, intervals: np.ndarray, labels: np.ndarray):
        """Return ``(weighted_impurity, attribute, boundary)`` of the best split."""
        n_classes = self.n_classes_
        best = (np.inf, -1, -1)
        for j, partition in enumerate(self.partitions):
            m = partition.n_intervals
            if m < 2:
                continue
            flat = intervals[:, j] * n_classes + labels
            counts = np.bincount(flat, minlength=m * n_classes).reshape(m, n_classes)
            impurities = split_impurities(counts, self.criterion)
            k = int(np.argmin(impurities))
            if impurities[k] < best[0]:
                best = (float(impurities[k]), j, k)
        return best

    def _build(
        self,
        intervals: np.ndarray,
        labels: np.ndarray,
        raw,
        depth: int,
        used: frozenset,
    ) -> TreeNode:
        if self._transformer is not None and depth > 0:
            intervals = self._transformer(raw, labels, intervals, used)

        counts = self._class_counts(labels)
        node = TreeNode(class_counts=counts, depth=depth)
        if (
            labels.size < self.min_records_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node

        impurity_fn = _ROW_IMPURITY[self.criterion]
        parent_impurity = float(
            impurity_fn(counts[None, :], np.array([counts.sum()]))[0]
        )
        best_impurity, j, k = self._best_split(intervals, labels)
        gain = parent_impurity - best_impurity
        if j < 0 or gain <= max(self.min_gain, _GAIN_ATOL):
            return node

        go_left = intervals[:, j] <= k
        if not go_left.any() or go_left.all():
            return node

        node.attribute_index = j
        node.threshold = float(self.partitions[j].edges[k + 1])
        child_used = used | {j}
        node.left = self._build(
            intervals[go_left], labels[go_left],
            raw[go_left] if raw is not None else None, depth + 1, child_used,
        )
        node.right = self._build(
            intervals[~go_left], labels[~go_left],
            raw[~go_left] if raw is not None else None, depth + 1, child_used,
        )
        return node

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def prune(self, values, labels) -> int:
        """Reduced-error pruning against a held-out set.

        Bottom-up: an internal node collapses to a leaf whenever the leaf
        makes no more validation errors than its subtree on the records
        routed to it.  Nodes that see no validation records collapse too
        (there is no evidence to keep them).

        Returns the number of nodes removed.  In the privacy pipeline the
        "held-out set" is a slice of the same corrected training records —
        the server never holds clean data — which still regularizes the
        record-level correction noise effectively.
        """
        root = self._check_fitted()
        values = np.asarray(values, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if values.ndim != 2 or values.shape[1] != len(self.partitions):
            raise ValidationError(
                f"values must have shape (n, {len(self.partitions)}), "
                f"got {values.shape}"
            )
        if labels.shape != (values.shape[0],):
            raise ValidationError("labels length must match values rows")
        before = self.n_nodes

        def walk(node: TreeNode, idx: np.ndarray) -> int:
            leaf_errors = int((labels[idx] != node.prediction).sum())
            if node.is_leaf:
                return leaf_errors
            mask = values[idx, node.attribute_index] < node.threshold
            subtree_errors = walk(node.left, idx[mask]) + walk(node.right, idx[~mask])
            if leaf_errors <= subtree_errors:
                node.left = None
                node.right = None
                node.attribute_index = -1
                node.threshold = float("nan")
                return leaf_errors
            return subtree_errors

        walk(root, np.arange(values.shape[0]))
        return before - self.n_nodes

    # ------------------------------------------------------------------
    # Prediction and inspection
    # ------------------------------------------------------------------
    def _check_fitted(self) -> TreeNode:
        if self.root_ is None:
            raise NotFittedError("this tree has not been fitted yet")
        return self.root_

    def predict(self, values) -> np.ndarray:
        """Predict class labels for a raw ``(n, d)`` value matrix."""
        root = self._check_fitted()
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.partitions):
            raise ValidationError(
                f"values must have shape (n, {len(self.partitions)}), "
                f"got {values.shape}"
            )
        out = np.empty(values.shape[0], dtype=np.int64)
        stack = [(root, np.arange(values.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            left_mask = values[idx, node.attribute_index] < node.threshold
            stack.append((node.left, idx[left_mask]))
            stack.append((node.right, idx[~left_mask]))
        return out

    def score(self, values, labels) -> float:
        """Classification accuracy on ``(values, labels)``."""
        labels = np.asarray(labels, dtype=np.int64)
        return float((self.predict(values) == labels).mean())

    @property
    def n_nodes(self) -> int:
        """Total node count of the fitted tree."""
        root = self._check_fitted()
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend((node.left, node.right))
        return count

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a lone leaf)."""
        root = self._check_fitted()
        best = 0
        stack = [(root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            if not node.is_leaf:
                stack.extend(((node.left, d + 1), (node.right, d + 1)))
        return best

    def identical_to(self, other: "DecisionTreeClassifier") -> bool:
        """Structural bit-identity with another fitted tree.

        True only when the two trees share the same attribute grids and
        every node matches exactly: same split attribute, bitwise-equal
        threshold, and identical class counts (hence identical leaf
        predictions).  The equality the service-vs-offline training
        parity tests and ``bench_e22`` assert.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.core import Partition
        >>> x = np.array([[0.1], [0.9]])
        >>> y = np.array([0, 1])
        >>> a = DecisionTreeClassifier([Partition.uniform(0, 1, 4)]).fit(x, y)
        >>> b = DecisionTreeClassifier([Partition.uniform(0, 1, 4)]).fit(x, y)
        >>> a.identical_to(b)
        True
        """
        root_a = self._check_fitted()
        if not isinstance(other, DecisionTreeClassifier):
            return False
        root_b = other.root_
        if root_b is None:  # an unfitted tree is identical to nothing
            return False
        if len(self.partitions) != len(other.partitions):
            return False
        if any(
            not np.array_equal(pa.edges, pb.edges)
            for pa, pb in zip(self.partitions, other.partitions)
        ):
            return False
        if self.n_classes_ != other.n_classes_:
            return False
        stack = [(root_a, root_b)]
        while stack:
            node_a, node_b = stack.pop()
            if node_a.is_leaf != node_b.is_leaf:
                return False
            if not np.array_equal(node_a.class_counts, node_b.class_counts):
                return False
            if node_a.is_leaf:
                continue
            if node_a.attribute_index != node_b.attribute_index:
                return False
            if node_a.threshold != node_b.threshold:
                return False
            stack.append((node_a.left, node_b.left))
            stack.append((node_a.right, node_b.right))
        return True

    def export_text(self, *, max_depth: int = 6) -> str:
        """Human-readable rendering of the tree (truncated at ``max_depth``)."""
        root = self._check_fitted()
        lines: list[str] = []

        def walk(node: TreeNode, prefix: str) -> None:
            if node.is_leaf or node.depth >= max_depth:
                counts = node.class_counts.astype(int).tolist()
                lines.append(f"{prefix}predict {node.prediction} {counts}")
                return
            name = self.attribute_names[node.attribute_index]
            lines.append(f"{prefix}{name} < {node.threshold:g}?")
            walk(node.left, prefix + "|  yes: ")
            walk(node.right, prefix + "|  no:  ")

        walk(root, "")
        return "\n".join(lines)
