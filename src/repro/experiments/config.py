"""Configuration objects shared by the experiment runners and benchmarks.

The paper trains on 100 000 records; pure-Python reproduction defaults to
a tenth of that and scales back up through the ``PPDM_BENCH_SCALE``
environment variable (``PPDM_BENCH_SCALE=10`` restores paper scale — see
DESIGN.md §5 on why the shapes are insensitive to this).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

#: environment variable multiplying benchmark dataset sizes
SCALE_ENV_VAR = "PPDM_BENCH_SCALE"

#: programmatic override installed by :func:`scale_override` (None = use env)
_SCALE_OVERRIDE = None


def _check_scale(scale: float, origin: str) -> float:
    try:
        scale = float(scale)
    except (TypeError, ValueError):
        raise ValidationError(f"{origin} must be a number, got {scale!r}") from None
    if scale <= 0:
        raise ValidationError(f"{origin} must be positive, got {scale}")
    return scale


def bench_scale() -> float:
    """Dataset-size multiplier for benchmark workloads.

    A :func:`scale_override` in effect wins; otherwise the value comes
    from :data:`SCALE_ENV_VAR` (default 1).
    """
    if _SCALE_OVERRIDE is not None:
        return _SCALE_OVERRIDE
    raw = os.environ.get(SCALE_ENV_VAR, "1")
    return _check_scale(raw, SCALE_ENV_VAR)


@contextmanager
def scale_override(scale):
    """Temporarily pin :func:`bench_scale`, bypassing the environment.

    The benchmark runner uses this to plumb an explicit ``--scale``
    through to every experiment (including process-pool workers, where
    mutating ``os.environ`` of the parent would not reach).  ``None``
    is a no-op so callers can pass an optional scale straight through.
    """
    global _SCALE_OVERRIDE
    if scale is None:
        yield
        return
    scale = _check_scale(scale, "scale")
    previous = _SCALE_OVERRIDE
    _SCALE_OVERRIDE = scale
    try:
        yield
    finally:
        _SCALE_OVERRIDE = previous


def scaled(n: int) -> int:
    """Apply :func:`bench_scale` to a base dataset size."""
    return max(1, int(round(n * bench_scale())))


@dataclass(frozen=True)
class ReconstructionConfig:
    """Parameters of one distribution-reconstruction experiment (E1–E3).

    Attributes
    ----------
    shape:
        ``"plateau"`` or ``"triangles"`` (see
        :mod:`repro.datasets.shapes`).
    noise / privacy / confidence:
        Randomization kind and privacy level (fraction of the domain span
        at ``confidence``).
    n:
        Sample size.
    n_intervals:
        Reconstruction grid resolution.
    """

    shape: str = "plateau"
    noise: str = "uniform"
    privacy: float = 0.5
    confidence: float = 0.95
    n: int = 10_000
    n_intervals: int = 20
    seed: int = 7


@dataclass(frozen=True)
class ClassificationConfig:
    """Parameters of one classification experiment (E5–E8, E11).

    Attributes
    ----------
    functions:
        Quest classification function ids to evaluate.
    strategies:
        Training strategies to compare (see
        :data:`repro.tree.pipeline.STRATEGIES`).
    noise / privacy / confidence:
        Randomization settings shared by all perturbed strategies.
    n_train / n_test:
        Dataset sizes (the paper: 100 000 / 5 000).
    n_intervals:
        Reconstruction-grid and split-candidate resolution.
    """

    functions: tuple = (1, 2, 3, 4, 5)
    strategies: tuple = ("original", "randomized", "global", "byclass")
    noise: str = "uniform"
    privacy: float = 1.0
    confidence: float = 0.95
    n_train: int = 10_000
    n_test: int = 3_000
    n_intervals: int = 25
    seed: int = 11
    classifier_options: dict = field(default_factory=dict)
