"""Project-invariant static analyzer behind ``ppdm lint``.

This package enforces, at the AST level, the invariants the rest of the
repository only states in prose: lock discipline in the serving tier
(:mod:`~repro.analysis.locks`), seeded-randomness discipline
(:mod:`~repro.analysis.determinism`), a single source of truth for the
binary wire format (:mod:`~repro.analysis.wire_lint`), the
``ReproError`` exception contract (:mod:`~repro.analysis.raising`),
and no-swallowed-failures in the serving tier
(:mod:`~repro.analysis.robustness`).

Checkers register themselves on import via the
:func:`~repro.analysis.registry.checker` decorator — the same
declarative shape as ``@experiment`` in :mod:`repro.bench.registry` —
and the :mod:`~repro.analysis.runner` walks the tree, applies inline
``# ppdm: ignore[RULE]`` suppressions, and ratchets findings against
the committed ``tools/lint_baseline.txt`` (new findings fail; so do
stale baseline entries, so the baseline only shrinks).

Run it as ``ppdm lint`` (or ``python -m repro.cli lint``); see
``docs/static-analysis.md`` for the rule catalog.

Examples
--------
>>> from repro.analysis import REGISTRY
>>> REGISTRY.ids()
('determinism', 'locks', 'raising', 'robustness', 'wire')
>>> REGISTRY.rule("L001").severity
'error'
"""

from __future__ import annotations

from repro.analysis.findings import (
    Finding,
    baseline_key,
    diff_baseline,
    fingerprint,
    format_baseline,
    load_baseline,
)
from repro.analysis.registry import (
    REGISTRY,
    Checker,
    CheckerRegistry,
    RuleSpec,
    checker,
)
from repro.analysis.runner import (
    DEFAULT_BASELINE,
    LintResult,
    lint_project,
    render_json,
    render_text,
    run_checkers,
    write_baseline,
)
from repro.analysis.walker import (
    ParsedModule,
    Project,
    default_project_root,
    parse_source,
    walk_project,
)

__all__ = [
    "Finding",
    "fingerprint",
    "baseline_key",
    "load_baseline",
    "format_baseline",
    "diff_baseline",
    "RuleSpec",
    "Checker",
    "CheckerRegistry",
    "REGISTRY",
    "checker",
    "ParsedModule",
    "Project",
    "parse_source",
    "walk_project",
    "default_project_root",
    "LintResult",
    "run_checkers",
    "lint_project",
    "render_text",
    "render_json",
    "write_baseline",
    "DEFAULT_BASELINE",
]
