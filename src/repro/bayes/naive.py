"""Interval naive Bayes, with and without privacy.

:class:`NaiveBayesClassifier` is the substrate: a discrete naive Bayes
whose per-attribute likelihoods are histograms on the shared interval
grids.  :class:`PrivacyPreservingNaiveBayes` mirrors the decision-tree
pipeline's strategy menu, but its ``byclass`` mode needs *only* the
reconstructed per-class distributions — no record correction — because
naive Bayes never looks at joint structure.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import reconstruct_problems
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.privacy import noise_for_privacy
from repro.core.reconstruction import BayesReconstructor
from repro.datasets.schema import Table
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive

#: strategies supported by the naive-Bayes pipeline
NB_STRATEGIES = ("original", "randomized", "byclass")


class NaiveBayesClassifier:
    """Discrete naive Bayes over per-attribute interval grids.

    Parameters
    ----------
    partitions:
        One :class:`~repro.core.partition.Partition` per attribute.
    laplace:
        Additive (Laplace) smoothing count per interval.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition
    >>> x = np.linspace(0, 1, 100)[:, None]
    >>> y = (x[:, 0] > 0.5).astype(int)
    >>> clf = NaiveBayesClassifier([Partition.uniform(0, 1, 10)]).fit(x, y)
    >>> int(clf.predict(np.array([[0.9]]))[0])
    1
    """

    def __init__(self, partitions, *, laplace: float = 1.0) -> None:
        self.partitions = list(partitions)
        if not self.partitions:
            raise ValidationError("at least one attribute partition is required")
        for p in self.partitions:
            if not isinstance(p, Partition):
                raise ValidationError("partitions must be Partition instances")
        if laplace < 0:
            raise ValidationError(f"laplace must be >= 0, got {laplace}")
        self.laplace = float(laplace)
        self.log_priors_: np.ndarray | None = None
        self.log_likelihoods_: list | None = None  # per attribute: (C, m)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, values, labels) -> "NaiveBayesClassifier":
        """Fit from raw records (located into intervals internally)."""
        values = np.asarray(values, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if values.ndim != 2 or values.shape[1] != len(self.partitions):
            raise ValidationError(
                f"values must have shape (n, {len(self.partitions)}), "
                f"got {values.shape}"
            )
        if labels.shape != (values.shape[0],) or labels.size == 0:
            raise ValidationError("labels must be non-empty and match values rows")
        n_classes = int(labels.max()) + 1
        class_counts = np.bincount(labels, minlength=n_classes).astype(float)

        likelihoods = []
        for j, partition in enumerate(self.partitions):
            m = partition.n_intervals
            idx = partition.locate(values[:, j])
            counts = np.zeros((n_classes, m))
            np.add.at(counts, (labels, idx), 1.0)
            likelihoods.append(counts)
        return self._finalize(class_counts, likelihoods)

    def fit_distributions(self, class_priors, conditionals) -> "NaiveBayesClassifier":
        """Fit from per-class distributions instead of records.

        Parameters
        ----------
        class_priors:
            Class-prior probabilities (length ``C``).
        conditionals:
            Per attribute, a list of ``C``
            :class:`~repro.core.histogram.HistogramDistribution` (or raw
            probability vectors) on that attribute's partition — e.g. the
            output of per-class distribution reconstruction.
        """
        priors = np.asarray(class_priors, dtype=float)
        if priors.ndim != 1 or priors.size < 2:
            raise ValidationError("class_priors must be a 1-D vector of >= 2 classes")
        if len(conditionals) != len(self.partitions):
            raise ValidationError(
                f"conditionals has {len(conditionals)} attributes, expected "
                f"{len(self.partitions)}"
            )
        likelihoods = []
        for j, (partition, per_class) in enumerate(
            zip(self.partitions, conditionals)
        ):
            if len(per_class) != priors.size:
                raise ValidationError(
                    f"attribute {j}: {len(per_class)} class distributions for "
                    f"{priors.size} classes"
                )
            rows = []
            for dist in per_class:
                probs = (
                    dist.probs
                    if isinstance(dist, HistogramDistribution)
                    else np.asarray(dist, dtype=float)
                )
                if probs.size != partition.n_intervals:
                    raise ValidationError(
                        f"attribute {j}: distribution has {probs.size} intervals, "
                        f"partition has {partition.n_intervals}"
                    )
                rows.append(probs)
            likelihoods.append(np.vstack(rows))
        # scale to pseudo-counts so the shared smoothing path applies
        return self._finalize(priors, [lk * 1.0 for lk in likelihoods])

    def _finalize(self, class_weights, likelihood_counts) -> "NaiveBayesClassifier":
        total = class_weights.sum()
        if total <= 0:
            raise ValidationError("class weights must have positive total")
        self.log_priors_ = np.log(np.maximum(class_weights / total, 1e-300))
        self.log_likelihoods_ = []
        for counts in likelihood_counts:
            smoothed = counts + self.laplace / counts.shape[1]
            row_sums = smoothed.sum(axis=1, keepdims=True)
            probs = smoothed / np.maximum(row_sums, 1e-300)
            self.log_likelihoods_.append(np.log(np.maximum(probs, 1e-300)))
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.log_priors_ is None:
            raise NotFittedError("this classifier has not been fitted yet")

    def predict_log_proba(self, values) -> np.ndarray:
        """Unnormalized per-class log scores for each record."""
        self._check_fitted()
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.partitions):
            raise ValidationError(
                f"values must have shape (n, {len(self.partitions)}), "
                f"got {values.shape}"
            )
        scores = np.tile(self.log_priors_, (values.shape[0], 1))
        for j, partition in enumerate(self.partitions):
            idx = partition.locate(values[:, j])
            scores += self.log_likelihoods_[j][:, idx].T
        return scores

    def predict(self, values) -> np.ndarray:
        """Most probable class per record."""
        return np.argmax(self.predict_log_proba(values), axis=1)

    def score(self, values, labels) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels, dtype=np.int64)
        return float((self.predict(values) == labels).mean())


class PrivacyPreservingNaiveBayes:
    """Naive Bayes trained from randomized disclosures.

    Strategies:

    * ``original`` — fit on clean records (no privacy),
    * ``randomized`` — fit directly on noisy records (lower baseline),
    * ``byclass`` — reconstruct each attribute's distribution per class
      and feed the reconstructions straight into
      :meth:`NaiveBayesClassifier.fit_distributions`.  No record
      correction is needed: marginals are all naive Bayes consumes.

    Parameters mirror
    :class:`~repro.tree.pipeline.PrivacyPreservingClassifier` where they
    apply.

    Examples
    --------
    >>> from repro import PrivacyPreservingNaiveBayes, quest
    >>> train = quest.generate(1_500, function=2, seed=0)
    >>> test = quest.generate(500, function=2, seed=1)
    >>> model = PrivacyPreservingNaiveBayes(strategy="byclass", privacy=0.5, seed=2)
    >>> bool(model.fit(train).score(test) > 0.6)
    True
    """

    def __init__(
        self,
        strategy: str = "byclass",
        *,
        noise: str = "uniform",
        privacy: float = 1.0,
        confidence: float = 0.95,
        n_intervals: int = 25,
        laplace: float = 1.0,
        reconstructor=None,
        attributes=None,
        seed=None,
    ) -> None:
        if strategy not in NB_STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {NB_STRATEGIES}, got {strategy!r}"
            )
        check_positive(privacy, "privacy")
        check_fraction(confidence, "confidence")
        self.strategy = strategy
        self.noise = noise
        self.privacy = float(privacy)
        self.confidence = float(confidence)
        self.n_intervals = int(n_intervals)
        self.laplace = float(laplace)
        self.reconstructor = reconstructor or BayesReconstructor()
        self.attributes = tuple(attributes) if attributes is not None else None
        self.seed = seed
        self.model_: NaiveBayesClassifier | None = None
        self.randomizers_: dict = {}
        self.reconstructions_: dict = {}

    def fit(self, table: Table) -> "PrivacyPreservingNaiveBayes":
        """Fit on a labelled table (randomizing internally as needed)."""
        names = tuple(table.attribute_names)
        perturb = set(self.attributes or names)
        partitions = [table.attribute(n).partition(self.n_intervals) for n in names]
        model = NaiveBayesClassifier(partitions, laplace=self.laplace)
        self._names = names
        labels = table.labels

        if self.strategy == "original":
            self.model_ = model.fit(table.matrix(), labels)
            return self

        rng = ensure_rng(self.seed)
        w_columns = {}
        for name in names:
            column = table.column(name)
            if name in perturb:
                attribute = table.attribute(name)
                randomizer = noise_for_privacy(
                    self.noise, self.privacy, attribute.span, self.confidence
                )
                self.randomizers_[name] = randomizer
                w_columns[name] = randomizer.randomize(column, seed=rng)
            else:
                w_columns[name] = column
        w_matrix = np.column_stack([w_columns[n] for n in names])

        if self.strategy == "randomized":
            self.model_ = model.fit(w_matrix, labels)
            return self

        # byclass: reconstruction output feeds the model directly.
        classes = np.unique(labels)
        priors = np.bincount(labels, minlength=int(classes.max()) + 1) / labels.size
        conditionals = []
        for j, name in enumerate(names):
            randomizer = self.randomizers_.get(name)
            if randomizer is None:
                conditionals.append(
                    [
                        HistogramDistribution.from_values(
                            w_matrix[labels == c, j], partitions[j]
                        )
                        for c in classes
                    ]
                )
                continue
            # All classes share this attribute's kernel: one batched call
            # per attribute when the reconstructor supports it.
            results = reconstruct_problems(
                self.reconstructor,
                [
                    (w_matrix[labels == c, j], partitions[j], randomizer)
                    for c in classes
                ],
            )
            self.reconstructions_[name] = {
                int(c): result for c, result in zip(classes, results)
            }
            conditionals.append([result.distribution for result in results])
        self.model_ = model.fit_distributions(priors, conditionals)
        return self

    def predict(self, table: Table) -> np.ndarray:
        """Predict labels for an (unperturbed) test table."""
        if self.model_ is None:
            raise NotFittedError("fit must be called before predict/score")
        matrix = np.column_stack([table.column(n) for n in self._names])
        return self.model_.predict(matrix)

    def score(self, table: Table) -> float:
        """Classification accuracy on the table's labels."""
        return float((self.predict(table) == table.labels).mean())
