"""Lock-discipline race detector (rules L001, L002, L003).

The serving tier's bit-identity contract rests on a handful of locks
(stripe locks, the estimate lock, the training sync lock).  Nothing ties
an attribute to its lock in the source, so a refactor can silently move
a guarded mutation outside its ``with`` block — exactly the class of
race runtime tests rarely catch.  This checker recovers the discipline
statically:

* **L001 — guarded mutation outside its lock.**  An attribute mutated
  under ``with <base>.<lock>:`` anywhere in the library is *guarded by*
  that lock; mutating it elsewhere without holding any of its guards is
  a finding.  ``__init__``/``__post_init__`` bodies are exempt (the
  object is not yet shared), as are mutations of *locally owned*
  objects — values freshly constructed in the same function (e.g. a
  ``restore()`` classmethod populating the service it just built).
* **L002 — blocking call under a lock.**  I/O, ``join()``, ``sleep()``
  and friends while holding a lock stall every thread contending for
  it.  Deliberate cases (a snapshot lock *meant* to serialize writers)
  carry an inline ``# ppdm: ignore[L002]`` with a justification.
* **L003 — lock-order inversion.**  Acquisition order is collected into
  a directed graph — both direct ``with`` nesting and transitive
  acquisitions through method calls (resolved by method name across the
  library) — and any cycle is a potential deadlock.  Re-entrant
  acquisition of a ``threading.RLock`` is not an inversion.

Lock objects are recognized by assignment from ``threading.Lock()`` /
``threading.RLock()`` or by name (``*lock``/``*mutex`` attributes), so
locks passed across modules (``with self.training.sync_lock:``) still
count.  Guards are keyed by attribute name across the whole library
because lock-sharing code (``stripe.counts``) rarely has the owning
class in scope at the use site.

Examples
--------
>>> from repro.analysis.locks import check_locks
>>> from repro.analysis.walker import parse_source, Project
>>> bad = parse_source(
...     "import threading\\n"
...     "class C:\\n"
...     "    def __init__(self):\\n"
...     "        self.lock = threading.Lock()\\n"
...     "        self.n = 0\\n"
...     "    def locked(self):\\n"
...     "        with self.lock:\\n"
...     "            self.n += 1\\n"
...     "    def racy(self):\\n"
...     "        self.n = 5\\n",
...     "src/repro/demo.py", "library")
>>> [f.rule for f in check_locks(Project([bad]))]
['L001']
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import RuleSpec, checker
from repro.analysis.walker import ParsedModule, Project

__all__ = ["check_locks"]

#: method names that mutate their receiver in place
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "fill",
}

#: attribute calls that block (I/O, joins, sleeps) — stalling every
#: thread contending for a held lock
_BLOCKING_METHODS = {
    "join",
    "sleep",
    "serve_forever",
    "handle_request",
    "accept",
    "connect",
    "recv",
    "recvfrom",
    "send",
    "sendall",
    "getresponse",
    "urlopen",
    "save",
    "load",
    "replace",
    "write_text",
    "read_text",
    "write_bytes",
    "read_bytes",
    "flush",
}

#: bare-name calls that block (``from time import sleep`` style)
_BLOCKING_NAMES = {"sleep", "urlopen"}

_INIT_METHODS = {"__init__", "__post_init__", "__new__"}


def _is_lock_name(name: str, known_locks: set) -> bool:
    lowered = name.lower()
    return (
        name in known_locks
        or lowered.endswith("lock")
        or lowered.endswith("mutex")
    )


def _lock_from_context(node: ast.expr, known_locks: set) -> str | None:
    """The lock name acquired by a ``with`` context expression, if any."""
    if isinstance(node, ast.Attribute) and _is_lock_name(node.attr, known_locks):
        return node.attr
    if isinstance(node, ast.Name) and _is_lock_name(node.id, known_locks):
        return node.id
    return None


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_owning_value(node: ast.expr, owned: set) -> bool:
    """Does this expression yield an object the function freshly owns?

    Covers direct construction (``cls(...)``, ``SomeClass(...)``),
    aliases of owned names, and calls/attributes reached *through* an
    owned name (``service._state(name)`` when ``service`` is owned).
    """
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "cls" or func.id.lstrip("_")[:1].isupper()
        if isinstance(func, ast.Attribute):
            if func.attr[:1].isupper():
                return True
            root = _root_name(func)
            return root is not None and root in owned
        return False
    if isinstance(node, ast.Name):
        return node.id in owned
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        root = _root_name(node)
        return root is not None and root in owned
    return False


@dataclass
class _Mutation:
    attr: str
    held: frozenset
    module: ParsedModule
    line: int
    scope: str
    exempt: bool  # __init__ body or locally-owned receiver


@dataclass
class _LockFacts:
    """Everything the three rules need, collected in one AST pass."""

    known_locks: set = field(default_factory=set)
    rlocks: set = field(default_factory=set)
    mutations: list = field(default_factory=list)
    #: (outer lock, inner lock, module, line, scope) — direct nesting
    direct_edges: list = field(default_factory=list)
    #: (held frozenset, callee name, module, line, scope)
    calls_under_lock: list = field(default_factory=list)
    #: function bare name -> set of lock names it acquires directly
    acquires: dict = field(default_factory=dict)
    #: function bare name -> set of function bare names it calls
    callees: dict = field(default_factory=dict)
    #: (lock, callee description, module, line, scope) — blocking calls
    blocking: list = field(default_factory=list)


def _collect_lock_assignments(facts: _LockFacts, module: ParsedModule) -> None:
    """Record attributes assigned from ``threading.Lock()``/``RLock()``."""
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        factory = None
        if isinstance(func, ast.Attribute) and func.attr in ("Lock", "RLock"):
            factory = func.attr
        elif isinstance(func, ast.Name) and func.id in ("Lock", "RLock"):
            factory = func.id
        if factory is None:
            continue
        for target in node.targets:
            name = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name is not None:
                facts.known_locks.add(name)
                if factory == "RLock":
                    facts.rlocks.add(name)


class _FunctionWalker:
    """Walk one function body tracking held locks and owned names."""

    def __init__(
        self, facts: _LockFacts, module: ParsedModule, scope: str, name: str
    ) -> None:
        self.facts = facts
        self.module = module
        self.scope = scope
        self.name = name
        self.in_init = name in _INIT_METHODS
        self.owned: set = set()
        facts.acquires.setdefault(name, set())
        facts.callees.setdefault(name, set())

    # -- events -------------------------------------------------------
    def _record_mutation(self, attr: str, base: ast.expr, held: tuple,
                         line: int) -> None:
        root = _root_name(base)
        exempt = self.in_init or (root is not None and root in self.owned)
        self.facts.mutations.append(
            _Mutation(
                attr=attr,
                held=frozenset(held),
                module=self.module,
                line=line,
                scope=self.scope,
                exempt=exempt,
            )
        )

    def _record_target(self, target: ast.expr, held: tuple, line: int) -> None:
        if isinstance(target, ast.Attribute):
            self._record_mutation(target.attr, target.value, held, line)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._record_mutation(
                    target.value.attr, target.value.value, held, line
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, held, line)

    def _record_call(self, node: ast.Call, held: tuple) -> None:
        func = node.func
        callee = None
        if isinstance(func, ast.Attribute):
            callee = func.attr
            if callee in _MUTATOR_METHODS and isinstance(func.value, ast.Attribute):
                self._record_mutation(
                    func.value.attr, func.value.value, held, node.lineno
                )
        elif isinstance(func, ast.Name):
            callee = func.id
        if callee is None:
            return
        self.facts.callees[self.name].add(callee)
        blocking = (
            isinstance(func, ast.Attribute) and callee in _BLOCKING_METHODS
        ) or (isinstance(func, ast.Name) and callee in _BLOCKING_NAMES)
        if held:
            self.facts.calls_under_lock.append(
                (frozenset(held), callee, self.module, node.lineno, self.scope)
            )
            if blocking:
                self.facts.blocking.append(
                    (held[-1], callee, self.module, node.lineno, self.scope)
                )

    # -- traversal ----------------------------------------------------
    def walk(self, body: list, held: tuple = ()) -> None:
        for stmt in body:
            self._visit(stmt, held)

    def _visit(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            _walk_scope(self.facts, self.module, node, self.scope)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._visit(item.context_expr, inner)
                lock = _lock_from_context(item.context_expr, self.facts.known_locks)
                if lock is not None:
                    for outer in inner:
                        self.facts.direct_edges.append(
                            (outer, lock, self.module, node.lineno, self.scope)
                        )
                    self.facts.acquires[self.name].add(lock)
                    inner = inner + (lock,)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_target(target, held, node.lineno)
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if _is_owning_value(node.value, self.owned):
                    self.owned.add(name)
                else:
                    self.owned.discard(name)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                self._record_target(node.target, held, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_target(target, held, node.lineno)
        elif isinstance(node, ast.Call):
            self._record_call(node, held)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                    ast.With,
                    ast.AsyncWith,
                    ast.Assign,
                    ast.AugAssign,
                    ast.AnnAssign,
                    ast.Delete,
                ),
            ):
                self._visit(child, held)
            elif isinstance(child, ast.Call):
                self._visit(child, held)
            elif isinstance(child, (ast.stmt, ast.expr)):
                self._visit(child, held)


def _walk_scope(
    facts: _LockFacts, module: ParsedModule, node: ast.AST, prefix: str
) -> None:
    """Descend into a class/function, giving functions their own walker."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        scope = f"{prefix}.{node.name}" if prefix != "<module>" else node.name
        walker = _FunctionWalker(facts, module, scope, node.name)
        walker.walk(node.body)
        return
    if isinstance(node, ast.ClassDef):
        scope = f"{prefix}.{node.name}" if prefix != "<module>" else node.name
        for child in node.body:
            _walk_scope(facts, module, child, scope)
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            _walk_scope(facts, module, child, prefix)


def _collect_facts(project: Project) -> _LockFacts:
    facts = _LockFacts()
    modules = [
        m for m in project.iter_modules(("library",)) if m.tree is not None
    ]
    for module in modules:
        _collect_lock_assignments(facts, module)
    for module in modules:
        assert module.tree is not None
        for child in module.tree.body:
            _walk_scope(facts, module, child, "<module>")
    return facts


def _transitive_acquires(facts: _LockFacts) -> dict:
    """Fixpoint closure of lock acquisitions through the call graph.

    Calls are resolved by bare method name, unioned across every
    definition of that name in the library — deliberately conservative:
    a false edge can only make the inversion check stricter.
    """
    closure = {name: set(locks) for name, locks in facts.acquires.items()}
    changed = True
    while changed:
        changed = False
        for name, callees in facts.callees.items():
            bucket = closure.setdefault(name, set())
            before = len(bucket)
            for callee in callees:
                bucket |= closure.get(callee, set())
            if len(bucket) != before:
                changed = True
    return closure


def _ordering_edges(facts: _LockFacts) -> dict:
    """Directed lock-order graph: edge L -> M with a representative site."""
    edges: dict = {}

    def add(outer: str, inner: str, module: ParsedModule, line: int,
            scope: str) -> None:
        if outer == inner:
            if outer in facts.rlocks:
                return  # re-entrant by design
        site = (module.relpath, line, scope)
        current = edges.get((outer, inner))
        if current is None or site < current:
            edges[(outer, inner)] = site

    for outer, inner, module, line, scope in facts.direct_edges:
        add(outer, inner, module, line, scope)
    closure = _transitive_acquires(facts)
    for held, callee, module, line, scope in facts.calls_under_lock:
        for inner in closure.get(callee, ()):
            for outer in held:
                add(outer, inner, module, line, scope)
    return edges


def _find_cycles(edges: dict) -> list:
    """Every distinct lock cycle, as a canonically rotated name tuple."""
    graph: dict = {}
    for outer, inner in edges:
        if outer == inner:
            graph.setdefault(outer, set()).add(inner)
            continue
        graph.setdefault(outer, set()).add(inner)
    cycles = set()

    def dfs(start: str, node: str, path: tuple) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start:
                rotation = min(
                    path[i:] + path[:i] for i in range(len(path))
                )
                cycles.add(rotation)
            elif nxt not in path and nxt > start:
                # only explore nodes after start: each cycle is found
                # exactly once, from its smallest member
                dfs(start, nxt, path + (nxt,))

    for node in sorted(graph):
        if node in graph.get(node, ()):
            cycles.add((node,))
        dfs(node, node, (node,))
    return sorted(cycles)


def _guard_map(facts: _LockFacts) -> tuple:
    """``attr -> set of guarding locks`` plus a representative site each."""
    guards: dict = {}
    sites: dict = {}
    for mutation in facts.mutations:
        if mutation.held:
            guards.setdefault(mutation.attr, set()).update(mutation.held)
            site = (mutation.module.relpath, mutation.line)
            if mutation.attr not in sites or site < sites[mutation.attr]:
                sites[mutation.attr] = site
    return guards, sites


@checker(
    "locks",
    title="Lock-discipline race detector for the serving tier",
    rules=(
        RuleSpec(
            "L001",
            "guarded attribute mutated outside its owning lock",
            rationale=(
                "An attribute consistently mutated under a lock is shared "
                "state; one unguarded write reintroduces exactly the race "
                "the lock exists to prevent — and breaks the service's "
                "bit-identity contract silently."
            ),
        ),
        RuleSpec(
            "L002",
            "blocking call (I/O, join, sleep) while holding a lock",
            severity="warning",
            rationale=(
                "A lock held across I/O or a join stalls every thread "
                "contending for it; the ingest hot path must never wait "
                "on a snapshot write or socket."
            ),
        ),
        RuleSpec(
            "L003",
            "lock-order inversion (potential deadlock cycle)",
            rationale=(
                "Two code paths acquiring the same locks in opposite "
                "orders deadlock under load; the acquisition graph must "
                "stay acyclic."
            ),
        ),
    ),
)
def check_locks(project: Project) -> Iterator[Finding]:
    """Run the three lock-discipline rules over the library modules."""
    facts = _collect_facts(project)
    guards, guard_sites = _guard_map(facts)

    for mutation in facts.mutations:
        guarding = guards.get(mutation.attr)
        if not guarding or mutation.exempt or (mutation.held & guarding):
            continue
        lock_names = ", ".join(sorted(guarding))
        where = "%s:%d" % guard_sites[mutation.attr]
        yield Finding(
            rule="L001",
            path=mutation.module.relpath,
            line=mutation.line,
            scope=mutation.scope,
            message=(
                f"attribute '{mutation.attr}' is guarded by "
                f"'{lock_names}' (see {where}) but mutated here without it"
            ),
            hint=(
                f"wrap the mutation in 'with ...{sorted(guarding)[0]}:' or "
                "suppress deliberately with '# ppdm: ignore[L001]'"
            ),
        )

    for lock, callee, module, line, scope in facts.blocking:
        yield Finding(
            rule="L002",
            path=module.relpath,
            line=line,
            scope=scope,
            severity="warning",
            message=(
                f"'{callee}()' may block while '{lock}' is held; every "
                "thread contending for the lock stalls with it"
            ),
            hint=(
                "move the call outside the 'with' block, or suppress a "
                "deliberate single-writer section with "
                "'# ppdm: ignore[L002]'"
            ),
        )

    edges = _ordering_edges(facts)
    for cycle in _find_cycles(edges):
        pairs = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        site = min(edges[pair] for pair in pairs if pair in edges)
        path, line, scope = site
        order = " -> ".join(cycle + (cycle[0],))
        yield Finding(
            rule="L003",
            path=path,
            line=line,
            scope=scope,
            message=f"lock-order inversion: acquisition cycle {order}",
            hint=(
                "pick one global acquisition order for these locks and "
                "restructure the nesting (or make the re-entrant lock an "
                "RLock)"
            ),
        )
