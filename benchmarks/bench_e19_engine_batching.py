"""E19 — Batched reconstruction engine vs the looped path.

The ByClass algorithm solves one reconstruction problem per attribute ×
class, and Local repeats that at every tree node.  The engine batches the
problems that share a noise kernel, caches kernels across calls, and
memoizes chi-squared critical values.  This benchmark measures the
speedup on a 4-class × 8-attribute workload and asserts the batched path
is **bit-identical** to the looped one: same reconstructions, same
corrected interval assignments, same tree.  The looped arm is
:func:`repro.core.engine.run_bayes_reference` — the public pre-engine
reference path (kernel rebuilt, critical values re-derived, no batching).
"""

from __future__ import annotations

import os
import time

import numpy as np
from _common import experiment, run_experiment

from repro.core.engine import run_bayes_reference
from repro.datasets.schema import Attribute, Table
from repro.experiments.reporting import format_table
from repro.tree.pipeline import PrivacyPreservingClassifier
from repro.utils.rng import ensure_rng

N_CLASSES = 4
N_ATTRIBUTES = 8


def _speedup_floor_scale() -> float:
    """Scales the wall-clock speedup thresholds (bit-identity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy neighbour
    cannot flake the build while a real regression still fails."""
    return float(os.environ.get("PPDM_E19_SPEEDUP_FLOOR", "1.0"))


class LoopedReconstructor:
    """The pre-engine reconstruction path.

    Delegates to :func:`repro.core.engine.run_bayes_reference` — one
    kernel build and one fresh chi-squared table per problem — and
    exposes no ``reconstruct_batch`` attribute, so the pipeline falls
    back to its one-problem-at-a-time loops.
    """

    def reconstruct(self, values, partition, randomizer):
        return run_bayes_reference(values, partition, randomizer)


def _workload(n: int, seed: int):
    """A 4-class table whose 8 attributes have distinct domains and
    class-dependent distributions (so every reconstruction has work to do
    and every attribute needs its own kernel)."""
    rng = ensure_rng(seed)
    labels = rng.integers(0, N_CLASSES, n)
    schema, columns = [], {}
    for j in range(N_ATTRIBUTES):
        low, high = float(j), float(j + 1 + 0.25 * j)
        span = high - low
        center = low + span * (0.2 + 0.18 * labels) + 0.02 * j
        columns[f"a{j}"] = np.clip(rng.normal(center, 0.1 * span), low, high)
        schema.append(Attribute(f"a{j}", low, high))
    return Table(columns, labels, schema)


def _fit_pair(table, strategy: str, *, seed: int, repeats: int = 3, **kwargs):
    """Fit looped and batched classifiers on identical randomized data.

    Each arm is fitted ``repeats`` times and the best wall time kept, so
    scheduler noise cannot fake (or hide) a speedup.
    """
    base = PrivacyPreservingClassifier(
        strategy, noise="gaussian", seed=seed, **kwargs
    )
    base.fit(table)  # also serves as a warm-up run
    randomized, randomizers = base.randomized_table_, base.randomizers_

    looped_seconds = batched_seconds = float("inf")
    looped = batched = None
    for _ in range(repeats):
        looped = PrivacyPreservingClassifier(
            strategy,
            noise="gaussian",
            seed=seed,
            reconstructor=LoopedReconstructor(),
            **kwargs,
        )
        start = time.perf_counter()
        looped.fit(table, randomized_table=randomized, randomizers=randomizers)
        looped_seconds = min(looped_seconds, time.perf_counter() - start)

        batched = PrivacyPreservingClassifier(
            strategy, noise="gaussian", seed=seed, **kwargs
        )
        start = time.perf_counter()
        batched.fit(table, randomized_table=randomized, randomizers=randomizers)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    return looped, batched, looped_seconds, batched_seconds


def _assert_identical(looped, batched) -> None:
    """Bit-identity of the corrected intervals, reconstructions, and tree."""
    assert np.array_equal(looped.intervals_, batched.intervals_)
    assert looped.tree_.export_text() == batched.tree_.export_text()
    for name, looped_result in looped.reconstructions_.items():
        batched_result = batched.reconstructions_[name]
        per_class = (
            [(looped_result[c], batched_result[c]) for c in looped_result]
            if isinstance(looped_result, dict)
            else [(looped_result, batched_result)]
        )
        for a, b in per_class:
            assert np.array_equal(a.distribution.probs, b.distribution.probs)
            assert a.n_iterations == b.n_iterations


def _run_engine_comparison(ctx, *, strategy, n, workload_seed_offset, title, **kwargs):
    """Shared body of the two E19 experiments; returns (metrics, cache, speedup)."""
    table = _workload(ctx.scaled(n), seed=ctx.seed + workload_seed_offset)
    ctx.record(
        strategy=strategy,
        n=ctx.scaled(n),
        n_classes=N_CLASSES,
        n_attributes=N_ATTRIBUTES,
        noise="gaussian",
    )
    looped, batched, looped_s, batched_s = _fit_pair(
        table, strategy, seed=ctx.seed, **kwargs
    )
    _assert_identical(looped, batched)

    cache = batched.reconstructor.engine.kernel_cache
    speedup = looped_s / batched_s
    rows = [
        ("looped", f"{looped_s * 1e3:.1f}", "-", "-"),
        ("batched", f"{batched_s * 1e3:.1f}", str(cache.hits), str(cache.misses)),
    ]
    table_text = format_table(
        ("path", "fit ms", "kernel hits", "kernel misses"),
        rows,
        title=title,
    )
    ctx.record_timing(
        looped_ms=looped_s * 1e3,
        batched_ms=batched_s * 1e3,
        speedup=speedup,
    )
    metrics = {
        "kernel_hits": int(cache.hits),
        "kernel_misses": int(cache.misses),
        "bit_identical": True,
    }
    return metrics, cache, speedup, table_text


@experiment(
    "e19_byclass",
    title="Engine batching vs looped reference, ByClass fit",
    tags=("engine", "smoke"),
    seed=7,
)
def run_e19_byclass(ctx):
    metrics, cache, speedup, table_text = _run_engine_comparison(
        ctx,
        strategy="byclass",
        n=6_000,
        workload_seed_offset=0,
        title="E19: ByClass fit, 4 classes x 8 attributes, gaussian noise",
        # High privacy + a fine grid: the paper's hard regime, where the
        # noise kernel is large and reconstruction does real work.
        max_depth=2,
        n_intervals=80,
        privacy=1.5,
    )
    summary = (
        f"\nspeedup = {speedup:.2f}x"
        f"\nproblems solved = {N_ATTRIBUTES * N_CLASSES}"
        f"\nkernels built (batched) = {cache.misses}"
        f"\nresults bit-identical to the looped path"
    )
    ctx.report(table_text + summary, name="e19_engine_batching_byclass")

    # The engine must at least halve the ByClass fit.
    floor = 2.0 * _speedup_floor_scale()
    assert speedup >= floor, f"expected >= {floor:.2f}x, got {speedup:.2f}x"
    # One kernel per attribute instead of one per attribute x class.
    assert metrics["kernel_misses"] == N_ATTRIBUTES
    assert metrics["kernel_hits"] == N_ATTRIBUTES * (N_CLASSES - 1)
    return metrics


@experiment(
    "e19_local",
    title="Engine batching vs looped reference, Local fit",
    tags=("engine",),
    seed=7,
)
def run_e19_local(ctx):
    metrics, cache, speedup, table_text = _run_engine_comparison(
        ctx,
        strategy="local",
        n=8_000,
        workload_seed_offset=1,
        title="E19: Local fit, 4 classes x 8 attributes, gaussian noise",
        max_depth=4,
    )
    summary = (
        f"\nspeedup = {speedup:.2f}x"
        f"\nkernels built (batched) = {cache.misses} "
        f"(cache absorbed {cache.hits} repeat builds across tree nodes)"
        f"\nresults bit-identical to the looped path"
    )
    ctx.report(table_text + summary, name="e19_engine_batching_local")

    # Local refits at every node; the cache must keep kernels at one per
    # attribute no matter how many nodes re-reconstruct.
    assert metrics["kernel_misses"] == N_ATTRIBUTES
    floor = 1.5 * _speedup_floor_scale()
    assert speedup >= floor, f"expected >= {floor:.2f}x, got {speedup:.2f}x"
    return metrics


def test_e19_byclass_engine_batching(benchmark):
    run_experiment(benchmark, "e19_byclass")


def test_e19_local_engine_batching(benchmark):
    run_experiment(benchmark, "e19_local")
