"""Command-line interface for the PPDM reproduction.

Examples
--------
::

    ppdm reconstruct --shape plateau --noise uniform --privacy 0.5
    ppdm classify --privacy 1.0 --functions 1 2 3
    ppdm sweep --function 3 --levels 0.25 0.5 1.0 2.0
    ppdm privacy --privacy 1.0
    ppdm quest-info
    ppdm bench run --tags smoke --jobs 2
    ppdm bench compare baseline/ candidate/ --fail-on-regression 1.3x
    ppdm serve --spec service.json --snapshot state.json --port 8000
    ppdm ingest --snapshot state.json --attribute age values.txt --estimate
    ppdm ingest --url http://127.0.0.1:8000 --attribute age --class-label 1 values.txt
    ppdm ingest --url http://127.0.0.1:8000 --baskets --mask-p 0.9 baskets.json
    ppdm train --url http://127.0.0.1:8000 --strategy byclass --save model.json
    ppdm mine --url http://127.0.0.1:8000 --min-support 0.2 --min-confidence 0.5

Every subcommand prints the same ASCII tables the benchmark harness
produces, so paper figures can be regenerated without pytest; ``ppdm
bench`` additionally emits the machine-readable ``BENCH_<id>.json``
artifacts (see :mod:`repro.bench`).
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
from pathlib import Path

from repro.exceptions import ReproError

from repro.core.privacy import NOISE_KINDS, noise_for_privacy, privacy_of_randomizer
from repro.datasets import quest
from repro.experiments.classification import (
    run_privacy_sweep,
    run_strategy_comparison,
)
from repro.experiments.config import ClassificationConfig, ReconstructionConfig
from repro.experiments.reconstruction import run_reconstruction
from repro.experiments.reporting import accuracy_matrix, format_table
from repro.tree.pipeline import STRATEGIES


def _add_noise_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--noise", choices=NOISE_KINDS, default="uniform")
    parser.add_argument("--privacy", type=float, default=1.0)
    parser.add_argument("--confidence", type=float, default=0.95)
    parser.add_argument("--seed", type=int, default=7)


def _cmd_reconstruct(args) -> int:
    config = ReconstructionConfig(
        shape=args.shape,
        noise=args.noise,
        privacy=args.privacy,
        confidence=args.confidence,
        n=args.n,
        n_intervals=args.intervals,
        seed=args.seed,
    )
    outcome = run_reconstruction(config)
    print(
        format_table(
            ("midpoint", "true", "original", "randomized", "reconstructed"),
            outcome.rows(),
            title=(
                f"Reconstruction of {args.shape} "
                f"({args.noise} noise, privacy {args.privacy:g})"
            ),
        )
    )
    print(
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}\n"
        f"L1(original, reconstructed) = {outcome.l1_reconstructed:.4f}\n"
        f"iterations = {outcome.n_iterations}"
    )
    return 0


def _cmd_classify(args) -> int:
    config = ClassificationConfig(
        functions=tuple(args.functions),
        strategies=tuple(args.strategies),
        noise=args.noise,
        privacy=args.privacy,
        confidence=args.confidence,
        n_train=args.train,
        n_test=args.test,
        seed=args.seed,
    )
    rows = run_strategy_comparison(config)
    print(
        f"Accuracy (%) at privacy {args.privacy:g} with {args.noise} noise, "
        f"n_train={args.train}:"
    )
    print(accuracy_matrix(rows))
    return 0


def _cmd_sweep(args) -> int:
    config = ClassificationConfig(
        functions=(args.function,),
        strategies=tuple(args.strategies),
        noise=args.noise,
        confidence=args.confidence,
        n_train=args.train,
        n_test=args.test,
        seed=args.seed,
    )
    rows = run_privacy_sweep(config, args.levels)
    table_rows = [
        (f"{row.privacy:g}", row.strategy, f"{100 * row.accuracy:.1f}")
        for row in rows
    ]
    print(
        format_table(
            ("privacy", "strategy", "accuracy %"),
            table_rows,
            title=f"Fn{args.function} accuracy vs privacy ({args.noise} noise)",
        )
    )
    return 0


def _cmd_privacy(args) -> int:
    rows = []
    for name in quest.ATTRIBUTES:
        for kind in NOISE_KINDS:
            randomizer = noise_for_privacy(
                kind, args.privacy, name.span, args.confidence
            )
            parameter = (
                f"alpha={randomizer.half_width:,.0f}"
                if kind == "uniform"
                else f"sigma={randomizer.sigma:,.0f}"
            )
            achieved = privacy_of_randomizer(randomizer, name.span, args.confidence)
            rows.append((name.name, kind, parameter, f"{100 * achieved:.1f}"))
    print(
        format_table(
            ("attribute", "noise", "parameter", "privacy %"),
            rows,
            title=(
                f"Noise parameters for privacy {args.privacy:g} at "
                f"{100 * args.confidence:g}% confidence"
            ),
        )
    )
    return 0


def _cmd_breach(args) -> int:
    import numpy as np

    from repro.core.breach import amplification_factor, breach_analysis
    from repro.core.histogram import HistogramDistribution

    table = quest.generate(args.n, function=1, seed=args.seed)
    attribute = table.attribute(args.attribute)
    partition = attribute.partition(args.intervals)
    prior = HistogramDistribution.from_values(table.column(args.attribute), partition)

    rows = []
    for kind in NOISE_KINDS:
        for level in args.levels:
            randomizer = noise_for_privacy(kind, level, attribute.span)
            analysis = breach_analysis(
                prior, randomizer, rho1=args.rho1, rho2=args.rho2
            )
            gamma = amplification_factor(partition, randomizer)
            rows.append(
                (
                    kind,
                    f"{level:g}",
                    f"{analysis.worst_posterior:.3f}",
                    "yes" if analysis.breached else "no",
                    "inf" if np.isinf(gamma) else f"{gamma:.3g}",
                )
            )
    print(
        format_table(
            ("noise", "privacy", "worst posterior", "breach?", "amplification"),
            rows,
            title=(
                f"Worst-case ({args.rho1:g}, {args.rho2:g}) breach analysis "
                f"on {args.attribute!r}"
            ),
        )
    )
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench import run_experiments
    from repro.bench.registry import default_benchmarks_dir
    from repro.experiments.config import bench_scale

    benchmarks_dir = args.benchmarks_dir or default_benchmarks_dir()
    # The committed benchmarks/results/ tables are reference views at the
    # canonical seeds and scale 1; an off-seed or off-scale run must not
    # silently overwrite them.
    canonical = args.seed is None and args.scale is None and bench_scale() == 1.0
    results_dir = (
        None if args.no_tables or not canonical else benchmarks_dir / "results"
    )
    if not args.no_tables and not canonical:
        print(
            "note: non-canonical seed/scale — skipping benchmarks/results/ "
            "table refresh (JSON artifacts are still written)",
            file=sys.stderr,
        )
    artifacts = run_experiments(
        ids=args.ids,
        tags=args.tags,
        jobs=args.jobs,
        artifacts_dir=args.out,
        benchmarks_dir=benchmarks_dir,
        results_dir=results_dir,
        base_seed=args.seed,
        scale=args.scale,
        verbose=args.verbose,
    )
    rows = [
        (
            a.experiment_id,
            a.status,
            f"{a.timing['wall_seconds']:.3f}",
            f"{a.timing['peak_rss_kb'] / 1024:.0f}",
            str(len(a.metrics)),
        )
        for a in artifacts
    ]
    print(
        format_table(
            ("experiment", "status", "wall s", "peak rss MB", "metrics"),
            rows,
            title=f"bench run: {len(artifacts)} experiment(s), jobs={args.jobs}",
        )
    )
    failed = [a.experiment_id for a in artifacts if a.status != "ok"]
    if failed:
        for artifact in artifacts:
            if artifact.status != "ok" and artifact.error:
                print(f"\n--- {artifact.experiment_id} failed ---", file=sys.stderr)
                print(artifact.error.rstrip(), file=sys.stderr)
        print(f"\nFAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"\nartifacts written to {args.out}/")
    return 0


def _cmd_bench_list(args) -> int:
    from repro.bench import REGISTRY, discover

    discover(args.benchmarks_dir)
    specs = REGISTRY.select(tags=args.tags)
    rows = [
        (spec.id, ",".join(spec.tags), str(spec.seed), spec.title)
        for spec in specs
    ]
    print(
        format_table(
            ("id", "tags", "seed", "title"),
            rows,
            title=f"{len(specs)} registered experiment(s)",
        )
    )
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench import compare_dirs

    report = compare_dirs(
        args.baseline,
        args.candidate,
        wall_factor=args.fail_on_regression,
        metric_rtol=args.metric_rtol,
        wall_action="warn" if args.wall_warn_only else "fail",
    )
    print(report.format())
    return 0 if report.passed else 1


def _estimate_table(name: str, edges, probs, n_seen: int, extra: str = "") -> str:
    """Shared ASCII rendering of one attribute estimate (serve/ingest)."""
    import numpy as np

    edges = np.asarray(edges, dtype=float)
    probs = np.asarray(probs, dtype=float)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    peak = max(float(probs.max()), 1e-9)
    rows = [
        (f"{mid:g}", f"{p:.4f}", "#" * int(round(30 * p / peak)))
        for mid, p in zip(midpoints, probs)
    ]
    return format_table(
        ("midpoint", "probability", ""),
        rows,
        title=f"Estimated distribution of {name!r} ({n_seen} records){extra}",
    )


def _by_class_line(name: str, by_class: dict) -> str:
    """One summary line of per-class record counts (serve/ingest)."""
    parts = []
    for key, count in by_class.items():
        label = "unlabeled" if key == "unlabeled" else f"class {key}"
        parts.append(f"{label}={count}")
    return f"per-class records for {name!r}: " + ", ".join(parts)


def _load_values(path: Path):
    """Read values: a text column, a JSON list, or a JSON column dict.

    Returns a 1-D array for single-column files, or — for a ``.json``
    file holding ``{attribute: [values...]}`` — a dict of equal-length
    columns (a *full-row* batch: what a ``--train`` server's labeled
    ingest requires when it collects several attributes).
    """
    import json

    from repro.utils.validation import check_1d_array

    path = Path(path)
    if not path.is_file():
        raise ReproError(f"values file {str(path)!r} does not exist")
    if path.suffix == ".json":
        try:
            values = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(f"values file {str(path)!r}: {exc}") from exc
        if isinstance(values, dict):
            if not values:
                raise ReproError(
                    f"values file {str(path)!r} holds an empty column dict"
                )
            columns = {
                name: check_1d_array(column, f"values[{name!r}]")
                for name, column in values.items()
            }
            lengths = {column.size for column in columns.values()}
            if len(lengths) > 1:
                raise ReproError(
                    f"values file {str(path)!r}: full-row columns must share "
                    f"one length, got {sorted(lengths)}"
                )
            return columns
    else:
        text = path.read_text().split()
        try:
            values = [float(token) for token in text]
        except ValueError as exc:
            raise ReproError(f"values file {str(path)!r}: {exc}") from exc
    return check_1d_array(values, "values")


def _load_fault_plan(raw):
    """``--fault-plan VALUE``: inline JSON when it starts with ``{``, else a file."""
    import json

    from repro.service.faults import FaultPlan

    if raw is None:
        return None
    text = str(raw).strip()
    if not text.startswith("{"):
        path = Path(text)
        if not path.is_file():
            raise ReproError(f"fault plan file {text!r} does not exist")
        text = path.read_text()
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"--fault-plan is not valid JSON: {exc}") from exc
    return FaultPlan.from_spec(spec)


@contextlib.contextmanager
def _graceful_sigterm():
    """Route SIGTERM through the ``KeyboardInterrupt`` shutdown path.

    ``kill <pid>`` (systemd stop, docker stop, an operator) must run
    the same drain-and-persist sequence as Ctrl-C — the default SIGTERM
    action would kill the coordinator without unwinding ``finally``
    blocks, orphaning worker processes and losing their final drains.
    The previous handler is restored on exit so a ``main()`` called
    from tests leaves no process-global state behind.
    """
    if threading.current_thread() is not threading.main_thread():
        yield  # signal handlers can only be installed in the main thread
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _serve_cluster(args) -> int:
    """``ppdm serve --workers N``: coordinator + worker-process cluster."""
    import json

    from repro.service.cluster import start_cluster

    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.snapshot:
        raise ReproError(
            "--workers starts fresh worker processes and cannot restore "
            "--snapshot state; start the cluster from --spec "
            "(use --snapshot-dir for per-worker crash recovery)"
        )
    if args.max_requests is not None:
        raise ReproError("--max-requests is not supported with --workers")
    if not args.spec:
        raise ReproError("serve --workers needs --spec")
    spec_path = Path(args.spec)
    if not spec_path.is_file():
        raise ReproError(f"spec file {str(spec_path)!r} does not exist")
    try:
        spec = json.loads(spec_path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"spec file {str(spec_path)!r}: {exc}") from exc
    if args.shards is not None:
        # workers keep the spec's (or overridden) intra-process striping;
        # the coordinator's shard layout is one slot per worker
        spec["shards"] = args.shards
    if args.train and int(spec.get("classes", 0) or 0) < 1:
        raise ReproError(
            "--train needs a class-aware service: set \"classes\" in "
            "the spec (or snapshot) to the number of class labels"
        )
    supervisor = start_cluster(
        spec,
        n_workers=args.workers,
        host=args.host,
        port=args.port,
        train=args.train,
        sync_interval=args.sync_interval,
        snapshot_dir=args.snapshot_dir,
        snapshot_interval=args.snapshot_interval,
        faults=_load_fault_plan(args.fault_plan),
        max_inflight=args.max_inflight,
        codec=_CODEC_BY_FLAG[args.codec],
    )
    result = None
    try:
        with _graceful_sigterm():
            supervisor.wait_ready()
            print(
                f"coordinating {args.workers} worker(s) on {supervisor.url} "
                f"(sync interval {args.sync_interval:g}s)"
            )
            for worker, url in enumerate(supervisor.worker_urls()):
                print(f"  worker {worker}: {url}  (POST /ingest here)")
            print(
                "endpoints: /healthz /cluster /attributes /stats /estimate "
                "/partial" + (" /train /model" if args.train else "")
            )
            supervisor.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        result = supervisor.shutdown()
    if result is not None and not result["ok"]:
        # a worker lost its final drain (or its slot was down): surface
        # the loss instead of exiting 0 as if the union were complete
        reasons = "; ".join(
            f"worker {failure['worker']}: {failure['reason']}"
            for failure in result["failures"]
        )
        print(f"error: cluster shutdown was not clean: {reasons}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro.service import (
        AggregationService,
        ServiceHTTPServer,
        TrainingService,
        mining_from_spec,
        service_from_spec,
    )

    if args.workers is not None:
        return _serve_cluster(args)
    if args.codec != "none":
        raise ReproError(
            "--codec compresses worker partial pushes; it needs --workers"
        )
    if args.snapshot_dir is not None:
        raise ReproError("--snapshot-dir is for --workers; use --snapshot")
    if args.snapshot_interval is not None and not args.snapshot:
        raise ReproError("--snapshot-interval needs --snapshot to write to")

    from repro.service.resilience import (
        SnapshotManager,
        previous_snapshot_path,
        recover_service,
    )

    mining = None
    snapshot = Path(args.snapshot) if args.snapshot else None
    if snapshot is not None and (
        snapshot.is_file() or previous_snapshot_path(snapshot).is_file()
    ):
        # newest valid generation wins; corrupt ones are rejected loudly
        # (SnapshotError when none loads -> clean error exit)
        service, recovered_from = recover_service(snapshot)
        if args.shards is not None and args.shards != service.n_shards:
            # partials are merged state, so re-sharding on restart is
            # safe: rebuild the service at the requested width
            payload = service.snapshot()
            payload["n_shards"] = args.shards
            service = AggregationService.restore(payload)
        print(
            f"restored service from snapshot {recovered_from}"
            + (
                "  (note: --spec ignored; the snapshot defines the schema)"
                if args.spec
                else ""
            )
        )
    elif args.spec:
        spec_path = Path(args.spec)
        if not spec_path.is_file():
            raise ReproError(f"spec file {str(spec_path)!r} does not exist")
        try:
            spec = json.loads(spec_path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(f"spec file {str(spec_path)!r}: {exc}") from exc
        if args.shards is not None:
            spec["shards"] = args.shards
        service = service_from_spec(spec)
        if "mining" in spec:
            mining = mining_from_spec(spec["mining"])
    else:
        raise ReproError("serve needs --spec (or an existing --snapshot)")

    training = None
    if args.train:
        if service.classes < 1:
            raise ReproError(
                "--train needs a class-aware service: set \"classes\" in "
                "the spec (or snapshot) to the number of class labels"
            )
        training = TrainingService(service)
    server = ServiceHTTPServer(
        service, args.host, args.port, snapshot_path=snapshot,
        training=training, mining=mining,
        max_inflight=args.max_inflight,
        faults=_load_fault_plan(args.fault_plan),
    )
    records = sum(service.n_seen().values())
    print(
        f"serving {len(service.attributes)} attribute(s) "
        f"({', '.join(service.attributes)}) on {server.url} "
        f"with {service.n_shards} shard(s)"
        + (f" and {service.classes} class(es)" if service.classes else "")
        + f"; {records} record(s) loaded"
    )
    if mining is not None:
        print(
            f"mining enabled: {mining.n_items} item(s), keep_prob="
            f"{mining.response.keep_prob:g}, {len(mining.shards)} shard(s)"
        )
    print(
        "endpoints: /healthz /attributes /stats /estimate /ingest /snapshot"
        + (" /train /model" if training is not None else "")
        + (" /mine /rules" if mining is not None else "")
    )
    manager = None
    if args.snapshot_interval is not None:
        manager = SnapshotManager(server.persist, args.snapshot_interval)
        manager.start()
        print(f"auto-snapshot every {args.snapshot_interval:g}s")
    try:
        with _graceful_sigterm():
            server.serve_forever(max_requests=args.max_requests)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.begin_drain()
        if manager is not None:
            manager.stop(final=False)  # the exit-time persist follows
        if snapshot is not None:
            # through the server's snapshot lock, so an in-flight
            # POST /snapshot cannot interleave with the exit-time save
            server.persist()
            print(f"snapshot persisted to {snapshot}")
    return 0


class _KeepAliveClient:
    """One persistent HTTP connection to a running aggregation server.

    ``ppdm ingest`` used to open a fresh connection per request; a bulk
    run (``--repeat``) now streams every batch over one keep-alive
    socket (the server speaks HTTP/1.1).  A dropped connection — server
    restart, idle timeout — is transparently re-dialed once, but only
    when that cannot double-count: GETs always, POSTs only if the
    request was never fully sent (``POST /ingest`` is not idempotent;
    once the body is on the wire the server may have absorbed it, so a
    lost *response* surfaces as an error instead of a silent re-send).

    A 429 (admission control) or 503 (draining/fault) response that
    carries ``Retry-After`` is different: the server's contract is that
    such a response absorbed *nothing* from the body, so the client
    honors the header — sleep, then re-send the identical request, up
    to a bounded number of waits — and no admitted batch is ever
    dropped or double-counted.  A 503 *without* ``Retry-After`` (e.g. a
    cluster /train that needs an unreachable worker) still fails fast.
    """

    def __init__(self, base_url: str) -> None:
        import http.client
        from urllib.parse import urlsplit

        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme == "http":
            conn_cls, default_port = http.client.HTTPConnection, 80
        elif parts.scheme == "https":
            conn_cls, default_port = http.client.HTTPSConnection, 443
        else:
            raise ReproError(
                f"unsupported URL scheme {parts.scheme!r} (http or https)"
            )
        # keep any path prefix (server behind a reverse proxy)
        self._prefix = parts.path.rstrip("/")
        self._conn = conn_cls(
            parts.hostname or "127.0.0.1", parts.port or default_port,
            timeout=60,
        )

    #: bounded Retry-After waits per request (overload must end sometime)
    MAX_OVERLOAD_WAITS = 8

    def request(
        self, method: str, path: str, body: bytes = None,
        content_type: str = "application/json",
        content_encoding: str | None = None,
    ) -> dict:
        import http.client
        import json
        import time

        headers = {"Content-Type": content_type} if body is not None else {}
        if content_encoding is not None:
            headers["Content-Encoding"] = content_encoding
        path = self._prefix + path
        overload_waits = 0
        while True:
            for attempt in (1, 2):
                sent = False
                try:
                    self._conn.request(
                        method, path, body=body, headers=headers
                    )
                    sent = True
                    response = self._conn.getresponse()
                    raw = response.read()
                    status = response.status
                    retry_after = response.getheader("Retry-After")
                    break
                except (http.client.HTTPException, ConnectionError, OSError) as exc:
                    self._conn.close()  # drop the stale socket
                    # redial once — but never re-send a request the server
                    # may already have processed (a non-GET that failed
                    # after the body went out): /ingest is not idempotent
                    if attempt == 2 or (sent and method != "GET"):
                        raise ReproError(
                            f"server request {path} failed: {exc}"
                        ) from exc
            if (
                status in (429, 503)
                and retry_after is not None
                and overload_waits < self.MAX_OVERLOAD_WAITS
            ):
                # Retry-After is the server's promise that nothing of
                # this body was absorbed: waiting and re-sending the
                # identical request cannot double-count
                overload_waits += 1
                try:
                    delay = float(retry_after)
                except ValueError:
                    delay = 1.0
                time.sleep(min(max(delay, 0.0), 30.0))
                continue
            break
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {}
        if status >= 400:
            detail = payload.get("error") if isinstance(payload, dict) else None
            raise ReproError(
                f"server request {path} failed: {detail or f'HTTP {status}'}"
            )
        return payload

    def get(self, path: str) -> dict:
        return self.request("GET", path)

    def post(self, path: str, body: bytes,
             content_type: str = "application/json",
             content_encoding: str | None = None) -> dict:
        return self.request("POST", path, body, content_type, content_encoding)

    def close(self) -> None:
        self._conn.close()


#: ``--codec`` flag values -> wire codec tokens ("none" is HTTP identity)
_CODEC_BY_FLAG = {"none": "identity", "zlib": "zlib", "zstd": "zstd"}


def _compressed_for_flag(body: bytes, flag: str) -> tuple:
    """Compress a pre-encoded body per ``--codec``; return ``(body, encoding)``.

    ``encoding`` is the ``Content-Encoding`` token to send, or ``None``
    for ``--codec none`` (identity bodies stay unlabeled, byte-identical
    to every release before the codec flag existed).
    """
    from repro.service.wire import compress_payload

    codec = _CODEC_BY_FLAG[flag]
    if codec == "identity":
        return body, None
    return compress_payload(body, codec), codec


def _post_repeated(
    base: str, client: _KeepAliveClient, body: bytes, content_type: str,
    repeat: int, concurrency: int, content_encoding: str | None = None,
) -> tuple:
    """POST one pre-encoded ``/ingest`` body ``repeat`` times.

    The load-generation core shared by every ``ppdm ingest --url`` wire:
    the body is encoded once by the caller (and, with
    ``content_encoding``, already compressed once) and re-sent as-is,
    so a ``--repeat`` run measures wire + server cost, not client
    re-serialization.  Returns ``(replies, elapsed_seconds)``.
    """
    import time
    from concurrent.futures import ThreadPoolExecutor

    def drive(client_, n_requests):
        return [
            client_.post("/ingest", body, content_type, content_encoding)
            for _ in range(n_requests)
        ]

    n_workers = min(concurrency, repeat)
    start = time.perf_counter()
    if n_workers == 1:
        replies = drive(client, repeat)
    else:
        shares = [
            repeat // n_workers + (1 if w < repeat % n_workers else 0)
            for w in range(n_workers)
        ]

        def worker(share):
            extra = _KeepAliveClient(base)
            try:
                return drive(extra, share)
            finally:
                extra.close()

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            replies = [r for rs in pool.map(worker, shares) for r in rs]
    return replies, time.perf_counter() - start


def _ingest_baskets(args) -> int:
    """``ppdm ingest --baskets``: MASK-randomize locally, POST v4 frames."""
    import json

    from repro.mining import RandomizedResponse, transactions_to_matrix
    from repro.service.wire import CONTENT_TYPE_BASKETS, encode_baskets
    from repro.utils.rng import ensure_rng

    offending = [
        flag
        for flag, on in (
            ("--attribute", args.attribute is not None),
            ("--class-label", args.class_label is not None),
            ("--estimate", args.estimate),
            ("--snapshot", args.snapshot is not None),
            ("--wire columns", args.wire == "columns"),
        )
        if on
    ]
    if offending:
        raise ReproError(
            f"{', '.join(offending)} cannot be combined with --baskets: "
            "basket ingestion speaks the v4 basket wire to a running "
            "server's mining tier, not the attribute shards"
        )
    if args.url is None:
        raise ReproError(
            "--baskets needs --url (a server started with a \"mining\" "
            "spec section); basket counters are not snapshot state"
        )
    if args.concurrency < 1 or args.repeat < 1:
        raise ReproError("--concurrency and --repeat must be >= 1")
    path = Path(args.values)
    if not path.is_file():
        raise ReproError(f"values file {str(path)!r} does not exist")
    try:
        transactions = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"values file {str(path)!r}: {exc}") from exc
    if not isinstance(transactions, list):
        raise ReproError(
            f"values file {str(path)!r} must hold a JSON list of "
            "transactions (each a list of item ids)"
        )

    base = args.url.rstrip("/")
    client = _KeepAliveClient(base)
    try:
        mining = client.get("/stats").get("mining")
        if mining is None:
            raise ReproError(
                "the server was started without mining; add a \"mining\" "
                "section to the serve spec"
            )
        n_items = int(mining["n_items"])
        keep_prob = float(mining["keep_prob"])
        if args.mask_p is not None and abs(args.mask_p - keep_prob) > 1e-12:
            raise ReproError(
                f"--mask-p {args.mask_p:g} does not match the server's "
                f"keep_prob {keep_prob:g}; the server inverts the MASK "
                "channel it was configured with"
            )
        matrix = transactions_to_matrix(transactions, n_items)
        if args.already_randomized:
            disclosed = matrix
        else:
            response = RandomizedResponse(keep_prob=keep_prob)
            disclosed = response.randomize(matrix, seed=ensure_rng(args.seed))
        body = encode_baskets(disclosed, shard=args.shard)
        body, content_encoding = _compressed_for_flag(body, args.codec)
        replies, elapsed = _post_repeated(
            base, client, body, CONTENT_TYPE_BASKETS,
            args.repeat, args.concurrency, content_encoding,
        )
        ingested = sum(reply["ingested"] for reply in replies)
        baskets = max(reply["baskets"] for reply in replies)
        print(
            f"ingested {ingested} randomized basket(s) over {n_items} "
            f"item(s) in {len(replies)} request(s); server now holds "
            f"{baskets} total"
        )
        if args.repeat > 1:
            rate = ingested / max(elapsed, 1e-9)
            print(
                f"load run: {args.concurrency} connection(s), "
                f"{elapsed:.3f} s, {rate:,.0f} baskets/s"
            )
    finally:
        client.close()
    return 0


def _cmd_ingest(args) -> int:
    import json

    from repro.utils.rng import ensure_rng

    if args.mask_p is not None and not args.baskets:
        raise ReproError("--mask-p only applies to --baskets ingestion")
    if args.baskets:
        return _ingest_baskets(args)
    if (args.url is None) == (args.snapshot is None):
        raise ReproError("ingest needs exactly one of --url or --snapshot")
    if args.url is None and (
        args.wire != "json"
        or args.codec != "none"
        or args.concurrency != 1
        or args.repeat != 1
    ):
        raise ReproError(
            "--wire/--codec/--concurrency/--repeat generate load against a "
            "running server; they need --url"
        )
    if args.concurrency < 1 or args.repeat < 1:
        raise ReproError("--concurrency and --repeat must be >= 1")
    loaded = _load_values(args.values)
    if isinstance(loaded, dict):
        columns = loaded
        if args.attribute is not None and args.attribute not in columns:
            raise ReproError(
                f"--attribute {args.attribute!r} is not a column of the "
                f"values file ({', '.join(columns)})"
            )
    else:
        if args.attribute is None:
            raise ReproError(
                "--attribute is required for single-column values files "
                "(full-row JSON column dicts name their own attributes)"
            )
        columns = {args.attribute: loaded}
    if args.estimate and args.attribute is None:
        raise ReproError("--estimate needs --attribute (which one to display)")
    n_rows = next(iter(columns.values())).size
    classes = None
    if args.class_label is not None:
        classes = [args.class_label] * n_rows

    if args.snapshot is not None:
        from repro.service import AggregationService

        snapshot = Path(args.snapshot)
        if not snapshot.is_file():
            raise ReproError(
                f"snapshot {str(snapshot)!r} does not exist; start it with "
                "'ppdm serve --spec ... --snapshot ...' or create it from a "
                "running server's POST /snapshot"
            )
        service = AggregationService.load(snapshot)
        rng = ensure_rng(args.seed)
        batch = {}
        for name, column in columns.items():
            try:
                spec = service.spec(name)
            except ReproError:
                raise ReproError(
                    f"unknown attribute {name!r}; the service collects "
                    f"{', '.join(service.attributes)}"
                ) from None
            batch[name] = (
                column
                if args.already_randomized
                else spec.randomizer.randomize(column, seed=rng)
            )
        ingested = service.ingest(batch, shard=args.shard, classes=classes)
        service.save(snapshot)
        if len(batch) == 1:
            total = service.n_seen(args.attribute or next(iter(batch)))
            name = args.attribute or next(iter(batch))
            print(f"ingested {ingested} record(s); {name!r} now holds {total}")
        else:
            print(
                f"ingested {ingested} record(s) across {len(batch)} "
                f"attribute(s) ({n_rows} full row(s))"
            )
        if service.classes:
            for name in batch:
                print(_by_class_line(name, service.n_seen_by_class(name)))
        if args.estimate:
            spec = service.spec(args.attribute)
            result = service.estimate(args.attribute)
            service.save(snapshot)  # persist the refreshed warm start
            print(
                _estimate_table(
                    args.attribute,
                    spec.x_partition.edges,
                    result.distribution.probs,
                    service.n_seen(args.attribute),
                    extra=f", {result.n_iterations} sweep(s)",
                )
            )
        return 0

    # --url: act as a randomizing client pool against a running server,
    # over persistent keep-alive connections (one per worker)
    from repro.core.privacy import noise_for_privacy
    from repro.service.wire import CONTENT_TYPE_COLUMNS, encode_columns

    base = args.url.rstrip("/")
    client = _KeepAliveClient(base)
    try:
        if args.already_randomized:
            batch = columns
        else:
            schema = {a["name"]: a for a in client.get("/attributes")["attributes"]}
            for name in columns:
                if name not in schema:
                    raise ReproError(
                        f"unknown attribute {name!r}; the server collects "
                        f"{', '.join(schema)}"
                    )
            rng = ensure_rng(args.seed)
            batch = {}
            for name, column in columns.items():
                attr = schema[name]
                randomizer = noise_for_privacy(
                    attr["noise"], attr["privacy"], attr["high"] - attr["low"]
                )
                batch[name] = randomizer.randomize(column, seed=rng)

        # the body is encoded once and reused by every request, so the
        # run measures wire + server cost, not client re-serialization
        if args.wire == "columns":
            body = encode_columns(batch, shard=args.shard, classes=classes)
            content_type = CONTENT_TYPE_COLUMNS
        else:
            payload = {
                "batch": {
                    name: column.tolist() for name, column in batch.items()
                }
            }
            if args.shard is not None:
                payload["shard"] = args.shard
            if classes is not None:
                payload["classes"] = classes
            body = json.dumps(payload).encode()
            content_type = "application/json"

        body, content_encoding = _compressed_for_flag(body, args.codec)
        replies, elapsed = _post_repeated(
            base, client, body, content_type, args.repeat, args.concurrency,
            content_encoding,
        )

        ingested = sum(reply["ingested"] for reply in replies)
        records = max(reply["records"] for reply in replies)
        print(
            f"ingested {ingested} record(s) in {len(replies)} request(s) "
            f"({args.wire} wire); server now holds {records} total"
        )
        if args.repeat > 1:
            rate = ingested / max(elapsed, 1e-9)
            print(
                f"load run: {args.concurrency} connection(s), "
                f"{elapsed:.3f} s, {rate:,.0f} records/s"
            )
        if classes is not None:
            # only labeled runs need the per-class summary (and the
            # /stats round-trip it costs)
            stats = client.get("/stats")
            for name in batch:
                by_class = stats.get("records_by_class", {}).get(name)
                if by_class:
                    print(_by_class_line(name, by_class))
        if args.estimate:
            from urllib.parse import quote

            estimate = client.get(f"/estimate?attribute={quote(args.attribute)}")
            print(
                _estimate_table(
                    args.attribute,
                    estimate["edges"],
                    estimate["probs"],
                    estimate["n_seen"],
                    extra=f", {estimate['n_iterations']} sweep(s)",
                )
            )
    finally:
        client.close()
    return 0


def _cmd_train(args) -> int:
    import json

    from repro import serialize
    from repro.service.training import TRAINING_STRATEGIES

    if args.strategy not in TRAINING_STRATEGIES:
        raise ReproError(
            f"--strategy must be one of {TRAINING_STRATEGIES}, "
            f"got {args.strategy!r}"
        )
    client = _KeepAliveClient(args.url.rstrip("/"))
    try:
        summary = client.post(
            "/train", json.dumps({"strategy": args.strategy}).encode()
        )
        print(
            f"trained {summary['strategy']} tree on {summary['n_train']} "
            f"labeled record(s): {summary['n_nodes']} node(s), depth "
            f"{summary['depth']}, {summary['fit_seconds']:.3f} s"
        )
        if args.save or args.show_tree:
            # the serialized tree can be large; only fetch when used
            payload = client.get(f"/model?strategy={args.strategy}")
            if args.save:
                path = Path(args.save)
                path.write_text(json.dumps(payload))
                print(f"model saved to {path}")
            if args.show_tree:
                model = serialize.from_jsonable(payload)
                print(model.tree.export_text())
    finally:
        client.close()
    return 0


def _cmd_mine(args) -> int:
    import json

    from repro import serialize

    client = _KeepAliveClient(args.url.rstrip("/"))
    try:
        summary = client.post(
            "/mine",
            json.dumps({
                "min_support": args.min_support,
                "min_confidence": args.min_confidence,
            }).encode(),
        )
        print(
            f"mined {summary['n_itemsets']} frequent itemset(s) and "
            f"{summary['n_rules']} rule(s) from {summary['n_baskets']} "
            f"randomized basket(s) in {summary['mine_seconds']:.3f} s "
            f"(support >= {summary['min_support']:g}, "
            f"confidence >= {summary['min_confidence']:g})"
        )
        if args.save or args.show_rules:
            # the serialized rule set can be large; only fetch when used
            payload = client.get("/rules")
            if args.save:
                path = Path(args.save)
                path.write_text(json.dumps(payload))
                print(f"rules saved to {path}")
            if args.show_rules:
                result = serialize.from_jsonable(payload)
                rows = [
                    (
                        "{%s}" % ", ".join(map(str, sorted(rule.antecedent))),
                        "{%s}" % ", ".join(map(str, sorted(rule.consequent))),
                        f"{rule.support:.4f}",
                        f"{rule.confidence:.4f}",
                        f"{rule.lift:.3f}",
                    )
                    for rule in result.rules
                ]
                print(
                    format_table(
                        ("antecedent", "consequent", "support",
                         "confidence", "lift"),
                        rows,
                        title=(
                            f"{len(rows)} association rule(s) over "
                            f"{result.n_baskets} basket(s)"
                        ),
                    )
                )
    finally:
        client.close()
    return 0


def _cmd_quest_info(args) -> int:
    rows = [
        (
            a.name,
            f"{a.low:g}",
            f"{a.high:g}",
            "discrete" if a.discrete else "continuous",
        )
        for a in quest.ATTRIBUTES
    ]
    print(format_table(("attribute", "low", "high", "kind"), rows,
                       title="Quest attributes"))
    table = quest.generate(args.n, function=args.function, seed=args.seed)
    frac = float(table.labels.mean())
    print(f"\nFn{args.function}: Group A fraction on {args.n} records = {frac:.3f}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        DEFAULT_BASELINE,
        REGISTRY,
        lint_project,
        render_json,
        render_text,
        walk_project,
        write_baseline,
    )
    from repro.analysis.walker import default_project_root
    from repro.exceptions import AnalysisError

    if args.list_rules:
        for spec in REGISTRY.checkers():
            print(f"{spec.id}: {spec.title}")
            for rule in spec.rules:
                print(f"  {rule.id} [{rule.severity}] {rule.summary}")
        return 0
    if args.write_baseline and args.rule:
        raise AnalysisError(
            "--write-baseline cannot be combined with --rule: rewriting "
            "from a rule subset would drop accepted baseline entries for "
            "every unselected rule"
        )
    root = Path(args.root) if args.root is not None else default_project_root()
    baseline = (
        Path(args.baseline) if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    project = walk_project(root)
    result = lint_project(
        project=project, rules=args.rule or None, baseline=baseline
    )
    if args.write_baseline:
        write_baseline(result, baseline)
        print(
            f"baseline written to {baseline} "
            f"({len(result.findings)} finding(s) accepted)"
        )
        return 0
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="ppdm",
        description="Reproduction of 'Privacy-Preserving Data Mining' (SIGMOD 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reconstruct", help="distribution reconstruction demo")
    p.add_argument("--shape", choices=("plateau", "triangles"), default="plateau")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--intervals", type=int, default=20)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_reconstruct)

    p = sub.add_parser("classify", help="strategy comparison on Quest functions")
    p.add_argument("--functions", type=int, nargs="+", default=[1, 2, 3, 4, 5])
    p.add_argument(
        "--strategies", nargs="+", choices=STRATEGIES,
        default=["original", "randomized", "global", "byclass"],
    )
    p.add_argument("--train", type=int, default=10_000)
    p.add_argument("--test", type=int, default=3_000)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("sweep", help="accuracy vs privacy sweep")
    p.add_argument("--function", type=int, default=3)
    p.add_argument("--levels", type=float, nargs="+", default=[0.25, 0.5, 1.0, 2.0])
    p.add_argument(
        "--strategies", nargs="+", choices=STRATEGIES,
        default=["randomized", "byclass"],
    )
    p.add_argument("--train", type=int, default=10_000)
    p.add_argument("--test", type=int, default=3_000)
    _add_noise_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("privacy", help="noise parameters for a privacy target")
    p.add_argument("--privacy", type=float, default=1.0)
    p.add_argument("--confidence", type=float, default=0.95)
    p.set_defaults(func=_cmd_privacy)

    p = sub.add_parser("breach", help="worst-case privacy-breach analysis")
    p.add_argument("--attribute", default="age")
    p.add_argument("--levels", type=float, nargs="+", default=[0.25, 1.0])
    p.add_argument("--rho1", type=float, default=0.06)
    p.add_argument("--rho2", type=float, default=0.5)
    p.add_argument("--intervals", type=int, default=24)
    p.add_argument("--n", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_breach)

    p = sub.add_parser(
        "serve", help="run the sharded aggregation service over HTTP"
    )
    p.add_argument(
        "--spec", type=Path, default=None,
        help="JSON deployment spec (attributes, domains, privacy targets)",
    )
    p.add_argument(
        "--snapshot", type=Path, default=None,
        help="snapshot file: restored at startup if present, persisted on "
        "exit and on POST /snapshot",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000, help="0 picks a free port")
    p.add_argument(
        "--shards", type=int, default=None,
        help="override the spec's ingestion shard count",
    )
    p.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after N connections (each keep-alive connection may "
        "carry many requests; smoke tests; default: run until ^C)",
    )
    p.add_argument(
        "--train", action="store_true",
        help="enable POST /train and GET /model (needs a class-aware "
        'spec: "classes" >= 1)',
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="spawn N worker processes and serve as their coordinator: "
        "workers ingest on their own ports and ship merged partials "
        "upstream; incompatible with --snapshot and --max-requests",
    )
    p.add_argument(
        "--sync-interval", type=float, default=5.0,
        help="seconds between worker partial pushes (--workers only); "
        "/estimate and /train also pull on demand",
    )
    p.add_argument(
        "--snapshot-interval", type=float, default=None,
        help="auto-snapshot period in seconds (atomic write, one rotated "
        "generation kept); needs --snapshot, or --snapshot-dir with "
        "--workers",
    )
    p.add_argument(
        "--snapshot-dir", type=Path, default=None,
        help="--workers only: directory of per-worker snapshot files "
        "(worker-<i>.json); a supervised restart recovers the worker's "
        "cumulative state instead of resetting its slot",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None,
        help="admission control: bound on concurrently-processing POST "
        "/ingest bodies; past it the server sheds load with 429 + "
        "Retry-After (nothing absorbed; clients re-send)",
    )
    p.add_argument(
        "--fault-plan", default=None,
        help="seeded chaos: a fault-plan spec as inline JSON or a file "
        "path (also honored from PPDM_FAULT_PLAN; see "
        "repro.service.faults)",
    )
    p.add_argument(
        "--codec", choices=("none", "zlib", "zstd"), default="none",
        help="--workers only: compress worker partial pushes to the "
        "coordinator and label them with Content-Encoding (zstd needs "
        "the zstandard package)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "ingest", help="randomize values locally and ingest them"
    )
    p.add_argument(
        "values", type=Path,
        help="values file: a text column, a JSON list, or a JSON "
        '{"attribute": [values...]} dict of full rows (what a --train '
        "server's labeled ingest requires across several attributes)",
    )
    p.add_argument(
        "--attribute", default=None,
        help="attribute to ingest into (required for single-column files; "
        "full-row JSON dicts name their own attributes)",
    )
    p.add_argument(
        "--url", default=None, help="running server, e.g. http://127.0.0.1:8000"
    )
    p.add_argument(
        "--snapshot", type=Path, default=None,
        help="offline mode: ingest into (and persist) a snapshot file",
    )
    p.add_argument(
        "--already-randomized", action="store_true",
        help="values are disclosures already; skip local randomization",
    )
    p.add_argument("--seed", type=int, default=None, help="randomization seed")
    p.add_argument(
        "--shard", type=int, default=None,
        help="pin the batch to one ingestion shard",
    )
    p.add_argument(
        "--class-label", type=int, default=None,
        help="class label attached to every record of the batch "
        "(class-aware services; feeds the per-class shard stripes)",
    )
    p.add_argument(
        "--wire", choices=("json", "columns"), default="json",
        help="ingest wire format (--url mode): curl-able JSON or binary "
        "columnar frames (application/x-ppdm-columns)",
    )
    p.add_argument(
        "--codec", choices=("none", "zlib", "zstd"), default="none",
        help="compress the request body and label it with Content-Encoding "
        "(--url mode; zstd needs the zstandard package on both ends)",
    )
    p.add_argument(
        "--concurrency", type=int, default=1,
        help="parallel persistent connections (--url mode load generation)",
    )
    p.add_argument(
        "--repeat", type=int, default=1,
        help="send the batch N times over kept-alive connections "
        "(--url mode load generation)",
    )
    p.add_argument(
        "--estimate", action="store_true",
        help="print the attribute's reconstructed distribution afterwards",
    )
    p.add_argument(
        "--baskets", action="store_true",
        help="values file is a JSON list of transactions (item-id lists): "
        "MASK-randomize locally and POST v4 basket frames to a "
        "mining-enabled server (--url mode only)",
    )
    p.add_argument(
        "--mask-p", type=float, default=None,
        help="expected MASK keep probability; must match the server's "
        "mining keep_prob (--baskets only; default: ask the server)",
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "train", help="train a decision tree on a running server"
    )
    p.add_argument(
        "--url", required=True,
        help="running server with training enabled (ppdm serve --train)",
    )
    p.add_argument(
        "--strategy", default="byclass",
        help="training strategy: global, byclass (default), or local",
    )
    p.add_argument(
        "--save", type=Path, default=None,
        help="write the trained_tree snapshot (GET /model payload) here",
    )
    p.add_argument(
        "--show-tree", action="store_true",
        help="print the trained tree's split structure",
    )
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "mine", help="mine association rules on a running server"
    )
    p.add_argument(
        "--url", required=True,
        help='running server with mining enabled (a "mining" spec section)',
    )
    p.add_argument(
        "--min-support", type=float, default=0.2,
        help="minimum estimated support in (0, 1] (default: 0.2)",
    )
    p.add_argument(
        "--min-confidence", type=float, default=0.5,
        help="minimum rule confidence in (0, 1] (default: 0.5)",
    )
    p.add_argument(
        "--save", type=Path, default=None,
        help="write the mined_rules snapshot (GET /rules payload) here",
    )
    p.add_argument(
        "--show-rules", action="store_true",
        help="print the mined rules as a table",
    )
    p.set_defaults(func=_cmd_mine)

    p = sub.add_parser("quest-info", help="describe the Quest workload")
    p.add_argument("--function", type=int, default=1)
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_quest_info)

    p = sub.add_parser("bench", help="benchmark orchestration (run/list/compare)")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser("run", help="run experiments, emit BENCH_*.json")
    b.add_argument("--ids", nargs="+", help="explicit experiment ids")
    b.add_argument("--tags", nargs="+", help="keep experiments with any of these tags")
    b.add_argument("--jobs", type=int, default=1, help="process-pool width")
    b.add_argument(
        "--out", type=Path, default=Path("benchmarks/artifacts"),
        help="artifact output directory (default: benchmarks/artifacts)",
    )
    b.add_argument(
        "--benchmarks-dir", type=Path, default=None,
        help="directory holding bench_*.py (default: ./benchmarks)",
    )
    b.add_argument(
        "--seed", type=int, default=None,
        help="derive per-experiment seeds from this base "
        "(default: each experiment's canonical seed)",
    )
    b.add_argument(
        "--scale", type=float, default=None,
        help="dataset-size multiplier overriding PPDM_BENCH_SCALE",
    )
    b.add_argument(
        "--no-tables", action="store_true",
        help="skip writing ASCII tables under benchmarks/results/",
    )
    b.add_argument("--verbose", action="store_true", help="print ASCII tables")
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser("list", help="list registered experiments")
    b.add_argument("--tags", nargs="+", help="filter by tags")
    b.add_argument("--benchmarks-dir", type=Path, default=None)
    b.set_defaults(func=_cmd_bench_list)

    b = bench_sub.add_parser("compare", help="diff two artifact directories")
    b.add_argument("baseline", type=Path, help="baseline artifact directory")
    b.add_argument("candidate", type=Path, help="candidate artifact directory")
    b.add_argument(
        "--fail-on-regression", default="1.3x", metavar="FACTOR",
        help="wall-clock slack factor, e.g. 1.3x (default)",
    )
    b.add_argument(
        "--metric-rtol", type=float, default=1e-9,
        help="relative tolerance for metric drift (default: 1e-9; metrics "
        "are deterministic at fixed seed)",
    )
    b.add_argument(
        "--wall-warn-only", action="store_true",
        help="report wall-clock regressions as warnings (shared CI runners)",
    )
    b.set_defaults(func=_cmd_bench_compare)

    p = sub.add_parser(
        "lint",
        help="project-invariant static analysis (locks, determinism, "
        "wire format, exceptions)",
    )
    p.add_argument(
        "--rule", action="append", metavar="ID",
        help="check only this rule id (repeatable, e.g. --rule L001)",
    )
    p.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: <root>/tools/lint_baseline.txt)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--root", type=Path, default=None,
        help="repository root to analyze (default: auto-detected)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="list registered checkers and rules, then exit",
    )
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # deliberate library errors (bad ids, artifacts, scales, ...)
        # become one clean line; genuine bugs still traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
