"""E24 — Association-rule mining over the live service vs the offline path.

PR 8 promoted the E12 extension to a service workload: MASK-randomized
baskets stream into sharded support counters (version 4 basket frames
over the wire) and ``MiningService`` runs level-wise Apriori with
channel inversion over the service-held counts.  This benchmark is the
parity + latency anchor for that path, the mining twin of E22:

Asserted, at 1 and 4 shards:

* the service-mined frequent itemsets — items *and* estimated supports —
  are **bit-identical** to the offline
  ``MaskMiner.frequent_itemsets`` on the same randomized baskets,
* the derived rule set (antecedent, consequent, support, confidence,
  lift) matches ``association_rules`` on the offline itemsets exactly,
* the planted patterns ``{0,1}`` and ``{2,3,4}`` are re-discovered.

Measured: batched ingest wall time into the support shards and the
mine-after-ingest latency (merge + marginalize + invert + rules), per
shard count.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _common import experiment, run_experiment

from repro.experiments import format_table
from repro.mining import (
    MaskMiner,
    RandomizedResponse,
    association_rules,
    generate_baskets,
)
from repro.service import MiningService

N_ITEMS = 12
KEEP_PROB = 0.9
MIN_SUPPORT = 0.15
MIN_CONFIDENCE = 0.4
SHARD_COUNTS = (1, 4)
N_BATCHES = 64


def _latency_floor_scale() -> float:
    """Scales the wall-clock latency thresholds (parity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy
    neighbour cannot flake the build while a real regression still
    fails."""
    return float(os.environ.get("PPDM_E24_LATENCY_FLOOR", "1.0"))


def _canonical(rule):
    return (sorted(rule.antecedent), sorted(rule.consequent))


def _service_mine(disclosed, n_shards: int):
    """Batched ingest into the support shards, then one mine pass."""
    service = MiningService(
        RandomizedResponse(KEEP_PROB), N_ITEMS, n_shards=n_shards
    )
    batches = [
        chunk for chunk in np.array_split(disclosed, N_BATCHES) if len(chunk)
    ]
    start = time.perf_counter()
    for batch in batches:
        service.ingest(batch)
    ingest_seconds = time.perf_counter() - start
    result = service.mine(MIN_SUPPORT, MIN_CONFIDENCE)
    return result, ingest_seconds


@experiment(
    "e24",
    title="Association mining over the live service (parity + latency)",
    tags=("service", "mining", "smoke"),
    seed=2400,
)
def run_e24(ctx):
    n = ctx.scaled(20_000)
    ctx.record(
        n=n,
        n_items=N_ITEMS,
        keep_prob=KEEP_PROB,
        min_support=MIN_SUPPORT,
        min_confidence=MIN_CONFIDENCE,
    )
    baskets = generate_baskets(n, N_ITEMS, seed=ctx.seed)
    response = RandomizedResponse(KEEP_PROB)
    disclosed = response.randomize(baskets, seed=ctx.seed + 1)

    start = time.perf_counter()
    offline_sets = MaskMiner(response).frequent_itemsets(disclosed, MIN_SUPPORT)
    offline_rules = association_rules(offline_sets, MIN_CONFIDENCE)
    offline_seconds = time.perf_counter() - start
    assert frozenset({0, 1}) in offline_sets
    assert frozenset({2, 3, 4}) in offline_sets

    scale = _latency_floor_scale()
    rows = []
    timing = {"offline_mine_ms": offline_seconds * 1e3}
    metrics = {
        "n_itemsets": len(offline_sets),
        "n_rules": len(offline_rules),
    }
    for n_shards in SHARD_COUNTS:
        result, ingest_seconds = _service_mine(disclosed, n_shards)
        assert result.itemsets == offline_sets, (
            f"service itemsets at {n_shards} shard(s) are not bit-identical "
            "to the offline MaskMiner lattice"
        )
        assert sorted(result.rules, key=_canonical) == sorted(
            offline_rules, key=_canonical
        ), f"service rules diverge at {n_shards} shard(s)"
        assert result.n_baskets == n
        # mine-after-ingest latency is O(2^n_items), independent of n —
        # it must stay far below re-mining the full basket matrix
        assert result.mine_seconds < max(offline_seconds * 5, 2.0) / scale
        rows.append(
            (
                str(n_shards),
                str(n),
                str(len(result.itemsets)),
                str(len(result.rules)),
                f"{ingest_seconds * 1e3:.1f}",
                f"{result.mine_seconds * 1e3:.1f}",
                "yes",
            )
        )
        timing[f"{n_shards}_shards_ingest_ms"] = ingest_seconds * 1e3
        timing[f"{n_shards}_shards_mine_ms"] = result.mine_seconds * 1e3

    table = format_table(
        (
            "shards", "baskets", "itemsets", "rules",
            "ingest ms", "mine ms", "bit-identical",
        ),
        rows,
        title=(
            f"E24: mine-over-service parity and latency, {n} baskets x "
            f"{N_ITEMS} items, keep_prob {KEEP_PROB:g}"
        ),
    )
    summary = (
        "\nevery service-mined rule set (itemsets, supports, confidences) "
        "is bit-identical to the offline MaskMiner + association_rules "
        "pipeline on the same randomized baskets"
    )
    ctx.report(table + summary, name="e24_mine_over_service")
    ctx.record_timing(**timing)

    return {"bit_identical": True, **metrics}


def test_e24_mine_over_service(benchmark):
    run_experiment(benchmark, "e24")
