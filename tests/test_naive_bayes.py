"""Tests for naive Bayes over reconstructed distributions."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.bayes import NaiveBayesClassifier, PrivacyPreservingNaiveBayes
from repro.bayes.naive import NB_STRATEGIES
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.datasets import quest
from repro.exceptions import NotFittedError, ValidationError

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


class TestNaiveBayesClassifier:
    def test_simple_threshold(self, rng):
        x = rng.random((800, 1))
        y = (x[:, 0] > 0.5).astype(int)
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 10)]).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_independent_attributes(self, rng):
        """NB is exact when attributes are conditionally independent."""
        n = 4_000
        y = rng.integers(0, 2, n)
        x0 = rng.normal(y * 2.0, 1.0)
        x1 = rng.normal(-y * 2.0, 1.0)
        x = np.column_stack([x0, x1])
        parts = [Partition.from_values(x[:, j], 20) for j in range(2)]
        model = NaiveBayesClassifier(parts).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_multiclass(self, rng):
        x = rng.random((900, 1))
        y = np.digitize(x[:, 0], [1 / 3, 2 / 3])
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 30)]).fit(x, y)
        assert model.score(x, y) > 0.93

    def test_log_proba_shape(self, rng):
        x = rng.random((100, 1))
        y = (x[:, 0] > 0.5).astype(int)
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 10)]).fit(x, y)
        assert model.predict_log_proba(x[:7]).shape == (7, 2)

    def test_not_fitted(self):
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 4)])
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 1)))

    def test_rejects_bad_laplace(self):
        with pytest.raises(ValidationError):
            NaiveBayesClassifier([Partition.uniform(0, 1, 4)], laplace=-1)

    def test_rejects_empty_fit(self):
        model = NaiveBayesClassifier([Partition.uniform(0, 1, 4)])
        with pytest.raises(ValidationError):
            model.fit(np.empty((0, 1)), np.empty(0, dtype=int))

    def test_fit_distributions_direct(self, unit_partition):
        low = np.zeros(10)
        low[:5] = 0.2
        high = np.zeros(10)
        high[5:] = 0.2
        model = NaiveBayesClassifier([unit_partition]).fit_distributions(
            [0.5, 0.5],
            [[HistogramDistribution(unit_partition, low),
              HistogramDistribution(unit_partition, high)]],
        )
        preds = model.predict(np.array([[0.1], [0.9]]))
        np.testing.assert_array_equal(preds, [0, 1])

    def test_fit_distributions_validates_shapes(self, unit_partition):
        model = NaiveBayesClassifier([unit_partition])
        with pytest.raises(ValidationError):
            model.fit_distributions([1.0], [[np.full(10, 0.1)]])  # one class
        with pytest.raises(ValidationError):
            model.fit_distributions([0.5, 0.5], [])  # missing attribute
        with pytest.raises(ValidationError):
            model.fit_distributions(
                [0.5, 0.5], [[np.full(4, 0.25), np.full(10, 0.1)]]
            )  # wrong interval count


class TestPrivacyPreservingNaiveBayes:
    @pytest.fixture(scope="class")
    def fn1(self):
        train = quest.generate(6_000, function=1, seed=51)
        test = quest.generate(2_000, function=1, seed=52)
        return train, test

    def test_strategy_registry(self):
        assert set(NB_STRATEGIES) == {"original", "randomized", "byclass"}

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValidationError):
            PrivacyPreservingNaiveBayes("local")

    @pytest.mark.parametrize("strategy", NB_STRATEGIES)
    def test_each_strategy_runs(self, fn1, strategy):
        train, test = fn1
        clf = PrivacyPreservingNaiveBayes(strategy, privacy=0.5, seed=1).fit(train)
        assert 0.4 < clf.score(test) <= 1.0

    def test_byclass_needs_no_correction_yet_tracks_original(self, fn1):
        """The headline: reconstruction alone suffices for naive Bayes."""
        train, test = fn1
        original = PrivacyPreservingNaiveBayes("original").fit(train).score(test)
        byclass = (
            PrivacyPreservingNaiveBayes("byclass", privacy=1.0, seed=2)
            .fit(train)
            .score(test)
        )
        randomized = (
            PrivacyPreservingNaiveBayes("randomized", privacy=1.0, seed=2)
            .fit(train)
            .score(test)
        )
        assert byclass > original - 0.08
        assert byclass > randomized + 0.15

    def test_reconstructions_recorded(self, fn1):
        train, _ = fn1
        clf = PrivacyPreservingNaiveBayes("byclass", privacy=0.5, seed=3).fit(train)
        assert set(clf.reconstructions_) == set(train.attribute_names)

    def test_not_fitted(self, fn1):
        clf = PrivacyPreservingNaiveBayes("original")
        with pytest.raises(NotFittedError):
            clf.predict(fn1[1])

    def test_gaussian_noise(self, fn1):
        train, test = fn1
        clf = PrivacyPreservingNaiveBayes(
            "byclass", noise="gaussian", privacy=0.5, seed=4
        ).fit(train)
        assert clf.score(test) > 0.8

    def test_attribute_subset(self, fn1):
        train, test = fn1
        clf = PrivacyPreservingNaiveBayes(
            "byclass", privacy=1.0, seed=5, attributes=("age",)
        ).fit(train)
        assert set(clf.randomizers_) == {"age"}
        assert clf.score(test) > 0.85
