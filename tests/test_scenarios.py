"""Cross-module scenarios beyond the Quest workload.

The pipelines are schema-driven; these tests exercise them on custom
tables (non-Quest schemas, more than two classes), combine features that
are usually tested in isolation (pruning + serialization, equi-depth
grids + reconstruction), and pin down behaviours a downstream user would
rely on.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.bayes import PrivacyPreservingNaiveBayes
from repro.core import (
    BayesReconstructor,
    HistogramDistribution,
    Partition,
    StreamingReconstructor,
    UniformRandomizer,
)
from repro.datasets.schema import Attribute, Table
from repro.serialize import from_jsonable, to_jsonable
from repro.tree import PrivacyPreservingClassifier
from repro.utils.rng import ensure_rng

warnings.filterwarnings("ignore", category=UserWarning, module="repro")


def three_class_table(n: int, seed) -> Table:
    """One informative attribute splitting three classes, one noise attribute."""
    rng = ensure_rng(seed)
    score = rng.uniform(0, 300, n)
    noise_attr = rng.uniform(-50, 50, n)
    labels = np.digitize(score, [100, 200])
    schema = (Attribute("score", 0, 300), Attribute("hum", -50, 50))
    return Table({"score": score, "hum": noise_attr}, labels, schema)


def two_attr_table(n: int, seed) -> Table:
    """A small custom workload: loan approval from income and debt."""
    rng = ensure_rng(seed)
    income = rng.uniform(10_000, 200_000, n)
    debt = rng.uniform(0, 100_000, n)
    labels = ((income > 80_000) & (debt < 60_000)).astype(int)
    schema = (Attribute("income", 10_000, 200_000), Attribute("debt", 0, 100_000))
    return Table({"income": income, "debt": debt}, labels, schema)


class TestMultiClass:
    def test_original_three_classes(self):
        train = three_class_table(3_000, 1)
        test = three_class_table(1_000, 2)
        clf = PrivacyPreservingClassifier("original").fit(train)
        assert clf.score(test) > 0.95
        assert set(np.unique(clf.predict(test))) == {0, 1, 2}

    def test_byclass_three_classes(self):
        train = three_class_table(6_000, 3)
        test = three_class_table(1_500, 4)
        clf = PrivacyPreservingClassifier("byclass", privacy=0.5, seed=5).fit(train)
        assert clf.score(test) > 0.8
        # reconstructions recorded for all three classes
        assert set(clf.reconstructions_["score"]) == {0, 1, 2}

    def test_naive_bayes_three_classes(self):
        train = three_class_table(6_000, 6)
        test = three_class_table(1_500, 7)
        model = PrivacyPreservingNaiveBayes("byclass", privacy=0.5, seed=8).fit(train)
        assert model.score(test) > 0.8

    def test_randomized_baseline_degrades_most(self):
        train = three_class_table(6_000, 9)
        test = three_class_table(1_500, 10)
        byclass = PrivacyPreservingClassifier(
            "byclass", privacy=2.0, seed=11
        ).fit(train).score(test)
        randomized = PrivacyPreservingClassifier(
            "randomized", privacy=2.0, seed=11
        ).fit(train).score(test)
        assert byclass > randomized


class TestCustomSchema:
    def test_full_pipeline_on_custom_table(self):
        train = two_attr_table(6_000, 20)
        test = two_attr_table(1_500, 21)
        for strategy in ("original", "randomized", "global", "byclass"):
            clf = PrivacyPreservingClassifier(strategy, privacy=0.5, seed=22)
            clf.fit(train)
            assert clf.score(test) > 0.6, strategy

    def test_perturbing_one_attribute_only(self):
        train = two_attr_table(4_000, 23)
        test = two_attr_table(1_200, 24)
        clf = PrivacyPreservingClassifier(
            "byclass", privacy=1.0, seed=25, attributes=("income",)
        ).fit(train)
        # debt is disclosed exactly, so accuracy stays high
        assert clf.score(test) > 0.85
        np.testing.assert_array_equal(
            clf.randomized_table_.column("debt"), train.column("debt")
        )

    def test_valueclass_on_custom_table(self):
        train = two_attr_table(4_000, 26)
        test = two_attr_table(1_200, 27)
        clf = PrivacyPreservingClassifier(
            "valueclass", privacy=0.2, seed=28
        ).fit(train)
        assert clf.score(test) > 0.8


class TestFeatureCombinations:
    def test_pruned_tree_serialization_roundtrip(self):
        train = two_attr_table(4_000, 30)
        test = two_attr_table(1_200, 31)
        clf = PrivacyPreservingClassifier(
            "byclass", privacy=0.5, seed=32, prune_fraction=0.2
        ).fit(train)
        clone = from_jsonable(to_jsonable(clf.tree_))
        matrix = np.column_stack([test.column("income"), test.column("debt")])
        np.testing.assert_array_equal(
            clone.predict(matrix), clf.tree_.predict(matrix)
        )

    def test_reconstruction_on_equidepth_grid(self, rng):
        """Equi-depth grids concentrate resolution where the data is."""
        x = rng.beta(2, 8, size=8_000)  # heavily left-skewed
        noise = UniformRandomizer.from_privacy(0.25, 1.0)
        w = noise.randomize(x, seed=rng)
        equidepth = Partition.equidepth(x, 20)
        result = BayesReconstructor().reconstruct(w, equidepth, noise)
        truth = HistogramDistribution.from_values(x, equidepth)
        assert result.distribution.l1_distance(truth) < 0.35

    def test_streaming_with_custom_partition(self, rng):
        part = Partition(np.array([0.0, 0.1, 0.3, 0.6, 1.0]))  # non-uniform
        noise = UniformRandomizer(0.1)
        stream = StreamingReconstructor(part, noise)
        x = rng.uniform(0.3, 0.6, 2_000)
        stream.update(noise.randomize(x, seed=rng))
        result = stream.estimate()
        assert result.distribution.probs[2] > 0.6

    def test_local_strategy_on_custom_table(self):
        train = two_attr_table(4_000, 33)
        test = two_attr_table(1_200, 34)
        local = PrivacyPreservingClassifier(
            "local", privacy=0.5, seed=35
        ).fit(train)
        byclass = PrivacyPreservingClassifier(
            "byclass", privacy=0.5, seed=35
        ).fit(train)
        assert abs(local.score(test) - byclass.score(test)) < 0.12

    def test_affine_invariance_of_byclass(self):
        """Metamorphic: rescaling an attribute's domain and data together
        must leave every prediction unchanged (noise, grids, and splits
        all scale with the domain span)."""
        rng = ensure_rng(40)
        income = rng.uniform(0, 1, 3_000)
        labels = (income > 0.6).astype(int)

        def build(scale, shift):
            schema = (Attribute("income", shift, shift + scale),)
            return Table({"income": shift + scale * income}, labels, schema)

        preds = []
        for scale, shift in ((1.0, 0.0), (50_000.0, 10_000.0)):
            train = build(scale, shift)
            clf = PrivacyPreservingClassifier(
                "byclass", privacy=0.5, seed=41
            ).fit(train)
            test_values = shift + scale * np.linspace(0.01, 0.99, 200)
            test = Table(
                {"income": test_values},
                np.zeros(200, dtype=int),
                (Attribute("income", shift, shift + scale),),
            )
            preds.append(clf.predict(test))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_nan_columns_rejected(self):
        with pytest.raises(Exception):
            Table(
                {"a": [1.0, float("nan")]},
                [0, 1],
                (Attribute("a", 0, 2),),
            )

    def test_unknown_randomizer_keys_rejected(self):
        train = two_attr_table(500, 42)
        from repro.core import UniformRandomizer as UR

        clf = PrivacyPreservingClassifier("byclass", privacy=0.5)
        with pytest.raises(Exception):
            clf.fit(
                train,
                randomized_table=train,
                randomizers={"unknown_attr": UR(1.0)},
            )

    def test_reproducibility_across_full_pipeline(self):
        train = two_attr_table(2_000, 36)
        test = two_attr_table(500, 37)
        runs = [
            PrivacyPreservingClassifier(
                "byclass", privacy=1.0, seed=38, prune_fraction=0.15
            )
            .fit(train)
            .predict(test)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])
