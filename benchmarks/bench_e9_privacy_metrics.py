"""E9 — The privacy metric table (paper §2.1).

Regenerates the paper's quantification examples: for each Quest attribute
and noise kind, the noise parameter that achieves a target privacy at
95 % confidence, plus the same randomizer's privacy at other confidence
levels, and the information-theoretic a-posteriori view (follow-on work).
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.core import (
    HistogramDistribution,
    noise_for_privacy,
    posterior_privacy,
    privacy_of_randomizer,
)
from repro.datasets import quest
from repro.experiments import format_table

CONFIDENCES = (0.5, 0.95, 0.999)
POSTERIOR_LEVELS = (0.25, 1.0, 2.0)


@experiment(
    "e9",
    title="Privacy metric tables: interval and information-theoretic views",
    tags=("privacy", "smoke"),
    seed=900,
)
def run_e9(ctx):
    n = ctx.scaled(20_000)
    ctx.record(n=n, target_privacy=1.0, confidence=0.95)
    rows = []
    for attribute in quest.ATTRIBUTES[:4]:  # salary, commission, age, elevel
        for kind in ("uniform", "gaussian"):
            randomizer = noise_for_privacy(kind, 1.0, attribute.span, 0.95)
            privacy_at = [
                privacy_of_randomizer(randomizer, attribute.span, c)
                for c in CONFIDENCES
            ]
            rows.append((attribute.name, kind, privacy_at))

    # a-posteriori (information-theoretic) privacy on real age data
    table = quest.generate(n, function=1, seed=ctx.seed)
    age_attr = table.attribute("age")
    prior = HistogramDistribution.from_values(
        table.column("age"), age_attr.partition(24)
    )
    posterior = {
        level: posterior_privacy(
            prior, noise_for_privacy("uniform", level, age_attr.span)
        )
        for level in POSTERIOR_LEVELS
    }

    interval_rows = [
        (name, kind) + tuple(f"{100 * p:.1f}" for p in privacy_at)
        for name, kind, privacy_at in rows
    ]
    interval_table = format_table(
        ("attribute", "noise") + tuple(f"c={c:g}" for c in CONFIDENCES),
        interval_rows,
        title="E9a: privacy (% of range) of 100%-at-95% noise, by confidence",
    )
    posterior_rows = [
        (
            f"{level:g}",
            f"{p.mutual_information_bits:.2f}",
            f"{100 * p.privacy_fraction:.1f}",
            f"{100 * p.privacy_loss:.1f}",
        )
        for level, p in posterior.items()
    ]
    posterior_table = format_table(
        ("interval privacy", "I(X;Y) bits", "posterior privacy %", "loss %"),
        posterior_rows,
        title="E9b: information-theoretic view (age attribute, uniform noise)",
    )
    ctx.report(interval_table + "\n\n" + posterior_table, name="e9_privacy_metrics")

    metrics = {}
    for name, kind, privacy_at in rows:
        for confidence, value in zip(CONFIDENCES, privacy_at):
            metrics[f"{name}_{kind}_c{confidence:g}"] = float(value)
    for level, p in posterior.items():
        metrics[f"posterior_fraction_p{level:g}"] = float(p.privacy_fraction)
        metrics[f"mutual_information_p{level:g}"] = float(p.mutual_information_bits)

    # all randomizers hit the target exactly at the stated confidence
    for name, kind, privacy_at in rows:
        assert abs(privacy_at[1] - 1.0) < 1e-9, (name, kind)
    # uniform noise caps at 2*alpha: c=0.999 privacy < 1.06x the 95% level
    for name, kind, privacy_at in rows:
        if kind == "uniform":
            assert privacy_at[2] < 1.06
        else:
            # gaussian keeps growing with confidence (heavier uncertainty tails)
            assert privacy_at[2] > 1.5
    # posterior privacy grows with the interval privacy level
    fractions = [p.privacy_fraction for p in posterior.values()]
    assert fractions == sorted(fractions)
    return metrics


def test_e9_privacy_metrics(benchmark):
    run_experiment(benchmark, "e9")
