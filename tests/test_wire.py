"""Tests for the columnar binary wire format (repro.service.wire)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import DecodedSizeError, ValidationError, WireFormatError
from repro.service.wire import (
    MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_BASKETS,
    WIRE_VERSION_CLASSES,
    WIRE_VERSION_QUANTIZED,
    compress_payload,
    decode_baskets,
    decode_columns,
    decode_labeled,
    decompress_payload,
    encode_baskets,
    encode_columns,
    encode_ndjson,
    encode_quantized,
    iter_basket_frames,
    iter_frames,
    iter_labeled_frames,
    iter_labeled_ndjson,
    iter_ndjson,
    resolve_codec,
    supported_codecs,
)


class TestColumnarRoundtrip:
    def test_roundtrip_single_attribute(self):
        values = np.linspace(-5.0, 5.0, 100)
        batch, shard = decode_columns(encode_columns({"age": values}))
        assert shard is None
        assert batch["age"].dtype == np.dtype("<f8")
        assert np.array_equal(batch["age"], values)

    def test_roundtrip_multi_attribute_preserves_order(self):
        original = {
            "a": np.array([1.0, 2.0]),
            "b": np.array([3.0]),
            "c": np.array([], dtype=float),
        }
        batch, _ = decode_columns(encode_columns(original))
        assert list(batch) == ["a", "b", "c"]
        for name, values in original.items():
            assert np.array_equal(batch[name], values)

    def test_shard_pin_roundtrips(self):
        _, shard = decode_columns(encode_columns({"x": [0.5]}, shard=3))
        assert shard == 3
        _, shard = decode_columns(encode_columns({"x": [0.5]}))
        assert shard is None

    def test_exact_bit_patterns_survive(self):
        """Raw float64 bytes on the wire: no repr/parse rounding at all."""
        tricky = np.array([0.1, 1e-308, 1.7976931348623157e308, -0.0])
        batch, _ = decode_columns(encode_columns({"x": tricky}))
        assert batch["x"].tobytes() == tricky.tobytes()

    def test_decoded_columns_are_zero_copy_views(self):
        payload = encode_columns({"x": np.arange(1000, dtype=float)})
        batch, _ = decode_columns(payload)
        assert not batch["x"].flags.owndata  # a view into the body
        assert not batch["x"].flags.writeable

    def test_unicode_attribute_names(self):
        batch, _ = decode_columns(encode_columns({"âge": [1.0]}))
        assert list(batch) == ["âge"]

    def test_empty_batch_roundtrips(self):
        batch, shard = decode_columns(encode_columns({}))
        assert batch == {}
        assert shard is None

    def test_iter_frames_concatenated(self):
        body = b"".join(
            [
                encode_columns({"x": [0.1, 0.2]}),
                encode_columns({"x": [0.3]}, shard=1),
                encode_columns({"y": [9.0]}, shard=0),
            ]
        )
        frames = list(iter_frames(body))
        assert [(list(b), s) for b, s in frames] == [
            (["x"], None),
            (["x"], 1),
            (["y"], 0),
        ]
        assert frames[0][0]["x"].size == 2

    def test_iter_frames_empty_body(self):
        assert list(iter_frames(b"")) == []


class TestColumnarErrors:
    def test_bad_magic(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        frame[:4] = b"NOPE"
        with pytest.raises(ValidationError, match="magic"):
            decode_columns(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_columns({"x": [0.5]}))
        struct.pack_into("<H", frame, 4, WIRE_VERSION_CLASSES + 1)
        with pytest.raises(ValidationError, match="version"):
            decode_columns(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(MAGIC)

    def test_truncated_column_data(self):
        frame = encode_columns({"x": [0.5, 0.6, 0.7]})
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(frame[:-8])

    def test_truncated_attribute_table(self):
        frame = encode_columns({"abcdef": [0.5]})
        header_plus_partial_table = frame[: struct.calcsize("<4sHHi") + 3]
        with pytest.raises(ValidationError, match="truncated"):
            decode_columns(header_plus_partial_table)

    def test_trailing_bytes_rejected_by_single_decode(self):
        frame = encode_columns({"x": [0.5]})
        with pytest.raises(ValidationError, match="trailing"):
            decode_columns(frame + b"\x00")

    def test_duplicate_attribute_rejected(self):
        good = encode_columns({"x": [0.5]})
        # craft a 2-entry table that names "x" twice
        table_entry = struct.pack("<H", 1) + b"x" + struct.pack("<Q", 1)
        column = np.array([0.5]).tobytes()
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION, 2, -1)
            + table_entry * 2
            + column * 2
        )
        assert decode_columns(good)  # sanity: the crafting matches the layout
        with pytest.raises(ValidationError, match="duplicate"):
            decode_columns(frame)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ValidationError):
            encode_columns([("x", [0.5])])

    def test_encode_rejects_2d_values(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            encode_columns({"x": [[0.5, 0.6]]})

    def test_encode_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            encode_columns({"": [0.5]})


class TestClassColumn:
    """Wire version 2: the optional class column."""

    def test_labeled_roundtrip(self):
        values = np.linspace(0.0, 1.0, 10)
        classes = np.arange(10) % 3
        frame = encode_columns({"x": values}, classes=classes, shard=1)
        batch, decoded, shard = decode_labeled(frame)
        assert np.array_equal(batch["x"], values)
        assert decoded.dtype == np.dtype("<i4")
        assert np.array_equal(decoded, classes)
        assert shard == 1

    def test_unlabeled_encode_is_byte_identical_v1(self):
        """No classes -> the exact PR 4 byte layout (old servers decode it)."""
        frame = encode_columns({"x": [0.5, 0.6]}, shard=2)
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION

    def test_labeled_encode_is_v2(self):
        frame = encode_columns({"x": [0.5]}, classes=[1])
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION_CLASSES

    def test_decode_labeled_accepts_v1(self):
        batch, classes, shard = decode_labeled(encode_columns({"x": [0.5]}))
        assert classes is None
        assert shard is None
        assert batch["x"].tolist() == [0.5]

    def test_class_column_is_zero_copy_view(self):
        frame = encode_columns({"x": [0.5]}, classes=[1])
        _, classes, _ = decode_labeled(frame)
        assert not classes.flags.owndata
        assert not classes.flags.writeable

    def test_v1_and_v2_frames_mix_in_one_body(self):
        body = encode_columns({"x": [0.1]}) + encode_columns(
            {"x": [0.9]}, classes=[1]
        )
        frames = list(iter_labeled_frames(body))
        assert frames[0][1] is None
        assert frames[1][1].tolist() == [1]

    def test_unlabeled_decoders_reject_labeled_frames(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        with pytest.raises(ValidationError, match="class column"):
            decode_columns(frame)
        with pytest.raises(ValidationError, match="class column"):
            list(iter_frames(frame))

    def test_encode_rejects_row_count_mismatch(self):
        with pytest.raises(ValidationError, match="class"):
            encode_columns({"x": [0.5, 0.6]}, classes=[0])

    def test_empty_class_column_encodes_unlabeled_v1(self):
        """classes=[] carries no labels: the plain v1 frame, not an error."""
        frame = encode_columns({"x": [0.5, 0.6]}, classes=[])
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION
        batch, classes, _ = decode_labeled(frame)
        assert classes is None
        assert batch["x"].tolist() == [0.5, 0.6]

    def test_encode_rejects_non_integer_classes(self):
        with pytest.raises(ValidationError, match="integer"):
            encode_columns({"x": [0.5]}, classes=[0.5])
        with pytest.raises(ValidationError):
            encode_columns({"x": [0.5]}, classes=[[0]])

    def test_decode_rejects_column_class_count_mismatch(self):
        """A crafted v2 frame whose column row count disagrees with the
        class column is rejected at the table, before any allocation."""
        frame = bytearray(encode_columns({"x": [0.5, 0.6]}, classes=[0, 1]))
        # attribute table starts after the 12-byte header + 8-byte class
        # count; bump the row count of "x" (u16 len + 1 name byte in)
        struct.pack_into("<Q", frame, 12 + 8 + 2 + 1, 3)
        with pytest.raises(ValidationError, match="class column"):
            decode_labeled(bytes(frame))

    def test_truncated_class_column(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        # drop the final float column AND the tail of the class column
        with pytest.raises(ValidationError, match="truncated"):
            decode_labeled(frame[: len(frame) - 8 - 2])

    def test_truncated_v2_header(self):
        frame = encode_columns({"x": [0.5]}, classes=[0])
        with pytest.raises(ValidationError, match="truncated"):
            decode_labeled(frame[:14])

    def test_oversized_class_count_rejected_without_allocation(self):
        frame = bytearray(encode_columns({"x": [0.5]}, classes=[0]))
        struct.pack_into("<Q", frame, 12, 2**60)  # absurd class row count
        with pytest.raises(ValidationError):
            decode_labeled(bytes(frame))

    def test_oversized_row_count_rejected_without_allocation(self):
        frame = bytearray(encode_columns({"abc": [0.5]}))
        # row count sits after header + u16 name length + 3 name bytes
        struct.pack_into("<Q", frame, 12 + 2 + 3, 2**60)
        # the cell-count bomb guard fires before any byte-length math
        with pytest.raises(WireFormatError, match="caps frames"):
            decode_columns(bytes(frame))


class TestDecodeFuzz:
    """Randomized malformed inputs: the decoder must always answer with a
    ValidationError (or a successful decode) — never another exception
    type, a hang, or unbounded allocation.  Failing seeds print via the
    deterministic loop below (fixed base seed, indexed cases)."""

    BASE_SEED = 987_654

    def _frames(self):
        return [
            encode_columns({"x": [0.5, 0.6], "y": [1.0, 2.0]}, shard=1),
            encode_columns({"x": [0.5, 0.6]}, classes=[0, 1]),
            encode_columns({"x": []}, classes=[]),
            encode_columns({"âge": np.linspace(0, 1, 31).tolist()}, classes=[1] * 31),
        ]

    def test_truncation_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED)
        for index, frame in enumerate(self._frames()):
            cuts = {rng.randrange(len(frame)) for _ in range(40)}
            for cut in sorted(cuts):
                try:
                    decode_labeled(frame[:cut])
                except ValidationError:
                    continue
                except Exception as exc:  # noqa: BLE001
                    raise AssertionError(
                        f"frame {index} truncated at {cut} raised "
                        f"{type(exc).__name__}: {exc} (seed {self.BASE_SEED})"
                    ) from exc
                assert cut == len(frame), (
                    f"frame {index}: truncation at {cut} decoded cleanly "
                    f"(seed {self.BASE_SEED})"
                )

    def test_corruption_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED + 1)
        frames = self._frames()
        for case in range(150):
            frame = bytearray(rng.choice(frames))
            for _ in range(rng.randint(1, 4)):
                frame[rng.randrange(len(frame))] = rng.randrange(256)
            try:
                batch, classes, shard = decode_labeled(bytes(frame))
            except ValidationError:
                continue
            except Exception as exc:  # noqa: BLE001
                raise AssertionError(
                    f"corruption case {case} raised {type(exc).__name__}: "
                    f"{exc} (seed {self.BASE_SEED + 1})"
                ) from exc
            # a surviving decode must still be structurally sound
            for values in batch.values():
                assert values.ndim == 1
            if classes is not None:
                assert classes.ndim == 1


class TestBasketFrames:
    """Wire version 4: varint/offset-indexed basket frames."""

    def test_roundtrip(self):
        rng = np.random.default_rng(12345)
        matrix = rng.random((40, 12)) < 0.3
        decoded, shard = decode_baskets(encode_baskets(matrix, shard=2))
        assert decoded.dtype == np.bool_
        assert np.array_equal(decoded, matrix)
        assert shard == 2

    def test_unpinned_shard_roundtrips_none(self):
        _, shard = decode_baskets(encode_baskets(np.eye(3, dtype=bool)))
        assert shard is None

    def test_empty_transactions_are_valid(self):
        """MASK can disclose all-false rows; they round-trip as empties."""
        matrix = np.zeros((5, 4), dtype=bool)
        decoded, _ = decode_baskets(encode_baskets(matrix))
        assert np.array_equal(decoded, matrix)

    def test_dense_transactions_roundtrip(self):
        matrix = np.ones((3, 300), dtype=bool)  # ids need 2-byte varints
        decoded, _ = decode_baskets(encode_baskets(matrix))
        assert np.array_equal(decoded, matrix)

    def test_header_is_version_4(self):
        frame = encode_baskets(np.eye(2, dtype=bool))
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION_BASKETS

    def test_iter_frames_concatenated(self):
        body = encode_baskets(np.eye(3, dtype=bool)) + encode_baskets(
            np.zeros((2, 3), dtype=bool), shard=1
        )
        frames = list(iter_basket_frames(body))
        assert [(m.shape, s) for m, s in frames] == [((3, 3), None), ((2, 3), 1)]

    def test_iter_frames_empty_body(self):
        assert list(iter_basket_frames(b"")) == []

    def test_encode_rejects_non_boolean(self):
        with pytest.raises(ValidationError, match="boolean"):
            encode_baskets(np.eye(2))
        with pytest.raises(ValidationError, match="2-D"):
            encode_baskets(np.array([True, False]))

    def test_encode_rejects_zero_transactions(self):
        with pytest.raises(ValidationError, match="at least one transaction"):
            encode_baskets(np.zeros((0, 3), dtype=bool))

    def test_encode_rejects_zero_items(self):
        with pytest.raises(ValidationError, match="1..65535"):
            encode_baskets(np.zeros((3, 0), dtype=bool))

    def test_trailing_bytes_rejected_by_single_decode(self):
        frame = encode_baskets(np.eye(2, dtype=bool))
        with pytest.raises(ValidationError, match="trailing"):
            decode_baskets(frame + b"\x00")

    def test_bad_magic(self):
        frame = bytearray(encode_baskets(np.eye(2, dtype=bool)))
        frame[:4] = b"NOPE"
        with pytest.raises(ValidationError, match="magic"):
            decode_baskets(bytes(frame))

    def test_v1_frame_in_basket_body_rejected(self):
        """Mixed v1/v4 bodies: a record frame is not a basket frame."""
        body = encode_baskets(np.eye(2, dtype=bool)) + encode_columns(
            {"x": [0.5]}
        )
        with pytest.raises(ValidationError, match="version"):
            list(iter_basket_frames(body))

    def test_v4_frame_in_columnar_body_rejected(self):
        """...and symmetrically, the columnar decoders refuse v4."""
        frame = encode_baskets(np.eye(2, dtype=bool))
        with pytest.raises(ValidationError, match="version"):
            decode_columns(frame)
        with pytest.raises(ValidationError, match="version"):
            list(iter_labeled_frames(frame))

    def test_mixed_item_universes_rejected(self):
        body = encode_baskets(np.eye(2, dtype=bool)) + encode_baskets(
            np.eye(3, dtype=bool)
        )
        with pytest.raises(ValidationError, match="mixes item universes"):
            list(iter_basket_frames(body))

    def test_out_of_range_item_id_rejected(self):
        # one transaction holding item 5 in a declared universe of 2
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 2, -1)
            + b"\x01"  # 1 transaction
            + b"\x01"  # 1 byte of ids
            + b"\x05"  # item 5
        )
        with pytest.raises(ValidationError, match="outside the declared"):
            decode_baskets(frame)

    def test_non_increasing_item_ids_rejected(self):
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 4, -1)
            + b"\x01"      # 1 transaction
            + b"\x02"      # 2 bytes of ids
            + b"\x02\x01"  # items 2, 1: out of order
        )
        with pytest.raises(ValidationError, match="strictly increasing"):
            decode_baskets(frame)
        dupes = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 4, -1)
            + b"\x01\x02\x01\x01"  # items 1, 1: duplicate
        )
        with pytest.raises(ValidationError, match="strictly increasing"):
            decode_baskets(dupes)

    def test_zero_transactions_rejected(self):
        frame = struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 2, -1) + b"\x00"
        with pytest.raises(ValidationError, match="no transactions"):
            decode_baskets(frame)

    def test_zero_item_universe_rejected(self):
        frame = struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 0, -1) + b"\x01\x00"
        with pytest.raises(ValidationError, match="empty item universe"):
            decode_baskets(frame)

    def test_oversized_transaction_count_rejected_without_allocation(self):
        """An absurd declared count is refused before the matrix exists:
        either it outruns the remaining bytes or it trips the cell cap."""
        header = struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 65535, -1)
        absurd = header + b"\x80\x80\x80\x80\x80\x80\x80\x80\x40"  # 2^62
        with pytest.raises(ValidationError, match="truncated"):
            decode_baskets(absurd)
        # pad so the count fits the remaining bytes: the cap catches it
        padded = header + b"\x80\x89\x7a" + b"\x00" * 2_000_000  # 2_000_000
        with pytest.raises(ValidationError, match="caps frames"):
            decode_baskets(padded)

    def test_runaway_varint_rejected(self):
        frame = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION_BASKETS, 2, -1)
            + b"\x80" * 11  # continuation bit forever
        )
        with pytest.raises(ValidationError, match="varint"):
            decode_baskets(frame)

    def test_truncated_transaction_payload(self):
        frame = encode_baskets(np.ones((2, 3), dtype=bool))
        with pytest.raises(ValidationError, match="truncated"):
            decode_baskets(frame[:-1])


class TestBasketDecodeFuzz:
    """Randomized malformed basket bodies: always ValidationError (or a
    clean decode), never another exception type or unbounded work —
    the v4 twin of TestDecodeFuzz."""

    BASE_SEED = 424_243

    def _frames(self):
        rng = np.random.default_rng(self.BASE_SEED)
        return [
            encode_baskets(rng.random((10, 6)) < 0.4, shard=1),
            encode_baskets(np.zeros((4, 3), dtype=bool)),
            encode_baskets(np.ones((2, 300), dtype=bool)),
            encode_baskets(np.eye(16, dtype=bool), shard=0),
        ]

    def test_truncation_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED)
        for index, frame in enumerate(self._frames()):
            cuts = {rng.randrange(len(frame)) for _ in range(40)}
            for cut in sorted(cuts):
                try:
                    decode_baskets(frame[:cut])
                except ValidationError:
                    continue
                except Exception as exc:  # noqa: BLE001
                    raise AssertionError(
                        f"frame {index} truncated at {cut} raised "
                        f"{type(exc).__name__}: {exc} (seed {self.BASE_SEED})"
                    ) from exc
                assert cut == len(frame), (
                    f"frame {index}: truncation at {cut} decoded cleanly "
                    f"(seed {self.BASE_SEED})"
                )

    def test_corruption_fuzz(self):
        import random

        rng = random.Random(self.BASE_SEED + 1)
        frames = self._frames()
        for case in range(150):
            frame = bytearray(rng.choice(frames))
            for _ in range(rng.randint(1, 4)):
                frame[rng.randrange(len(frame))] = rng.randrange(256)
            try:
                matrix, shard = decode_baskets(bytes(frame))
            except ValidationError:
                continue
            except Exception as exc:  # noqa: BLE001
                raise AssertionError(
                    f"corruption case {case} raised {type(exc).__name__}: "
                    f"{exc} (seed {self.BASE_SEED + 1})"
                ) from exc
            # a surviving decode must still be structurally sound
            assert matrix.ndim == 2
            assert matrix.dtype == np.bool_
            assert shard is None or isinstance(shard, int)


class TestNDJSON:
    def test_roundtrip(self):
        body = encode_ndjson([({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)])
        frames = list(iter_ndjson(body))
        assert frames == [({"x": [0.5, 0.6]}, None), ({"y": [1.0]}, 2)]

    def test_blank_lines_skipped(self):
        body = b'\n{"batch": {"x": [0.5]}}\n\n'
        assert len(list(iter_ndjson(body))) == 1

    def test_empty_body(self):
        assert list(iter_ndjson(b"")) == []
        assert encode_ndjson([]) == b""

    def test_bad_json_line_names_the_line(self):
        body = b'{"batch": {"x": [0.5]}}\nnot json\n'
        with pytest.raises(ValidationError, match="line 2"):
            list(iter_ndjson(body))

    def test_line_without_batch_rejected(self):
        with pytest.raises(ValidationError, match="batch"):
            list(iter_ndjson(b'{"values": [1.0]}\n'))

    def test_batch_must_be_dict(self):
        with pytest.raises(ValidationError):
            list(iter_ndjson(b'{"batch": [1.0]}\n'))

    def test_labeled_lines_roundtrip(self):
        body = (
            b'{"batch": {"x": [0.5]}, "classes": [1]}\n'
            b'{"batch": {"x": [0.9]}}\n'
        )
        frames = list(iter_labeled_ndjson(body))
        assert frames == [({"x": [0.5]}, [1], None), ({"x": [0.9]}, None, None)]

    def test_unlabeled_iterator_rejects_classes(self):
        with pytest.raises(ValidationError, match="classes"):
            list(iter_ndjson(b'{"batch": {"x": [0.5]}, "classes": [1]}\n'))

    def test_classes_must_be_list(self):
        with pytest.raises(ValidationError, match="classes"):
            list(iter_labeled_ndjson(b'{"batch": {"x": [0.5]}, "classes": 1}\n'))


class TestQuantizedFrames:
    """Wire version 5: per-column dtype codes and int8/int16 bin indices."""

    def test_int8_roundtrip(self):
        indices = np.array([0, 3, 7, 127], dtype=np.int8)
        frame = encode_quantized({"age": indices})
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION_QUANTIZED
        batch, classes, shard = decode_labeled(frame)
        assert classes is None and shard is None
        assert batch["age"].dtype == np.dtype("<i1")
        assert np.array_equal(batch["age"], indices)

    def test_int16_roundtrip(self):
        indices = np.array([0, 128, 32767], dtype=np.int16)
        batch, _, _ = decode_labeled(encode_quantized({"x": indices}))
        assert batch["x"].dtype == np.dtype("<i2")
        assert np.array_equal(batch["x"], indices)

    def test_wide_integers_narrow_to_smallest_width(self):
        batch, _, _ = decode_labeled(
            encode_quantized({"a": np.array([0, 127], dtype=np.int64),
                              "b": np.array([0, 128], dtype=np.int64)})
        )
        assert batch["a"].dtype == np.dtype("<i1")
        assert batch["b"].dtype == np.dtype("<i2")

    def test_float_columns_ride_v5_as_raw_f8(self):
        values = np.array([0.1, 1e-308, -0.0])
        frame = encode_quantized({"x": values, "q": np.array([1], dtype=np.int8)[:0]})
        batch, _, _ = decode_labeled(frame)
        assert batch["x"].dtype == np.dtype("<f8")
        assert batch["x"].tobytes() == values.tobytes()

    def test_labeled_quantized_frame_roundtrips(self):
        indices = np.array([0, 1, 2, 1], dtype=np.int8)
        frame = encode_quantized({"x": indices}, classes=[0, 1, 0, 1], shard=2)
        batch, classes, shard = decode_labeled(frame)
        assert shard == 2
        assert classes.tolist() == [0, 1, 0, 1]
        assert batch["x"].tolist() == [0, 1, 2, 1]

    def test_decoded_quantized_columns_are_zero_copy(self):
        frame = encode_quantized({"x": np.arange(100, dtype=np.int8)})
        batch, _, _ = decode_labeled(frame)
        assert not batch["x"].flags.owndata
        assert not batch["x"].flags.writeable

    def test_unlabeled_v5_decodes_via_iter_frames(self):
        frame = encode_quantized({"x": np.array([1, 2], dtype=np.int8)})
        (batch, shard), = iter_frames(frame)
        assert shard is None
        assert batch["x"].tolist() == [1, 2]

    def test_v5_mixes_with_older_versions_in_one_body(self):
        body = (
            encode_columns({"x": [0.5]})
            + encode_quantized({"x": np.array([3], dtype=np.int8)})
            + encode_columns({"x": [0.9]}, classes=[1])
        )
        frames = list(iter_labeled_frames(body))
        decoded = [b["x"].dtype for b, _, _ in frames]
        assert decoded == [np.dtype("<f8"), np.dtype("<i1"), np.dtype("<f8")]

    def test_negative_indices_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            encode_quantized({"x": np.array([-1], dtype=np.int8)})

    def test_indices_past_int16_rejected(self):
        with pytest.raises(ValidationError, match="32767"):
            encode_quantized({"x": np.array([32768], dtype=np.int64)})

    def test_unknown_dtype_code_rejected(self):
        frame = bytearray(encode_quantized({"ab": np.array([1], dtype=np.int8)}))
        # dtype code is the last byte of the table entry:
        # header(12) + class count(8) + name len(2) + name(2) + rows(8)
        frame[12 + 8 + 2 + 2 + 8] = 9
        with pytest.raises(WireFormatError, match="unknown dtype code"):
            decode_labeled(bytes(frame))

    def test_older_encoders_stay_byte_identical(self):
        """v5 is opt-in: encode_columns never emits it, and a pinned v1
        frame proves the pre-codec layout is untouched."""
        frame = encode_columns({"x": [0.5]}, shard=1)
        assert struct.unpack_from("<H", frame, 4)[0] == WIRE_VERSION
        expected = (
            struct.pack("<4sHHi", MAGIC, WIRE_VERSION, 1, 1)
            + struct.pack("<H", 1) + b"x" + struct.pack("<Q", 1)
            + np.array([0.5]).tobytes()
        )
        assert bytes(frame) == expected

    def test_truncation_fuzz_never_leaks_other_exceptions(self):
        frame = encode_quantized(
            {"q": np.arange(50, dtype=np.int16), "f": np.linspace(0, 1, 50)},
            classes=[0, 1] * 25,
        )
        for cut in range(len(frame)):
            with pytest.raises(ValidationError):
                decode_labeled(frame[:cut])


class TestFrameCellCap:
    """The shared decode-bomb guard across columnar and partial frames."""

    def test_forged_partial_cell_count_rejected(self):
        from repro.service.wire import encode_partial, split_partial

        frame = bytearray(encode_partial({"x": np.zeros((2, 4))}))
        # bump the declared bin count of "x" (header + u16 len + 1 name byte)
        struct.pack_into("<Q", frame, 12 + 2 + 1, 2**60)
        with pytest.raises(WireFormatError, match="caps frames"):
            split_partial(bytes(frame))

    def test_forged_quantized_row_count_rejected(self):
        frame = bytearray(encode_quantized({"ab": np.array([1], dtype=np.int8)}))
        struct.pack_into("<Q", frame, 12 + 8 + 2 + 2, 2**60)
        with pytest.raises(WireFormatError, match="caps frames"):
            decode_labeled(bytes(frame))

    def test_cap_counts_cells_across_all_columns(self):
        """Many modest columns that sum past the cap still trip the guard."""
        per_column = (1 << 26) + 1
        names = [f"c{i}" for i in range(4)]
        table = b"".join(
            struct.pack("<H", len(n)) + n.encode() + struct.pack("<Q", per_column)
            for n in names
        )
        frame = struct.pack("<4sHHi", MAGIC, WIRE_VERSION, len(names), -1) + table
        with pytest.raises(WireFormatError, match="caps frames"):
            decode_columns(frame)

    def test_wire_format_error_is_a_validation_error(self):
        assert issubclass(WireFormatError, ValidationError)
        assert issubclass(DecodedSizeError, WireFormatError)


class TestCodecs:
    """Content-Encoding negotiation and bounded decompression."""

    def test_supported_codecs_identity_first(self):
        codecs = supported_codecs()
        assert codecs[0] == "identity"
        assert "zlib" in codecs

    def test_resolve_codec_aliases(self):
        assert resolve_codec(None) == "identity"
        assert resolve_codec("") == "identity"
        assert resolve_codec("Identity") == "identity"
        assert resolve_codec(" ZLIB ") == "zlib"
        assert resolve_codec("deflate") == "zlib"

    def test_resolve_codec_unknown_tokens(self):
        assert resolve_codec("br") is None
        assert resolve_codec("gzip") is None
        assert resolve_codec("zlib, br") is None

    def test_zstd_resolves_only_when_importable(self):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            assert resolve_codec("zstd") is None
            assert "zstd" not in supported_codecs()
        else:
            assert resolve_codec("zstd") == "zstd"
            assert "zstd" in supported_codecs()

    def test_identity_passthrough(self):
        body = encode_columns({"x": [0.5]})
        assert compress_payload(body, "identity") == body
        assert decompress_payload(body, "identity", max_decoded=1024) == body

    def test_zlib_roundtrip_any_frame_mix(self):
        body = encode_columns({"x": np.zeros(500)}) + encode_quantized(
            {"x": np.zeros(500, dtype=np.int8)}
        )
        wire = compress_payload(body, "zlib")
        assert len(wire) < len(body)
        assert decompress_payload(wire, "zlib", max_decoded=len(body)) == body

    def test_identity_body_over_cap_rejected(self):
        with pytest.raises(DecodedSizeError, match="caps bodies"):
            decompress_payload(bytes(100), "identity", max_decoded=64)

    def test_zlib_bomb_hits_the_cap(self):
        import zlib

        bomb = zlib.compress(bytes(10_000_000))
        assert len(bomb) < 16_384
        with pytest.raises(DecodedSizeError, match="decoded-size cap"):
            decompress_payload(bomb, "zlib", max_decoded=65_536)

    def test_truncated_zlib_stream_rejected(self):
        import zlib

        wire = zlib.compress(bytes(10_000))
        with pytest.raises(WireFormatError, match="truncated"):
            decompress_payload(wire[:-4], "zlib", max_decoded=1 << 20)

    def test_trailing_garbage_after_zlib_stream_rejected(self):
        import zlib

        wire = zlib.compress(b"frame") + b"extra"
        with pytest.raises(WireFormatError, match="trailing"):
            decompress_payload(wire, "zlib", max_decoded=1 << 20)

    def test_corrupt_zlib_stream_rejected(self):
        with pytest.raises(WireFormatError, match="corrupt"):
            decompress_payload(b"\x00\x01notzlib", "zlib", max_decoded=1 << 20)

    def test_unknown_codec_rejected_both_directions(self):
        with pytest.raises(ValidationError, match="unknown codec"):
            compress_payload(b"x", "br")
        with pytest.raises(ValidationError, match="unknown codec"):
            decompress_payload(b"x", "br", max_decoded=64)

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            decompress_payload(b"", "identity", max_decoded=0)

    def test_corruption_fuzz_zlib(self):
        import random
        import zlib

        rng = random.Random(424_242)
        body = encode_columns({"x": np.linspace(0, 1, 200)})
        wire = zlib.compress(body)
        for _ in range(200):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 3)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            try:
                decoded = decompress_payload(
                    bytes(mutated), "zlib", max_decoded=len(body) + 1
                )
            except (WireFormatError, DecodedSizeError):
                continue
            # rare survivors must still bound their output
            assert len(decoded) <= len(body) + 1
