"""Tests for per-record correction (paper §4's ordered assignment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.correction import correct_records
from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.core.randomizers import UniformRandomizer
from repro.core.reconstruction import BayesReconstructor


@pytest.fixture
def simple_dist(unit_partition):
    probs = np.zeros(10)
    probs[1] = 0.3
    probs[6] = 0.7
    return HistogramDistribution(unit_partition, probs)


class TestInvariants:
    def test_counts_match_distribution(self, simple_dist, rng):
        w = rng.random(1000)
        corrected = correct_records(w, simple_dist)
        np.testing.assert_array_equal(
            corrected.counts, simple_dist.integer_counts(1000)
        )

    def test_values_are_midpoints(self, simple_dist, rng):
        w = rng.random(100)
        corrected = correct_records(w, simple_dist)
        midpoints = set(np.round(simple_dist.partition.midpoints, 12))
        assert set(np.round(corrected.values, 12)) <= midpoints

    def test_assignment_is_order_preserving(self, simple_dist, rng):
        """Sorted inputs must receive non-decreasing interval indices."""
        w = np.sort(rng.random(500))
        corrected = correct_records(w, simple_dist)
        assert np.all(np.diff(corrected.interval_indices) >= 0)

    def test_order_preserved_for_unsorted_input(self, simple_dist, rng):
        w = rng.random(500)
        corrected = correct_records(w, simple_dist)
        order = np.argsort(w, kind="stable")
        assert np.all(np.diff(corrected.interval_indices[order]) >= 0)

    def test_alignment_with_input(self, simple_dist):
        w = np.array([0.9, 0.1, 0.5])
        corrected = correct_records(w, simple_dist)
        # smallest w gets the lowest interval, largest the highest
        assert corrected.interval_indices[1] <= corrected.interval_indices[2]
        assert corrected.interval_indices[2] <= corrected.interval_indices[0]

    def test_empty_input(self, simple_dist):
        corrected = correct_records([], simple_dist)
        assert corrected.values.size == 0
        assert corrected.interval_indices.size == 0
        assert corrected.counts.sum() == 0

    def test_single_record(self, simple_dist):
        corrected = correct_records([0.4], simple_dist)
        assert corrected.counts.sum() == 1
        # with one record, it goes to the single most probable cell after
        # largest-remainder rounding of [0.3, 0.7] -> [0, 1] at index 6
        assert corrected.interval_indices[0] == 6


class TestEndToEnd:
    def test_correction_restores_marginal(self, rng):
        """Corrected records reproduce the reconstructed marginal exactly."""
        part = Partition.uniform(0, 1, 15)
        x = rng.beta(2, 2, size=4_000)
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=rng)
        result = BayesReconstructor().reconstruct(w, part, noise)
        corrected = correct_records(w, result.distribution)

        corrected_hist = part.histogram(corrected.values)
        np.testing.assert_array_equal(
            corrected_hist, result.distribution.integer_counts(w.size)
        )

    def test_correction_reduces_value_error(self, rng):
        """Corrected values sit closer to originals than randomized ones."""
        part = Partition.uniform(0, 1, 20)
        x = rng.beta(8, 3, size=5_000)
        noise = UniformRandomizer.from_privacy(0.5, 1.0)
        w = noise.randomize(x, seed=rng)
        result = BayesReconstructor().reconstruct(w, part, noise)
        corrected = correct_records(w, result.distribution)
        err_randomized = np.abs(w - x).mean()
        err_corrected = np.abs(corrected.values - x).mean()
        assert err_corrected < err_randomized


@given(
    n=st.integers(0, 300),
    weights=st.lists(st.floats(0.0, 5.0), min_size=2, max_size=12).filter(
        lambda ws: sum(ws) > 1e-6
    ),
    seed=st.integers(0, 10_000),
)
def test_property_counts_always_exact(n, weights, seed):
    rng = np.random.default_rng(seed)
    probs = np.asarray(weights) / sum(weights)
    part = Partition.uniform(0, 1, len(weights))
    dist = HistogramDistribution(part, probs)
    w = rng.normal(0.5, 0.4, size=n)
    corrected = correct_records(w, dist)
    assert corrected.counts.sum() == n
    assert corrected.values.shape == (n,)
    np.testing.assert_array_equal(corrected.counts, dist.integer_counts(n))
    # every record's index is within range
    if n:
        assert corrected.interval_indices.min() >= 0
        assert corrected.interval_indices.max() < len(weights)
