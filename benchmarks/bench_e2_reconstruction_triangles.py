"""E2 — Reconstruction figure: triangles shape, uniform noise (paper §3).

Same figure as E1 for the twin-peaked shape.  The harder case: additive
noise fills the valley between the peaks, and reconstruction must dig it
back out.  Paper shape: both modes clearly restored.
"""

from __future__ import annotations

from _common import experiment, run_experiment

from repro.experiments import ReconstructionConfig, format_table, run_reconstruction


@experiment(
    "e2",
    title="Reconstruction figure: triangles shape, uniform noise",
    tags=("reconstruction", "smoke"),
    seed=102,
)
def run_e2(ctx):
    config = ReconstructionConfig(
        shape="triangles",
        noise="uniform",
        privacy=0.5,
        n=ctx.scaled(10_000),
        n_intervals=20,
        seed=ctx.seed,
    )
    ctx.record(
        shape=config.shape,
        noise=config.noise,
        privacy=config.privacy,
        n=config.n,
        n_intervals=config.n_intervals,
    )
    outcome = run_reconstruction(config)

    table = format_table(
        ("midpoint", "true", "original", "randomized", "reconstructed"),
        outcome.rows(),
        title="E2: triangles, uniform noise, 50% privacy",
    )
    summary = (
        f"\nL1(original, randomized)    = {outcome.l1_randomized:.4f}"
        f"\nL1(original, reconstructed) = {outcome.l1_reconstructed:.4f}"
    )
    ctx.report(table + summary, name="e2_reconstruction_triangles")

    # bimodality: the valley (middle intervals) against the peak regions
    rec = outcome.reconstructed_probs
    rand = outcome.randomized_probs
    valley = float(rec[9:11].sum())
    peaks = float(rec[3:6].sum() + rec[14:17].sum())
    rec_contrast = peaks / max(valley, 1e-9)
    rand_contrast = float(
        (rand[3:6].sum() + rand[14:17].sum()) / max(rand[9:11].sum(), 1e-9)
    )
    metrics = {
        "l1_randomized": float(outcome.l1_randomized),
        "l1_reconstructed": float(outcome.l1_reconstructed),
        "reconstructed_contrast": rec_contrast,
        "randomized_contrast": rand_contrast,
        "iterations": int(outcome.n_iterations),
    }
    assert metrics["l1_reconstructed"] < 0.5 * metrics["l1_randomized"]
    # bimodality restored: far less mass in the valley than at the peaks
    assert peaks > 3 * valley
    # and the randomized series does NOT show that contrast as strongly
    assert rec_contrast > rand_contrast
    return metrics


def test_e2_reconstruction_triangles_uniform(benchmark):
    run_experiment(benchmark, "e2")
