"""E21 — Zero-copy columnar ingest fast path vs the JSON wire.

The server never sees raw values — ingest is pure, mergeable histogram
accumulation — so its cost should be memory bandwidth, not JSON-parse
speed.  The PR 3 wire decoded a JSON float list (one Python object per
disclosed value) and bucketed each attribute separately under a shard
lock.  The fast path replaces all three stages:

* **decode** — ``application/x-ppdm-columns`` frames carry raw
  little-endian float64 columns; the decoder is ``np.frombuffer`` over
  the body (zero copies, no per-value objects),
* **locate + bin** — one fused flat-offset ``np.bincount`` bins every
  attribute of a batch in a single vectorized pass,
* **accumulate** — striped per-thread shard buffers, so the hot path
  never contends on a lock.

This benchmark replays identical pre-encoded request bodies through
both wire paths exactly as the HTTP handler would (decode + ingest,
sockets excluded) with 4 worker threads at 1 and 4 shards, and asserts:

* estimates after every run are **bit-identical** to a single-stream
  :class:`StreamingReconstructor` fed the same disclosures (the JSON
  and columnar paths are interchangeable mid-stream), and
* the columnar path ingests at >= 3x the JSON path's rate at 4 shards.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from _common import experiment, run_experiment

from repro.core import KernelCache, Partition, StreamingReconstructor, UniformRandomizer
from repro.experiments.reporting import format_table
from repro.service import AggregationService, AttributeSpec
from repro.service.wire import WIRE_VERSION, encode_columns, iter_frames
from repro.utils.rng import ensure_rng

N_ATTRIBUTES = 4
N_BATCHES = 64
N_WORKERS = 4
SHARD_COUNTS = (1, 4)
REPEATS = 3


def _throughput_floor_scale() -> float:
    """Scales the wall-clock throughput threshold (parity asserts are
    unaffected).  Shared CI runners set this below 1 so a noisy neighbour
    cannot flake the build while a real regression still fails."""
    return float(os.environ.get("PPDM_E21_THROUGHPUT_FLOOR", "1.0"))


def _specs():
    """Four attributes with distinct domains (one kernel each)."""
    specs = []
    for j in range(N_ATTRIBUTES):
        low, high = float(10 * j), float(10 * j + 8 + j)
        partition = Partition.uniform(low, high, 24)
        noise = UniformRandomizer.from_privacy(1.0, high - low)
        specs.append(AttributeSpec(f"a{j}", partition, noise))
    return specs


def _disclosures(specs, n_per_attribute: int, seed: int):
    """Pre-generated randomized batches: ``batches[b][name] -> values``."""
    rng = ensure_rng(seed)
    per_batch = n_per_attribute // N_BATCHES
    batches = []
    for _ in range(N_BATCHES):
        batch = {}
        for j, spec in enumerate(specs):
            low, high = spec.x_partition.low, spec.x_partition.high
            span = high - low
            center = low + span * (0.3 + 0.05 * j)
            x = np.clip(rng.normal(center, 0.15 * span, per_batch), low, high)
            batch[spec.name] = spec.randomizer.randomize(x, seed=rng)
        batches.append(batch)
    return batches


def _json_bodies(batches) -> list:
    """The PR 3 wire: one ``POST /ingest`` JSON body per batch."""
    return [
        json.dumps(
            {"batch": {name: values.tolist() for name, values in batch.items()}}
        ).encode()
        for batch in batches
    ]


def _columnar_bodies(batches) -> list:
    """The fast path: one binary columnar frame per batch."""
    return [encode_columns(batch) for batch in batches]


def _ingest_json(service, body: bytes, shard: int) -> None:
    """What the handler does for ``Content-Type: application/json``."""
    payload = json.loads(body.decode())
    service.ingest(payload["batch"], shard=shard)


def _ingest_columns(service, body: bytes, shard: int) -> None:
    """What the handler does for ``application/x-ppdm-columns``."""
    for batch, _ in iter_frames(body):
        service.ingest_prepared(service.prepare(batch), shard=shard)


def _run_wire(specs, bodies, ingest_one, n_shards: int) -> tuple:
    """Decode + ingest every body with worker threads pinned to shards."""
    service = AggregationService(specs, n_shards=n_shards)
    assignments = [bodies[w::N_WORKERS] for w in range(N_WORKERS)]

    def worker(index: int) -> None:
        shard = index % n_shards
        for body in assignments[index]:
            ingest_one(service, body, shard)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_WORKERS) as pool:
        list(pool.map(worker, range(N_WORKERS)))
    seconds = time.perf_counter() - start
    return seconds, service.estimate_all()


def _reference_estimates(specs, batches) -> dict:
    """Single-stream, single-shard serial reference (the parity anchor)."""
    cache = KernelCache()
    reference = {}
    for spec in specs:
        stream = StreamingReconstructor(
            spec.x_partition, spec.randomizer, kernel_cache=cache
        )
        for batch in batches:
            stream.update(batch[spec.name])
        reference[spec.name] = stream.estimate()
    return reference


def _assert_parity(reference, estimates) -> None:
    """Each wire/shard combination must reproduce the reference bitwise."""
    for name, expected in reference.items():
        result = estimates[name]
        assert np.array_equal(
            expected.distribution.probs, result.distribution.probs
        ), name
        assert expected.n_iterations == result.n_iterations, name
        assert expected.chi2_statistic == result.chi2_statistic, name


@experiment(
    "e21",
    title="Zero-copy columnar ingest fast path vs JSON wire",
    tags=("service", "smoke"),
    seed=7,
)
def run_e21(ctx):
    n_per_attribute = ctx.scaled(96_000)
    specs = _specs()
    batches = _disclosures(specs, n_per_attribute, seed=ctx.seed)
    n_records = sum(batch[s.name].size for batch in batches for s in specs)
    json_bodies = _json_bodies(batches)
    col_bodies = _columnar_bodies(batches)
    json_bytes = sum(len(b) for b in json_bodies)
    col_bytes = sum(len(b) for b in col_bodies)
    ctx.record(
        n_records=n_records,
        n_attributes=N_ATTRIBUTES,
        n_batches=N_BATCHES,
        n_workers=N_WORKERS,
        wire_version=WIRE_VERSION,
        json_body_bytes=json_bytes,
        columnar_body_bytes=col_bytes,
    )

    reference = _reference_estimates(specs, batches)
    wires = {"json": (json_bodies, _ingest_json),
             "columns": (col_bodies, _ingest_columns)}
    seconds = {}
    for wire, (bodies, ingest_one) in wires.items():
        for n_shards in SHARD_COUNTS:
            best = float("inf")
            for _ in range(REPEATS):
                elapsed, estimates = _run_wire(specs, bodies, ingest_one, n_shards)
                _assert_parity(reference, estimates)
                best = min(best, elapsed)
            seconds[wire, n_shards] = best

    rows = []
    for wire in wires:
        for n_shards in SHARD_COUNTS:
            rate = n_records / seconds[wire, n_shards]
            baseline = n_records / seconds["json", n_shards]
            rows.append(
                (
                    wire,
                    str(n_shards),
                    f"{seconds[wire, n_shards] * 1e3:.1f}",
                    f"{rate:,.0f}",
                    f"{rate / baseline:.2f}x",
                )
            )
    speedup = seconds["json", 4] / seconds["columns", 4]
    table_text = format_table(
        ("wire", "shards", "wall ms", "records/s", "vs json"),
        rows,
        title=(
            f"E21: decode + ingest throughput, {N_ATTRIBUTES} attributes x "
            f"{n_per_attribute} records, {N_WORKERS} workers"
        ),
    )
    summary = (
        f"\ncolumnar speedup vs JSON wire at 4 shards = {speedup:.2f}x"
        f"\nwire sizes: JSON {json_bytes / 1e6:.1f} MB, "
        f"columnar {col_bytes / 1e6:.1f} MB"
        f"\nestimates bit-identical to the serial single-stream reference "
        f"for every wire and shard count"
    )
    ctx.report(table_text + summary, name="e21_ingest_fastpath")
    ctx.record_timing(
        speedup_4_shards=speedup,
        **{
            f"{wire}_{n_shards}_shards_ms": seconds[wire, n_shards] * 1e3
            for wire in wires
            for n_shards in SHARD_COUNTS
        },
    )

    floor = 3.0 * _throughput_floor_scale()
    assert speedup >= floor, f"expected >= {floor:.2f}x, got {speedup:.2f}x"

    return {
        "bit_identical": True,
        "wire_version": WIRE_VERSION,
        "columnar_bytes_per_record": col_bytes / n_records,
        "json_bytes_per_record": round(json_bytes / n_records, 2),
    }


def test_e21_ingest_fastpath(benchmark):
    run_experiment(benchmark, "e21")
