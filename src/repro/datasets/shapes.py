"""Synthetic 1-D densities for the reconstruction figures (paper §3).

The paper demonstrates distribution reconstruction on two synthetic
shapes — a flat-topped "plateau" and a twin-peaked "triangles" density —
showing that the reconstructed histogram tracks the original while the raw
randomized histogram does not.  :class:`PiecewiseLinearDensity` is a small
exact-sampling substrate for such shapes: closed-form pdf/cdf, inverse-CDF
sampling, and exact interval probabilities for comparing against
reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramDistribution
from repro.core.partition import Partition
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PiecewiseLinearDensity:
    """A normalized piecewise-linear probability density.

    Parameters
    ----------
    xs:
        Strictly increasing knot locations.
    ys:
        Non-negative (unnormalized) density values at the knots; the
        density interpolates linearly between knots and is zero outside
        ``[xs[0], xs[-1]]``.  Normalization happens automatically.
    """

    xs: np.ndarray
    ys: np.ndarray

    def __post_init__(self) -> None:
        xs = np.asarray(self.xs, dtype=float)
        ys = np.asarray(self.ys, dtype=float)
        if xs.ndim != 1 or xs.size < 2 or xs.shape != ys.shape:
            raise ValidationError("xs and ys must be equal-length 1-D arrays (>= 2)")
        if not np.all(np.diff(xs) > 0):
            raise ValidationError("xs must be strictly increasing")
        if np.any(ys < 0):
            raise ValidationError("ys must be non-negative")
        # Trapezoid areas per segment; normalize so total mass is one.
        seg_area = 0.5 * (ys[:-1] + ys[1:]) * np.diff(xs)
        total = seg_area.sum()
        if total <= 0:
            raise ValidationError("density must have positive total mass")
        ys = ys / total
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ys", ys)
        object.__setattr__(
            self, "_cum_area", np.concatenate([[0.0], np.cumsum(seg_area / total)])
        )

    # ------------------------------------------------------------------
    @property
    def low(self) -> float:
        """Left end of the support."""
        return float(self.xs[0])

    @property
    def high(self) -> float:
        """Right end of the support."""
        return float(self.xs[-1])

    def pdf(self, x) -> np.ndarray:
        """Density at ``x`` (vectorized; zero outside the support)."""
        x = np.asarray(x, dtype=float)
        return np.interp(x, self.xs, self.ys, left=0.0, right=0.0)

    def cdf(self, x) -> np.ndarray:
        """Cumulative distribution at ``x`` (vectorized)."""
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self.low, self.high)
        seg = np.clip(
            np.searchsorted(self.xs, clipped, side="right") - 1, 0, self.xs.size - 2
        )
        x0, x1 = self.xs[seg], self.xs[seg + 1]
        y0, y1 = self.ys[seg], self.ys[seg + 1]
        t = clipped - x0
        slope = (y1 - y0) / (x1 - x0)
        return self._cum_area[seg] + y0 * t + 0.5 * slope * t**2

    def interval_probs(self, partition: Partition) -> np.ndarray:
        """Exact probability of each partition interval."""
        cdf_edges = self.cdf(partition.edges)
        return np.diff(cdf_edges)

    def true_distribution(self, partition: Partition) -> HistogramDistribution:
        """Exact :class:`HistogramDistribution` of this density on a grid."""
        probs = self.interval_probs(partition)
        total = probs.sum()
        if total <= 0:
            raise ValidationError("partition does not overlap the density support")
        return HistogramDistribution(partition, probs / total)

    def sample(self, n: int, seed=None) -> np.ndarray:
        """Draw ``n`` samples by exact inverse-CDF inversion."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        rng = ensure_rng(seed)
        u = rng.random(int(n))
        seg = np.clip(
            np.searchsorted(self._cum_area, u, side="right") - 1, 0, self.xs.size - 2
        )
        x0, x1 = self.xs[seg], self.xs[seg + 1]
        y0, y1 = self.ys[seg], self.ys[seg + 1]
        du = u - self._cum_area[seg]
        slope = (y1 - y0) / (x1 - x0)
        # Solve 0.5*slope*t^2 + y0*t - du = 0 for t in [0, x1-x0].
        linear = np.abs(slope) < 1e-15
        with np.errstate(divide="ignore", invalid="ignore"):
            disc = np.sqrt(np.maximum(y0**2 + 2.0 * slope * du, 0.0))
            t_quad = (disc - y0) / slope
            t_lin = du / np.maximum(y0, 1e-300)
        t = np.where(linear, t_lin, t_quad)
        return x0 + np.clip(t, 0.0, x1 - x0)

    def partition(self, n_intervals: int) -> Partition:
        """Equal-width partition of the support."""
        return Partition.uniform(self.low, self.high, n_intervals)


def plateau(low: float = 0.0, high: float = 1.0) -> PiecewiseLinearDensity:
    """The paper's flat-topped "plateau" shape, scaled to ``[low, high]``."""
    span = high - low
    xs = low + span * np.array([0.0, 0.2, 0.35, 0.65, 0.8, 1.0])
    ys = np.array([0.0, 0.0, 1.0, 1.0, 0.0, 0.0])
    return PiecewiseLinearDensity(xs, ys)


def triangles(low: float = 0.0, high: float = 1.0) -> PiecewiseLinearDensity:
    """The paper's twin-peaked "triangles" shape, scaled to ``[low, high]``."""
    span = high - low
    xs = low + span * np.array([0.0, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9, 1.0])
    ys = np.array([0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0])
    return PiecewiseLinearDensity(xs, ys)


#: named registry used by the experiment harness and CLI
SHAPES = {"plateau": plateau, "triangles": triangles}
