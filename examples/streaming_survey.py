"""Streaming survey: reconstruction while responses are still arriving.

The paper's motivating deployment is an online survey whose respondents
randomize locally before submitting.  Responses trickle in; the analyst
wants a running estimate of the answer distribution without storing raw
submissions.  :class:`~repro.core.streaming.StreamingReconstructor` keeps
only a histogram of randomized values and refreshes the estimate on
demand with warm-started Bayes sweeps.  Run:

    python examples/streaming_survey.py
"""

import numpy as np

from repro import HistogramDistribution, StreamingReconstructor
from repro.core.privacy import noise_for_privacy
from repro.datasets import shapes

# The (unknown to the analyst) truth: a twin-peaked opinion distribution.
density = shapes.triangles()
partition = density.partition(20)
true = density.true_distribution(partition)

noise = noise_for_privacy("uniform", 0.5, 1.0)  # 50% privacy at 95% conf.
stream = StreamingReconstructor(partition, noise)
rng = np.random.default_rng(11)

print("batch  records   L1-to-truth  sweeps  (estimate refresh)")
for day in range(1, 9):
    respondents = density.sample(1_500, seed=rng)
    stream.update(noise.randomize(respondents, seed=rng))
    estimate = stream.estimate()
    error = estimate.distribution.l1_distance(true)
    print(
        f"{day:5d}  {stream.n_seen:7d}   {error:10.4f}  {estimate.n_iterations:6d}"
    )

final = stream.estimate().distribution
print("\nFinal estimate vs truth (interval probabilities):")
for mid, est, tru in zip(partition.midpoints, final.probs, true.probs):
    bar = "#" * int(round(40 * est / max(final.probs.max(), 1e-9)))
    print(f"  {mid:5.2f} {est:6.3f} (true {tru:5.3f}) |{bar}")

print(
    "\nThe analyst never stored a raw response: only the randomized\n"
    "histogram, which is all the reconstruction algorithm consumes."
)
