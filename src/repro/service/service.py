"""The aggregation service: sharded ingestion + warm-started estimation.

:class:`AggregationService` is the server-shaped face of the paper's
deployment: N ingestion workers accumulate randomized disclosures into
:class:`~repro.service.shards.ShardSet` partials, and ``estimate()``
merges the partials in O(shards x bins) and refreshes the attribute's
distribution with warm-started Bayes sweeps on one shared
:class:`~repro.core.engine.ReconstructionEngine` (one
:class:`~repro.core.engine.KernelCache` across all attributes).

The estimates it serves are **bit-identical** to feeding the same
disclosures through a single-stream
:class:`~repro.core.streaming.StreamingReconstructor` and refreshing at
the same points — sharding changes the ingestion topology, never the
math (``tests/test_service.py`` pins this at several shard counts).

Snapshots round-trip through :mod:`repro.serialize` (kind
``"aggregation_service"``): schema, engine config, merged partials, and
the carried warm-start estimates, so a restarted server resumes with
bit-identical estimates.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.engine import (
    EngineConfig,
    KernelCache,
    ReconstructionEngine,
    ReconstructionResult,
    config_property,
)
from repro.core.partition import Partition
from repro.core.privacy import NOISE_KINDS, noise_for_privacy
from repro.exceptions import SerializationError, ValidationError
from repro.service.shards import AttributeSpec, ShardSet


class _AttributeState:
    """Per-attribute serving state: kernel, grid, and carried estimate."""

    __slots__ = ("spec", "y_partition", "kernel", "theta")

    def __init__(self, spec, y_partition, kernel, theta) -> None:
        self.spec = spec
        self.y_partition = y_partition
        self.kernel = kernel
        self.theta = theta


class AggregationService:
    """Sharded multi-attribute aggregation with warm-started estimates.

    Parameters
    ----------
    attributes:
        Iterable of :class:`~repro.service.AttributeSpec` (or
        ``(name, x_partition, randomizer)`` triples), one per collected
        attribute.  Names must be unique.
    n_shards:
        Number of ingestion shards (see
        :class:`~repro.service.shards.ShardSet`).
    classes:
        Number of class labels the shards additionally partition by
        (0 = class-unaware).  With ``classes >= 1`` batches may carry a
        class column and the service holds one histogram partial per
        (attribute, class) — the input the paper's ByClass/Local
        training consumes (see
        :class:`~repro.service.training.TrainingService`).  Unlabeled
        batches still ingest, into a separate unlabeled partition.
    max_iterations / tol / stopping / transition_method / coverage:
        Engine settings, exactly as on
        :class:`~repro.core.streaming.StreamingReconstructor`.
    kernel_cache:
        Optionally share a kernel cache with other services or
        reconstructors over the same grids.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import Partition, UniformRandomizer
    >>> from repro.service import AggregationService, AttributeSpec
    >>> noise = UniformRandomizer(half_width=0.2)
    >>> service = AggregationService(
    ...     [AttributeSpec("opinion", Partition.uniform(0, 1, 10), noise)],
    ...     n_shards=2,
    ... )
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(0.3, 0.7, size=1000)
    >>> service.ingest({"opinion": noise.randomize(x, seed=rng)})
    1000
    >>> result = service.estimate("opinion")
    >>> bool(result.distribution.probs[4] > 0.1)
    True
    """

    def __init__(
        self,
        attributes,
        *,
        n_shards: int = 1,
        classes: int = 0,
        max_iterations: int = 500,
        tol: float = 1e-3,
        stopping: str = "chi2",
        transition_method: str = "integrated",
        coverage: float = 1.0 - 1e-9,
        kernel_cache: KernelCache | None = None,
    ) -> None:
        config = EngineConfig(
            max_iterations=max_iterations,
            tol=tol,
            stopping=stopping,
            transition_method=transition_method,
            coverage=coverage,
        )
        self._engine = ReconstructionEngine(config, kernel_cache=kernel_cache)
        self._states: dict = {}
        for spec in attributes:
            if not isinstance(spec, AttributeSpec):
                spec = AttributeSpec(*spec)
            if spec.name in self._states:
                raise ValidationError(f"duplicate attribute name {spec.name!r}")
            y_partition, kernel = self._engine.kernel_for(
                spec.x_partition, spec.randomizer
            )
            m = spec.x_partition.n_intervals
            self._states[spec.name] = _AttributeState(
                spec, y_partition, kernel, np.full(m, 1.0 / m)
            )
        if not self._states:
            raise ValidationError("the service needs at least one attribute")
        self._shards = ShardSet(
            {name: state.y_partition for name, state in self._states.items()},
            n_shards,
            n_classes=int(classes),
        )
        # estimate() mutates the carried theta; refreshes are serialized
        # so concurrent queries cannot interleave a warm start.
        self._estimate_lock = threading.Lock()

    max_iterations = config_property("max_iterations", engine_attr="_engine")
    tol = config_property("tol", engine_attr="_engine")
    stopping = config_property("stopping", engine_attr="_engine")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple:
        """Collected attribute names, in schema order."""
        return tuple(self._states)

    @property
    def shards(self) -> ShardSet:
        """The ingestion shard set (for one-worker-per-shard deployments)."""
        return self._shards

    @property
    def engine(self) -> ReconstructionEngine:
        """The shared reconstruction engine (one kernel cache for all)."""
        return self._engine

    @property
    def n_shards(self) -> int:
        return self._shards.n_shards

    @property
    def classes(self) -> int:
        """Class labels the shards partition by (0 = class-unaware)."""
        return self._shards.n_classes

    def spec(self, name: str) -> AttributeSpec:
        """The :class:`AttributeSpec` registered under ``name``."""
        return self._state(name).spec

    def n_seen(self, name: str | None = None):
        """Records absorbed for one attribute, or ``{name: n}`` for all."""
        if name is not None:
            self._state(name)
        return self._shards.n_seen(name)

    def n_seen_by_class(self, name: str):
        """Per-class records absorbed for ``name``.

        Returns ``{"unlabeled": n, "0": n, ...}`` — one entry for the
        unlabeled partition plus one per class label (JSON-friendly
        string keys; the HTTP ``/stats`` route and the CLI summaries
        serve this verbatim).
        """
        self._state(name)
        matrix = self._shards.merged_by_class(name)
        out = {"unlabeled": int(matrix[0].sum())}
        for c in range(self.classes):
            out[str(c)] = int(matrix[c + 1].sum())
        return out

    def merged_by_class(self, name: str):
        """Merged per-class noise-grid counts: ``(classes + 1, bins)``.

        Row 0 is the unlabeled partition, row ``c + 1`` class ``c`` —
        the class-conditional aggregates
        :class:`~repro.service.training.TrainingService` reconstructs
        from.
        """
        self._state(name)
        return self._shards.merged_by_class(name)

    def export_partial(self) -> dict:
        """Merged per-class partials for every attribute: the sync unit.

        ``{name: (classes + 1, bins) counts}`` — the complete
        sufficient statistic of everything this service has absorbed
        (partials are mergeable, so the merged histograms carry the
        whole state), in exactly the shape
        :func:`repro.service.wire.encode_partial` ships upstream and
        :meth:`replace_partial` absorbs on the coordinator.
        """
        return {
            name: self._shards.merged_by_class(name) for name in self._states
        }

    def replace_partial(self, slot: int, partials: dict) -> int:
        """Replace shard ``slot`` with one worker's cumulative partials.

        The coordinator side of cluster sync: worker ``slot``'s
        dedicated shard is cleared and refilled with the pushed
        ``{name: (classes + 1, bins) counts}`` mapping (see
        :meth:`export_partial`).  Because each sync carries the
        worker's *cumulative* merged counts, the replace is idempotent
        — a retried or duplicated push can never double-count — and the
        merged union over all slots stays bit-identical to a
        single-process service fed the same records.  Holds the
        estimate lock so a concurrent refresh never pairs a half-
        replaced histogram with a newer warm start.  Returns the
        records now held in the slot.
        """
        with self._estimate_lock:
            return self._shards.shard(slot).replace_with(partials)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def ingest(self, batch, *, shard: int | None = None, classes=None) -> int:
        """Absorb ``{attribute: randomized values}``; return records added.

        O(batch) work: each attribute's values are located on its
        noise-expanded grid and all attributes of the batch are binned
        in one fused ``np.bincount`` into the routed shard's striped
        accumulators (see :mod:`repro.service.shards`).  ``shard`` pins
        the batch to a specific shard (one-worker-per-shard ingestion);
        otherwise batches round-robin.  ``classes`` — one integer label
        per record, shared by every column — bins the batch into its
        per-class stripes (requires a service built with
        ``classes >= 1``).
        """
        return self._shards.ingest(batch, shard=shard, classes=classes)

    def prepare(self, batch, classes=None):
        """Locate a batch into fused flat bin indices, outside any lock.

        The pure half of ingestion, exposed so front ends (e.g. the
        columnar HTTP fast path) can decode + locate per request thread
        and hand the :class:`~repro.service.shards.PreparedBatch` to
        :meth:`ingest_prepared`.
        """
        return self._shards.prepare(batch, classes)

    def ingest_prepared(self, prepared, *, shard: int | None = None) -> int:
        """Absorb a batch pre-located by :meth:`prepare`."""
        return self._shards.ingest_prepared(prepared, shard=shard)

    def quantize(self, batch) -> dict:
        """Locate a value batch into narrow int8/int16 bin-index columns.

        The client half of the quantized wire path (see
        :meth:`~repro.service.shards.ColumnLayout.quantize`): the
        returned ``{attribute: indices}`` mapping feeds
        :func:`~repro.service.wire.encode_quantized`, and ingesting the
        quantized stream yields estimates bit-identical to ingesting
        the float values themselves.

        Examples
        --------
        >>> from repro.core import Partition, UniformRandomizer
        >>> from repro.service import AggregationService, AttributeSpec
        >>> service = AggregationService([AttributeSpec(
        ...     "age", Partition.uniform(0, 1, 4),
        ...     UniformRandomizer(half_width=0.5))])
        >>> service.quantize({"age": [0.05, 0.95]})["age"].dtype.name
        'int8'
        """
        return self._shards.layout.quantize(batch)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def estimate(self, name: str, *, warn: bool = True) -> ReconstructionResult:
        """Current estimate of ``name``'s original distribution.

        Merges the shard partials in O(shards x bins) and runs Bayes
        sweeps warm-started from the previous refresh — bit-identical to
        a single-stream
        :class:`~repro.core.streaming.StreamingReconstructor` fed the
        same disclosures and refreshed at the same points.

        ``warn=False`` suppresses the
        :class:`~repro.exceptions.ConvergenceWarning` on cap-hit (the
        HTTP front end reports ``converged`` in the payload instead —
        and per-request warning-filter toggling is not thread-safe).
        """
        state = self._state(name)
        # The merge happens under the estimate lock too: merging outside
        # would let two concurrent refreshes pair a stale histogram with
        # a newer warm start, breaking the single-stream equivalence.
        with self._estimate_lock:
            counts, seen = self._shards.merged(name)
            if seen == 0:
                raise ValidationError(
                    f"no data for attribute {name!r}: ingest() before estimate()"
                )
            result, state.theta = self._engine.estimate_counts(
                counts, state.kernel, state.theta, state.spec.x_partition,
                _stacklevel=2, warn=warn,
            )
        return result

    def estimate_all(self, *, warn: bool = True) -> dict:
        """``{name: result}`` for every attribute that has data.

        Attributes with no ingested records are skipped (an empty
        service raises, matching :meth:`estimate`).
        """
        results = {}
        for name in self._states:
            if self._shards.n_seen(name):
                results[name] = self.estimate(name, warn=warn)
        if not results:
            raise ValidationError("no data yet: ingest() before estimate_all()")
        return results

    def reset(self) -> "AggregationService":
        """Forget all absorbed data and the warm-start estimates.

        Holds the estimate lock for the whole wipe so a concurrent
        :meth:`estimate` never observes cleared shards paired with a
        half-reset warm start.
        """
        with self._estimate_lock:
            self._shards.clear()
            for state in self._states.values():
                m = state.spec.x_partition.n_intervals
                state.theta = np.full(m, 1.0 / m)
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able snapshot of schema, config, partials, and estimates.

        Shard partials are stored *merged* — the per-shard layout is an
        ingestion topology, not state (partials are mergeable, so the
        merged histogram is the complete sufficient statistic).  A
        service restored from the snapshot serves bit-identical
        estimates and keeps ingesting where this one left off.
        """
        from repro.serialize import FORMAT_VERSION, to_jsonable

        config = self._engine.config
        attributes = []
        state_section = {}
        for name, state in self._states.items():
            attributes.append(
                {
                    "name": name,
                    "edges": state.spec.x_partition.edges.tolist(),
                    "randomizer": to_jsonable(state.spec.randomizer),
                }
            )
            if self.classes:
                # class-aware services persist one block per partition
                # (unlabeled + each class) so training state survives;
                # n_seen derives from the same single counts read (a
                # second pass over the stripes could interleave with a
                # concurrent ingest and write a snapshot the restore-side
                # counts/n_seen cross-check would reject)
                counts = self._shards.merged_by_class(name)
                seen = int(counts.sum())
                y_counts = [block.tolist() for block in counts]
            else:
                flat, seen = self._shards.merged(name)
                y_counts = flat.tolist()
            state_section[name] = {
                "y_counts": y_counts,
                "n_seen": int(seen),
                "theta": state.theta.tolist(),
            }
        return {
            "kind": "aggregation_service",
            "version": FORMAT_VERSION,
            "config": {
                "max_iterations": config.max_iterations,
                "tol": config.tol,
                "stopping": config.stopping,
                "transition_method": config.transition_method,
                "coverage": config.coverage,
            },
            "n_shards": self._shards.n_shards,
            "classes": self.classes,
            "attributes": attributes,
            "state": state_section,
        }

    @classmethod
    def restore(cls, payload: dict) -> "AggregationService":
        """Rebuild a service from :meth:`snapshot` output.

        The merged partials land in shard 0 — merge-equivalent to the
        saved state — and the warm-start estimates are carried over, so
        the first refresh after a restart is bit-identical to the
        refresh the saved server would have produced.
        """
        from repro.serialize import from_jsonable

        try:
            config = payload["config"]
            classes = int(payload.get("classes", 0))
            service = cls(
                [
                    AttributeSpec(
                        attr["name"],
                        Partition(np.asarray(attr["edges"], dtype=float)),
                        from_jsonable(attr["randomizer"]),
                    )
                    for attr in payload["attributes"]
                ],
                n_shards=payload["n_shards"],
                classes=classes,
                **config,
            )
            shard0 = service._shards.shard(0)
            for name, saved in payload["state"].items():
                state = service._state(name)
                n_bins = state.y_partition.n_intervals
                blocks = _snapshot_count_blocks(
                    name, saved["y_counts"], classes, n_bins
                )
                theta = np.asarray(saved["theta"], dtype=float)
                if theta.shape != (state.spec.x_partition.n_intervals,):
                    raise SerializationError(
                        f"snapshot estimate for {name!r} has {theta.size} "
                        "intervals; the partition has "
                        f"{state.spec.x_partition.n_intervals}"
                    )
                n_seen = int(saved["n_seen"])
                absorbed = int(sum(block.sum() for block in blocks))
                if absorbed != n_seen:
                    raise SerializationError(
                        f"snapshot counts for {name!r} hold {absorbed} "
                        f"record(s) but n_seen claims {n_seen}"
                    )
                for block_index, block in enumerate(blocks):
                    block_seen = int(block.sum())
                    if block_seen or block_index == 0:
                        # the unlabeled block also carries the residual
                        # seen counter for empty class-less snapshots
                        shard0.absorb_counts(
                            name, block, block_seen, class_block=block_index
                        )
                state.theta = theta
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise  # deliberate errors keep their specific message
            raise ValidationError(
                f"malformed aggregation_service snapshot: {exc}"
            ) from exc
        return service

    def save(self, path) -> None:
        """Persist the snapshot as JSON (see :func:`repro.serialize.save`)."""
        from repro import serialize

        serialize.save(self, path)

    @classmethod
    def load(cls, path) -> "AggregationService":
        """Restore a service saved with :meth:`save`."""
        from repro import serialize

        service = serialize.load(path)
        if not isinstance(service, cls):
            raise ValidationError(
                f"{str(path)!r} does not hold an aggregation_service snapshot"
            )
        return service

    # ------------------------------------------------------------------
    def _state(self, name: str) -> _AttributeState:
        try:
            return self._states[name]
        except KeyError:
            raise ValidationError(
                f"unknown attribute {name!r}; the service collects "
                f"{list(self._states)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AggregationService(attributes={len(self._states)}, "
            f"n_shards={self._shards.n_shards}, "
            f"records={sum(self._shards.n_seen().values())})"
        )


def _snapshot_count_blocks(name: str, y_counts, classes: int, n_bins: int):
    """Validate one attribute's snapshot counts against the declared classes.

    Class-aware snapshots store ``classes + 1`` blocks (unlabeled plus
    one per class); class-less snapshots store one flat histogram.  Any
    disagreement — wrong block count, wrong bin count, ragged rows —
    raises a :class:`~repro.exceptions.SerializationError` instead of
    surfacing as a raw numpy shape/ragged-array error.
    """
    if classes:
        if not isinstance(y_counts, list) or len(y_counts) != classes + 1:
            found = len(y_counts) if isinstance(y_counts, list) else 0
            raise SerializationError(
                f"snapshot counts for {name!r} must hold {classes + 1} "
                f"class blocks (unlabeled + {classes} classes), got "
                f"{found} — the snapshot's class partitioning disagrees "
                "with its declared 'classes'"
            )
        rows = y_counts
    else:
        rows = [y_counts]
    blocks = []
    for row in rows:
        try:
            block = np.asarray(row, dtype=float)
        except (ValueError, TypeError) as exc:
            raise SerializationError(
                f"snapshot counts for {name!r} are not numeric "
                f"histogram rows: {exc}"
            ) from exc
        if block.shape != (n_bins,):
            raise SerializationError(
                f"snapshot counts for {name!r} have shape {block.shape}; "
                f"the noise-expanded grid has {n_bins} bins"
                + (" per class block" if classes else "")
            )
        blocks.append(block)
    return blocks


def service_from_spec(spec: dict) -> AggregationService:
    """Build a service from a plain-dict deployment spec (``ppdm serve``).

    The spec names each attribute's domain and privacy target; noise is
    sized with :func:`repro.core.privacy.noise_for_privacy`:

    .. code-block:: python

        {
          "shards": 4,                      # optional, default 1
          "classes": 2,                     # optional: class-aware shards
          "intervals": 24,                  # optional global default
          "attributes": [
            {"name": "age", "low": 20, "high": 80,
             "noise": "uniform",            # or "gaussian"
             "privacy": 1.0,                # of the domain span
             "confidence": 0.95,            # optional
             "intervals": 24},              # optional per-attribute
          ],
        }

    Examples
    --------
    >>> from repro.service import service_from_spec
    >>> service = service_from_spec({
    ...     "shards": 2,
    ...     "attributes": [
    ...         {"name": "age", "low": 20, "high": 80,
    ...          "noise": "uniform", "privacy": 1.0},
    ...     ],
    ... })
    >>> service.attributes, service.n_shards
    (('age',), 2)
    """
    if not isinstance(spec, dict):
        raise ValidationError("service spec must be a dict")
    attributes = spec.get("attributes")
    if not attributes:
        raise ValidationError("service spec needs a non-empty 'attributes' list")
    default_intervals = int(spec.get("intervals", 24))
    specs = []
    for attr in attributes:
        try:
            name = attr["name"]
            low, high = float(attr["low"]), float(attr["high"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"malformed attribute entry {attr!r}: {exc}"
            ) from exc
        kind = attr.get("noise", "uniform")
        if kind not in NOISE_KINDS:
            raise ValidationError(
                f"unknown noise kind {kind!r}; choose from {NOISE_KINDS}"
            )
        partition = Partition.uniform(
            low, high, int(attr.get("intervals", default_intervals))
        )
        randomizer = noise_for_privacy(
            kind,
            float(attr.get("privacy", 1.0)),
            high - low,
            float(attr.get("confidence", 0.95)),
        )
        specs.append(AttributeSpec(name, partition, randomizer))
    return AggregationService(
        specs,
        n_shards=int(spec.get("shards", 1)),
        classes=int(spec.get("classes", 0)),
    )
